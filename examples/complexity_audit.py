"""Management-complexity audit of a publisher fleet (§5).

Computes the paper's three complexity metrics for every publisher,
fits the Fig 13 log-log regressions, and then plays the measurement
platform's role: ingests the latest snapshot into a telemetry backend
and surfaces the worst (CDN, protocol, device) combinations — the
§5 failure-triaging workflow.

Run with::

    python examples/complexity_audit.py
"""

from repro import generate_default_dataset
from repro.core import fit_complexity, max_unique_sdks, publisher_complexity
from repro.telemetry.backend import TelemetryBackend


def main() -> None:
    print("Generating ecosystem...")
    result = generate_default_dataset(seed=2018, snapshot_limit=6)
    latest = result.dataset.latest()

    metrics = publisher_complexity(latest, result.catalogue_sizes)
    fits = fit_complexity(metrics)

    print("\nComplexity vs publisher size (Fig 13):")
    for name, fit, paper in (
        ("management-plane combinations", fits.combinations, 1.72),
        ("protocol-titles", fits.protocol_titles, 3.8),
        ("unique SDKs", fits.unique_sdks, 1.8),
    ):
        print(
            f"  {name:30s} x{fit.per_decade_factor:.2f} per view-hour "
            f"decade (paper x{paper}), r^2={fit.r_squared:.2f}, "
            f"p={fit.p_value:.1e}"
        )
    print(
        f"  every metric sub-linear: {fits.all_sublinear()}; largest "
        f"maintenance surface: {max_unique_sdks(metrics)} code bases "
        f"(paper: up to 85)"
    )

    # The five most complex publishers.
    ranked = sorted(
        metrics.values(), key=lambda m: m.combinations, reverse=True
    )
    print("\nMost complex management planes:")
    for m in ranked[:5]:
        print(
            f"  {m.publisher_id}: {m.combinations:4d} combinations, "
            f"{m.unique_sdks:3d} SDK/browser builds, "
            f"{m.protocol_titles:7d} protocol-titles"
        )

    # Failure triaging: worst combos by rebuffering, as Conviva does.
    backend = TelemetryBackend()
    backend.ingest_records(latest.records)
    print("\nWorst (CDN, protocol, device) combos by rebuffering:")
    for rollup in backend.worst_combos(n=5, min_views=1000):
        print(
            f"  CDN {rollup.cdn_name:4s} {str(rollup.protocol):16s} "
            f"{rollup.device_model:18s} "
            f"rebuffer {rollup.mean_rebuffer_ratio:.2%} over "
            f"{rollup.views:,.0f} views"
        )


if __name__ == "__main__":
    main()
