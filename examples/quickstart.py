"""Quickstart: generate a dataset and run the headline analyses.

Generates a thinned synthetic dataset (12 of the 59 bi-weekly
snapshots), then reproduces the paper's headline findings: protocol
prevalence (Fig 2), platform shares (Fig 6a), CDN counts (Fig 12a) and
the §4.4 summary.

Run with::

    python examples/quickstart.py
"""

from repro import Platform, Protocol, generate_default_dataset
from repro.core import (
    CdnDimension,
    PlatformDimension,
    ProtocolDimension,
    count_distribution,
    format_table,
    headline_summary,
    publisher_support_series,
    view_hour_share_series,
)


def main() -> None:
    print("Generating the synthetic ecosystem (12 snapshots)...")
    result = generate_default_dataset(seed=2018, snapshot_limit=12)
    dataset = result.dataset
    print(f"  {dataset}\n")

    # Fig 2a/2b: protocol prevalence at the study endpoints.
    support = publisher_support_series(dataset, ProtocolDimension())
    shares = view_hour_share_series(dataset, ProtocolDimension())
    first, last = dataset.first_snapshot(), dataset.latest_snapshot()
    print("Streaming protocols (Fig 2), first -> latest snapshot:")
    rows = []
    for protocol in (
        Protocol.HLS,
        Protocol.DASH,
        Protocol.MSS,
        Protocol.HDS,
    ):
        rows.append(
            {
                "protocol": protocol.display_name,
                "% publishers (first)": support[first].get(protocol, 0.0),
                "% publishers (latest)": support[last].get(protocol, 0.0),
                "% view-hours (latest)": shares[last].get(protocol, 0.0),
            }
        )
    print(format_table(rows), "\n")

    # Fig 6a: platform view-hour shares at the latest snapshot.
    platform_shares = view_hour_share_series(dataset, PlatformDimension())
    print("Platform view-hour shares, latest snapshot (Fig 6a):")
    print(
        format_table(
            [
                {
                    "platform": platform.display_name,
                    "% view-hours": platform_shares[last].get(platform, 0.0),
                }
                for platform in Platform
            ]
        ),
        "\n",
    )

    # Fig 12a: CDN-count distribution.
    print("Number of CDNs per publisher, latest snapshot (Fig 12a):")
    print(
        format_table(
            [
                {
                    "cdns": row.count,
                    "% publishers": row.percent_publishers,
                    "% view-hours": row.percent_view_hours,
                }
                for row in count_distribution(
                    dataset.latest(), CdnDimension()
                )
            ]
        ),
        "\n",
    )

    # §4.4 roll-up.
    print("Summary (§4.4) — weighted averages per dimension:")
    for name, summary in headline_summary(dataset).items():
        print(
            f"  {name:10s} avg {summary.average_count:4.2f}, "
            f"view-hour-weighted avg {summary.weighted_average_count:4.2f}, "
            f"multi-instance publishers hold "
            f"{summary.pct_view_hours_multi:.0f}% of view-hours"
        )


if __name__ == "__main__":
    main()
