"""A publisher's packaging day: encode, chunk, encapsulate, distribute.

Walks one title through the full Fig 1 management plane: transcode into
a bitrate ladder, package for four streaming protocols, verify that the
published URLs classify correctly under the Table 1 detector, push the
catalogue to two CDN origins, and stream it through an edge cache.

Run with::

    python examples/packaging_pipeline.py
"""

from repro.constants import ContentType, Protocol
from repro.delivery.edge import EdgeCache
from repro.delivery.origin import OriginServer
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.packaging.drm import DrmScheme, DrmWrapper
from repro.packaging.manifest import parser_for
from repro.packaging.manifest.detect import detect_protocol
from repro.packaging.pipeline import PackagingPipeline
from repro.units import bytes_to_tb


def main() -> None:
    # One 42-minute episode, encoded at a 6-rung ladder.
    episode = Video(
        video_id="ep_s01e01",
        duration_seconds=42 * 60,
        content_type=ContentType.VOD,
    )
    ladder = BitrateLadder.from_bitrates((180, 400, 800, 1600, 3200, 6000))
    print(f"Title: {episode.video_id} ({episode.duration_seconds:.0f} s)")
    print(f"Ladder: {ladder}")
    print(f"Follows HLS guidelines: {ladder.follows_hls_guidelines()}\n")

    # Package for every HTTP adaptive protocol the paper tracks.
    pipeline = PackagingPipeline(
        protocols=(Protocol.HLS, Protocol.DASH, Protocol.MSS, Protocol.HDS),
        chunk_duration_seconds=6.0,
    )
    assets = pipeline.package(episode, ladder, "http://cdn-a.example.net")
    print("Packaged assets:")
    for asset in assets:
        info = parser_for(asset.protocol).parse(asset.manifest_text)
        detected = detect_protocol(asset.manifest_url)
        print(
            f"  {asset.protocol.display_name:16s} "
            f"{asset.chunk_count:4d} chunks, "
            f"{asset.total_bytes / 1e9:5.2f} GB, "
            f"manifest {asset.manifest_url}"
        )
        assert detected is asset.protocol
        assert info.rendition_count == len(ladder)

    overhead = pipeline.packaging_overhead(episode, ladder)
    print(
        f"\nPackaging overhead: {overhead['storage_bytes'] / 1e9:.2f} GB "
        f"across 4 protocols, {overhead['cpu_seconds']:.0f} CPU-seconds, "
        f"{overhead['live_latency_seconds']:.1f} s added live latency\n"
    )

    # Optional DRM for the premium tier.
    drm = DrmWrapper(DrmScheme.WIDEVINE)
    license_ = drm.issue_license(
        episode.video_id, frozenset({"settop", "mobile"})
    )
    print(
        f"DRM: {drm.scheme.value} license {license_.key_id} for "
        f"{sorted(license_.device_classes)}\n"
    )

    # Distribute a 10-episode season to two CDNs.
    season = Catalogue(
        "season-1",
        [
            Video(f"ep_s01e{i:02d}", 42 * 60.0)
            for i in range(1, 11)
        ],
    )
    for cdn_name in ("A", "B"):
        origin = OriginServer(cdn_name)
        pushed = origin.push_catalogue("my-studio", season, ladder)
        print(
            f"Pushed season to CDN {cdn_name} origin: "
            f"{bytes_to_tb(pushed) * 1000:.1f} GB"
        )

    # Serve two viewers of the episode through an edge cache.
    hls = next(a for a in assets if a.protocol is Protocol.HLS)
    edge = EdgeCache(capacity_bytes=50e9)
    for viewer in range(2):
        for chunk in hls.chunks:
            edge.request(
                (chunk.video_id, chunk.bitrate_kbps, chunk.index),
                chunk.size_bytes,
            )
    print(
        f"\nEdge cache after two viewers: hit ratio "
        f"{edge.stats.hit_ratio:.0%}, "
        f"{edge.stats.bytes_from_origin / 1e9:.2f} GB fetched from origin"
    )


if __name__ == "__main__":
    main()
