"""What would integrated syndication change? (§6 future work)

Runs the extension analyses end to end: dataset QA, the evenness-aware
diversity metrics, per-syndicator QoE projections under API/app
integration, the CDN accounting split integration would require, and
the edge-cache consolidation effect.

Run with::

    python examples/integrated_whatif.py
"""

import numpy as np

from repro import generate_default_dataset
from repro.core import (
    fit_diversity,
    mean_evenness,
    owner_share_of_cdn,
    project_all_syndicators,
    publisher_diversity,
)
from repro.delivery.edgesim import EdgeSyndicationStudy
from repro.entities.ladder import BitrateLadder
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import build_case_catalogue
from repro.telemetry.quality import audit


def main() -> None:
    print("Generating ecosystem...")
    result = generate_default_dataset(seed=2018, snapshot_limit=6)
    dataset = result.dataset
    study = result.case_study
    assert study is not None

    # Gate on dataset quality, as a real pipeline would.
    report = audit(dataset)
    print(f"\nDataset QA: {'OK' if report.ok else 'FAILED'} "
          f"({report.records} records, "
          f"{report.classifiable_url_fraction:.0%} classifiable URLs)")

    # Diversity: does support breadth overstate live complexity?
    profiles = publisher_diversity(dataset.latest())
    fits = fit_diversity(profiles)
    print(
        "\nDiversity (evenness-aware complexity):\n"
        f"  raw count surface grows "
        f"{fits.count_surface.per_decade_factor:.2f}x per view-hour "
        "decade\n"
        f"  exercised (entropy) surface grows "
        f"{fits.surface_index.per_decade_factor:.2f}x\n"
        f"  mean evenness ratio: {mean_evenness(profiles):.2f} — "
        "support counts overstate live complexity"
    )

    # Per-syndicator QoE projection under integration.
    print("\nQoE projection under API/app integration (ISP X, CDN A):")
    projections = project_all_syndicators(study, sessions=60)
    for label in study.syndicator_labels:
        p = projections[label]
        marker = " <- biggest winner" if p.bitrate_gain > 2.0 else ""
        print(
            f"  {label:4s} {p.before_median_kbps:6.0f} -> "
            f"{p.after_median_kbps:6.0f} kbps "
            f"({p.bitrate_gain:4.2f}x){marker}"
        )

    # Accounting: split the shared CDN's bytes (the §6 open problem).
    share = owner_share_of_cdn(
        dataset.latest(), "A", study.owner_id
    )
    print(
        f"\nCDN A accounting: {share:.1%} of delivered bytes attribute "
        "to the owner's own clients;\nthe rest bills to syndicators and "
        "unrelated publishers sharing the CDN."
    )

    # Edge caches: integration consolidates duplicate entries.
    edge = EdgeSyndicationStudy(
        catalogue=build_case_catalogue(np.random.default_rng(1)),
        ladders={
            label: BitrateLadder.from_bitrates(
                cal.CASE_STUDY_LADDERS[label]
            )
            for label in ("O", "S4", "S9")
        },
        owner_id="O",
        cache_capacity_bytes=40e9,
    )
    results = edge.compare(np.random.default_rng(11), n_sessions=400)
    independent, integrated = (
        results["independent"],
        results["integrated"],
    )
    print(
        "\nEdge cache (same request stream, one edge):\n"
        f"  independent syndication: {independent.hit_ratio:5.1%} hits, "
        f"{independent.origin_gigabytes:6.1f} GB origin egress\n"
        f"  integrated syndication:  {integrated.hit_ratio:5.1%} hits, "
        f"{integrated.origin_gigabytes:6.1f} GB origin egress"
    )


if __name__ == "__main__":
    main()
