"""Multi-CDN delivery under a CDN degradation event.

Demonstrates the delivery substrate beyond the paper's measurements: a
publisher spreads views across three CDNs via a measurement-driven
broker; mid-experiment one CDN degrades, and the broker steers traffic
away.  Also shows the anycast route-stability check of §4.3.

Run with::

    python examples/multicdn_failover.py
"""

import numpy as np

from repro.constants import ContentType
from repro.delivery.anycast import AnycastRouteModel
from repro.delivery.multicdn import CdnBroker
from repro.delivery.network import NetworkPath
from repro.entities.cdn import CDN, CdnAssignment
from repro.entities.ladder import BitrateLadder
from repro.playback.session import SessionConfig, simulate_session


def main() -> None:
    rng = np.random.default_rng(7)
    assignments = tuple(
        CdnAssignment(cdn=CDN(name=name, uses_anycast=(name == "B")))
        for name in ("A", "B", "C")
    )
    paths = {
        "A": NetworkPath(isp="X", cdn_name="A", median_kbps=8000, sigma=0.4),
        "B": NetworkPath(isp="X", cdn_name="B", median_kbps=7000, sigma=0.4),
        "C": NetworkPath(isp="X", cdn_name="C", median_kbps=6000, sigma=0.4),
    }
    degraded = NetworkPath(isp="X", cdn_name="A", median_kbps=900, sigma=0.4)
    ladder = BitrateLadder.from_bitrates((150, 400, 900, 2000, 4500))
    broker = CdnBroker(explore=0.1)
    config = SessionConfig(view_seconds=300.0)

    tallies = {"healthy": {}, "degraded": {}}
    for phase, a_path in (("healthy", paths["A"]), ("degraded", degraded)):
        live_paths = dict(paths)
        live_paths["A"] = a_path
        counts = {}
        for _ in range(300):
            decision = broker.select(assignments, ContentType.VOD, rng)
            result = simulate_session(
                ladder, live_paths[decision.cdn_name], config, rng
            )
            broker.observe(decision.cdn_name, result.average_bitrate_kbps)
            counts[decision.cdn_name] = counts.get(decision.cdn_name, 0) + 1
        tallies[phase] = counts

    print("Broker traffic split per 300 views:")
    for phase in ("healthy", "degraded"):
        counts = tallies[phase]
        split = ", ".join(
            f"{name}: {counts.get(name, 0):3d}" for name in ("A", "B", "C")
        )
        print(f"  CDN A {phase:9s}: {split}")
    assert tallies["degraded"].get("A", 0) < tallies["healthy"].get("A", 0)
    print("  -> the broker steered views away from the degraded CDN\n")

    # §4.3's anycast question: would route changes disrupt long views?
    anycast = AnycastRouteModel(daily_change_rate=0.2)
    for minutes in (5, 30, 120):
        probability = anycast.disruption_probability(minutes * 60)
        print(
            f"P[anycast route change during a {minutes:3d}-minute view]: "
            f"{probability:.4%}"
        )
    print(
        "-> consistent with §4.3: anycast instability is not a blocking "
        "factor for video delivery"
    )


if __name__ == "__main__":
    main()
