"""The §6 syndication case study, end to end.

Reproduces the paper's syndication analysis on a generated ecosystem:
the prevalence CDF (Fig 14), the bitrate-ladder divergence for one
popular video (Fig 17), the owner-vs-syndicator QoE gap (Figs 15/16),
and the CDN origin-storage savings under dedup and integrated
syndication (Fig 18).

Run with::

    python examples/syndication_study.py
"""

from repro import generate_default_dataset
from repro.core import (
    figure18,
    format_table,
    ladders_for_video,
    prevalence_summary,
    qoe_comparison,
    tolerance_sweep,
)
from repro.synthesis.catalogues import case_video_id


def main() -> None:
    print("Generating ecosystem with the case-study catalogue...")
    result = generate_default_dataset(seed=2018, snapshot_limit=8)
    dataset = result.dataset
    study = result.case_study
    assert study is not None

    # Fig 14: prevalence of syndication.
    summary = prevalence_summary(dataset)
    print(
        f"\nSyndication prevalence (Fig 14, paper: >80% / ~20%):\n"
        f"  owners with at least one syndicator: "
        f"{summary['pct_owners_with_syndicator']:.0f}%\n"
        f"  owners reaching a third of syndicators: "
        f"{summary['pct_owners_third_of_syndicators']:.0f}%"
    )

    # Fig 17: ladder divergence for the popular video.
    labels = {pid: label for label, pid in study.labels.items()}
    ladders = ladders_for_video(dataset, case_video_id())
    print("\nBitrate ladders for the case-study video (Fig 17):")
    rows = []
    for publisher_id, ladder in sorted(
        ladders.items(),
        key=lambda kv: (len(labels.get(kv[0], "zz")), labels.get(kv[0])),
    ):
        rows.append(
            {
                "publisher": labels.get(publisher_id, publisher_id),
                "rungs": len(ladder),
                "min kbps": min(ladder),
                "max kbps": max(ladder),
            }
        )
    print(format_table(rows, float_digits=0))

    # Figs 15/16: QoE gap on both (ISP, CDN) combinations.
    print("\nOwner vs syndicator S7 QoE (Figs 15/16):")
    for isp, cdn in (("X", "A"), ("Y", "B")):
        comparison = qoe_comparison(
            dataset,
            study.owner_id,
            study.publisher_id("S7"),
            case_video_id(),
            isp,
            cdn,
        )
        print(
            f"  ISP {isp} / CDN {cdn}: owner median bitrate "
            f"{comparison.owner_bitrate.median():5.0f} kbps vs "
            f"{comparison.syndicator_bitrate.median():5.0f} kbps "
            f"({comparison.median_bitrate_gain():.1f}x, paper ~2.5x); "
            f"p90 rebuffering reduced "
            f"{comparison.p90_rebuffer_reduction():.0%} (paper ~40%)"
        )

    # Fig 18: storage redundancy.
    print("\nCDN origin storage (Fig 18, paper: 1916 TB; 16.5%/45.2%/65.6%):")
    for savings in figure18(study):
        print(
            f"  CDN {savings.cdn_name}: {savings.total_tb:6.0f} TB stored; "
            f"dedup@5% saves {savings.saved_tb_5pct:5.0f} TB "
            f"({savings.saved_pct_5pct:4.1f}%), "
            f"dedup@10% saves {savings.saved_tb_10pct:5.0f} TB "
            f"({savings.saved_pct_10pct:4.1f}%), "
            f"integrated saves {savings.saved_tb_integrated:5.0f} TB "
            f"({savings.saved_pct_integrated:4.1f}%)"
        )

    # Beyond the paper: the full tolerance sweep.
    print("\nDedup savings vs tolerance (extension of Fig 18):")
    for tolerance, pct in tolerance_sweep(study):
        bar = "#" * int(pct / 2)
        print(f"  {tolerance * 100:4.1f}%  {pct:5.1f}%  {bar}")


if __name__ == "__main__":
    main()
