"""Encoder, chunker, DRM, and the end-to-end packaging pipeline."""

import pytest

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video
from repro.errors import PackagingError
from repro.packaging.chunker import ByteRangeIndex, Chunker
from repro.packaging.drm import DrmScheme, DrmWrapper
from repro.packaging.encoder import EncodeJob, Encoder
from repro.packaging.pipeline import PackagingPipeline
from repro.units import rendition_bytes


class TestEncoder:
    def test_output_bytes_match_storage_model(self, video, ladder):
        result = Encoder().encode(EncodeJob(video=video, ladder=ladder))
        expected = sum(
            rendition_bytes(b, video.duration_seconds)
            for b in ladder.bitrates_kbps
        )
        assert result.output_bytes == pytest.approx(expected)

    def test_per_rendition_bytes_sum(self, video, ladder):
        result = Encoder().encode(EncodeJob(video=video, ladder=ladder))
        assert sum(result.per_rendition_bytes) == pytest.approx(
            result.output_bytes
        )

    def test_cpu_scales_with_ladder_depth(self, video):
        shallow = BitrateLadder.from_bitrates((500,))
        deep = BitrateLadder.from_bitrates((500, 1000, 2000, 4000))
        encoder = Encoder()
        cpu_shallow = encoder.encode(
            EncodeJob(video=video, ladder=shallow)
        ).cpu_seconds
        cpu_deep = encoder.encode(
            EncodeJob(video=video, ladder=deep)
        ).cpu_seconds
        assert cpu_deep > cpu_shallow

    def test_h265_costs_more_cpu_than_h264(self, video):
        h264 = BitrateLadder.from_bitrates((2000,), codec="h264")
        h265 = BitrateLadder.from_bitrates((2000,), codec="h265")
        encoder = Encoder()
        assert encoder.encode(
            EncodeJob(video=video, ladder=h265)
        ).cpu_seconds > encoder.encode(
            EncodeJob(video=video, ladder=h264)
        ).cpu_seconds

    def test_unknown_codec_rejected(self, video):
        weird = BitrateLadder(
            [Rendition(bitrate_kbps=100, width=64, height=36, codec="av2")]
        )
        with pytest.raises(PackagingError):
            Encoder().encode(EncodeJob(video=video, ladder=weird))

    def test_live_latency_exceeds_chunk_duration(self, video, ladder):
        encoder = Encoder(cores=4)
        job = EncodeJob(video=video, ladder=ladder)
        latency = encoder.live_latency_seconds(job, 6.0)
        assert latency > 6.0  # §4.1: packaging adds delay to live

    def test_more_cores_reduce_live_latency(self, video, ladder):
        job = EncodeJob(video=video, ladder=ladder)
        slow = Encoder(cores=1).live_latency_seconds(job, 6.0)
        fast = Encoder(cores=32).live_latency_seconds(job, 6.0)
        assert fast < slow

    def test_needs_a_core(self):
        with pytest.raises(PackagingError):
            Encoder(cores=0)


class TestChunker:
    def test_chunk_count_rounds_up(self, video):
        assert Chunker(7.0).chunk_count(video) == 86  # ceil(600/7)

    def test_chunks_cover_duration_exactly(self, video, ladder):
        chunks = list(Chunker(7.0).chunks(video, ladder[0]))
        assert chunks[0].start_seconds == 0.0
        assert chunks[-1].end_seconds == pytest.approx(600.0)
        total = sum(c.duration_seconds for c in chunks)
        assert total == pytest.approx(600.0)

    def test_last_chunk_truncated(self, video, ladder):
        chunks = list(Chunker(7.0).chunks(video, ladder[0]))
        assert chunks[-1].duration_seconds == pytest.approx(600 - 85 * 7.0)

    def test_total_bytes_equal_cbr_model(self, video, ladder):
        rendition = ladder[2]
        total = Chunker(6.0).total_bytes(video, rendition)
        assert total == pytest.approx(
            rendition_bytes(rendition.bitrate_kbps, video.duration_seconds)
        )

    def test_indices_sequential(self, video, ladder):
        indices = [c.index for c in Chunker(6.0).chunks(video, ladder[0])]
        assert indices == list(range(100))

    def test_invalid_duration(self):
        with pytest.raises(PackagingError):
            Chunker(0)


class TestByteRange:
    def test_full_range(self, video, ladder):
        index = ByteRangeIndex(video, ladder[0])
        start, end = index.byte_range(0, video.duration_seconds)
        assert start == 0
        assert end == pytest.approx(index.total_bytes, abs=1)

    def test_time_byte_roundtrip(self, video, ladder):
        index = ByteRangeIndex(video, ladder[0])
        start, _ = index.byte_range(30, 60)
        assert index.time_of_byte(start) == pytest.approx(30.0, abs=1e-3)

    def test_interval_validation(self, video, ladder):
        index = ByteRangeIndex(video, ladder[0])
        with pytest.raises(PackagingError):
            index.byte_range(10, 5)
        with pytest.raises(PackagingError):
            index.byte_range(0, video.duration_seconds + 1)

    def test_offset_validation(self, video, ladder):
        index = ByteRangeIndex(video, ladder[0])
        with pytest.raises(PackagingError):
            index.time_of_byte(-1)


class TestDrm:
    def test_encrypt_decrypt_roundtrip(self):
        wrapper = DrmWrapper(DrmScheme.WIDEVINE)
        payload = b"some chunk bytes" * 10
        assert wrapper.decrypt("v1", wrapper.encrypt("v1", payload)) == payload

    def test_ciphertext_differs_from_plaintext(self):
        wrapper = DrmWrapper(DrmScheme.WIDEVINE)
        assert wrapper.encrypt("v1", b"hello") != b"hello"

    def test_per_title_keys_differ(self):
        wrapper = DrmWrapper(DrmScheme.FAIRPLAY)
        assert wrapper.content_key("v1") != wrapper.content_key("v2")

    def test_license_authorization(self):
        wrapper = DrmWrapper(DrmScheme.PLAYREADY)
        license_ = wrapper.issue_license("v1", frozenset({"settop"}))
        assert license_.authorizes("v1", "settop")
        assert not license_.authorizes("v1", "browser")
        assert not license_.authorizes("v2", "settop")

    def test_license_needs_device_classes(self):
        wrapper = DrmWrapper(DrmScheme.PLAYREADY)
        with pytest.raises(PackagingError):
            wrapper.issue_license("v1", frozenset())

    def test_none_scheme_rejected(self):
        with pytest.raises(PackagingError):
            DrmWrapper(DrmScheme.NONE)


class TestPipeline:
    @pytest.fixture
    def pipeline(self):
        return PackagingPipeline(
            protocols=(Protocol.HLS, Protocol.DASH),
            chunk_duration_seconds=6.0,
        )

    def test_one_asset_per_protocol(self, pipeline, video, ladder):
        assets = pipeline.package(video, ladder, "http://cdn-a.example.net")
        assert [a.protocol for a in assets] == [Protocol.HLS, Protocol.DASH]

    def test_assets_carry_parseable_manifests(self, pipeline, video, ladder):
        from repro.packaging.manifest import parser_for

        for asset in pipeline.package(video, ladder, "http://cdn"):
            info = parser_for(asset.protocol).parse(asset.manifest_text)
            assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)

    def test_hls_asset_has_media_playlists(self, pipeline, video, ladder):
        assets = pipeline.package(video, ladder, "http://cdn")
        hls = next(a for a in assets if a.protocol is Protocol.HLS)
        assert len(hls.media_playlists) == len(ladder)

    def test_asset_bytes_equal_encode_output(self, pipeline, video, ladder):
        assets = pipeline.package(video, ladder, "http://cdn")
        encode = pipeline.encode(video, ladder)
        for asset in assets:
            assert asset.total_bytes == pytest.approx(encode.output_bytes)

    def test_packaging_overhead_scales_with_protocols(self, video, ladder):
        one = PackagingPipeline(protocols=(Protocol.HLS,))
        two = PackagingPipeline(protocols=(Protocol.HLS, Protocol.DASH))
        storage_one = one.packaging_overhead(video, ladder)["storage_bytes"]
        storage_two = two.packaging_overhead(video, ladder)["storage_bytes"]
        assert storage_two == pytest.approx(2 * storage_one)

    def test_rtmp_rejected(self):
        with pytest.raises(PackagingError):
            PackagingPipeline(protocols=(Protocol.RTMP,))

    def test_duplicate_protocols_rejected(self):
        with pytest.raises(PackagingError):
            PackagingPipeline(protocols=(Protocol.HLS, Protocol.HLS))

    def test_empty_protocols_rejected(self):
        with pytest.raises(PackagingError):
            PackagingPipeline(protocols=())
