"""The shared process-pool execution layer and its three hot paths.

Unit coverage for :mod:`repro.parallel` (jobs validation, chunking,
ordered collection) plus the standing determinism contract: every
``jobs``-capable entry point — figure suite, testkit matrix, playback
batches, QoE projections — must produce byte-identical results at any
worker count, with merged observability equal to the serial run.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.integrated import project_all_syndicators
from repro.delivery.network import default_isp_profiles
from repro.entities.ladder import BitrateLadder
from repro.errors import ParallelError
from repro.parallel import (
    chunk_sizes_for,
    parallel_map,
    parse_jobs,
    spawn_streams,
)
from repro.playback.batch import simulate_session_batch
from repro.playback.session import SessionConfig

pytestmark = pytest.mark.perf


class TestParseJobs:
    def test_accepts_ints_and_int_strings(self):
        assert parse_jobs(1) == 1
        assert parse_jobs(8) == 8
        assert parse_jobs("4") == 4
        assert parse_jobs(" 2 ") == 2

    @pytest.mark.parametrize("bad", [0, -1, -100, "0", "-3"])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ParallelError):
            parse_jobs(bad)

    @pytest.mark.parametrize("bad", [True, False, 1.5, "1.5", "four", None, ""])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(ParallelError):
            parse_jobs(bad)


class TestChunking:
    def test_sizes_cover_all_units(self):
        for units in (1, 2, 7, 59, 100):
            for jobs in (1, 2, 4, 16):
                sizes = chunk_sizes_for(units, jobs)
                assert sum(sizes) == units
                assert all(size >= 1 for size in sizes)

    def test_empty_units(self):
        assert chunk_sizes_for(0, 4) == []

    def test_oversubscribes_for_balance(self):
        # ~4x oversubscription so straggler chunks can't dominate:
        # 59 units on 4 workers -> at least 16 near-equal chunks.
        sizes = chunk_sizes_for(59, 4)
        assert len(sizes) >= 16
        assert max(sizes) - min(sizes) <= 1


def _square(value: int) -> int:
    return value * value


def _observed_square(value: int) -> int:
    obs.counter("test.parallel_units").inc()
    return value * value


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_path_preserves_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, jobs=2) == [
            i * i for i in items
        ]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ParallelError):
            parallel_map(_square, [1], jobs=0)

    def test_bad_chunk_sizes_rejected(self):
        with pytest.raises(ParallelError):
            parallel_map(_square, [1, 2, 3], jobs=2, chunk_sizes=[2])
        with pytest.raises(ParallelError):
            parallel_map(_square, [1, 2, 3], jobs=2, chunk_sizes=[3, 0])

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    @pytest.mark.obs
    def test_worker_counters_merge_to_serial_totals(self):
        obs.configure(enabled=True)
        try:
            obs.metrics().reset()
            serial = parallel_map(_observed_square, list(range(10)), jobs=1)
            serial_count = obs.counter("test.parallel_units").value
            obs.metrics().reset()
            pooled = parallel_map(_observed_square, list(range(10)), jobs=2)
            pooled_count = obs.counter("test.parallel_units").value
        finally:
            obs.configure(enabled=False)
        assert pooled == serial
        assert serial_count == pooled_count == 10.0


class TestSpawnStreams:
    def test_streams_are_distinct_and_deterministic(self):
        first = spawn_streams(7, 4)
        second = spawn_streams(7, 4)
        assert len(first) == 4
        for a, b in zip(first, second):
            assert (
                np.random.default_rng(a).integers(1 << 30)
                == np.random.default_rng(b).integers(1 << 30)
            )
        draws = {
            int(np.random.default_rng(s).integers(1 << 30)) for s in first
        }
        assert len(draws) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ParallelError):
            spawn_streams(7, -1)


class TestPlaybackBatch:
    @pytest.fixture()
    def path(self):
        return default_isp_profiles()["X"].path_to("A")

    def test_parallel_batch_matches_serial(self, ladder, path):
        config = SessionConfig(view_seconds=120.0)
        serial = simulate_session_batch(
            ladder, path, config, seed=11, sessions=6, jobs=1
        )
        pooled = simulate_session_batch(
            ladder, path, config, seed=11, sessions=6, jobs=2
        )
        assert serial == pooled

    def test_sessions_differ_across_streams(self, ladder, path):
        config = SessionConfig(view_seconds=120.0)
        results = simulate_session_batch(
            ladder, path, config, seed=11, sessions=6
        )
        bitrates = {r.average_bitrate_kbps for r in results}
        assert len(bitrates) > 1


class TestProjectionsParallel:
    def test_parallel_projections_match_serial(self, eco):
        serial = project_all_syndicators(
            eco.case_study, sessions=20, jobs=1
        )
        pooled = project_all_syndicators(
            eco.case_study, sessions=20, jobs=2
        )
        assert serial == pooled
        assert set(pooled) == set(eco.case_study.syndicator_labels)
