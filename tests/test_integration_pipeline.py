"""Integration: packaging -> delivery -> playback -> telemetry loops."""

import numpy as np
import pytest

from repro.constants import ContentType, Protocol
from repro.delivery.edge import EdgeCache
from repro.delivery.network import NetworkPath
from repro.delivery.origin import OriginServer
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.packaging.manifest import parser_for
from repro.packaging.manifest.detect import detect_protocol
from repro.packaging.pipeline import PackagingPipeline
from repro.playback.abr import ThroughputAbr
from repro.playback.session import SessionConfig, simulate_session
from repro.telemetry.dataset import Dataset


class TestPackageAndDetect:
    """The §3 methodology loop: publish manifests, then infer the
    protocol back from the published URLs alone."""

    def test_every_published_url_detects_correctly(self, video, ladder):
        pipeline = PackagingPipeline(
            protocols=(
                Protocol.HLS,
                Protocol.DASH,
                Protocol.MSS,
                Protocol.HDS,
            )
        )
        assets = pipeline.package(video, ladder, "http://cdn-a.example.net")
        for asset in assets:
            assert detect_protocol(asset.manifest_url) is asset.protocol

    def test_manifest_ladder_survives_roundtrip(self, video, ladder):
        pipeline = PackagingPipeline(protocols=(Protocol.DASH,))
        asset = pipeline.package(video, ladder, "http://cdn")[0]
        info = parser_for(Protocol.DASH).parse(asset.manifest_text)
        assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)


class TestPackageAndStore:
    def test_asset_bytes_match_origin_accounting(self, ladder):
        videos = [Video(f"v{i}", 600.0 * (i + 1)) for i in range(3)]
        catalogue = Catalogue("c", videos)
        pipeline = PackagingPipeline(protocols=(Protocol.HLS,))
        asset_bytes = sum(
            pipeline.package(v, ladder, "http://cdn")[0].total_bytes
            for v in videos
        )
        origin = OriginServer("A")
        origin.push_catalogue("pub", catalogue, ladder)
        assert origin.total_bytes() == pytest.approx(asset_bytes, rel=1e-9)


class TestStreamThroughEdge:
    def test_second_viewer_hits_cache(self, video, ladder, rng):
        pipeline = PackagingPipeline(protocols=(Protocol.HLS,))
        asset = pipeline.package(video, ladder, "http://cdn")[0]
        cache = EdgeCache(capacity_bytes=1e12)
        for viewer in range(2):
            for chunk in asset.chunks:
                cache.request(
                    (chunk.video_id, chunk.bitrate_kbps, chunk.index),
                    chunk.size_bytes,
                )
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_playback_over_packaged_ladder(self, video, ladder, rng):
        path = NetworkPath(
            isp="X", cdn_name="A", median_kbps=3000, sigma=0.3
        )
        result = simulate_session(
            ladder,
            path,
            SessionConfig(view_seconds=video.duration_seconds),
            rng,
            abr=ThroughputAbr(),
        )
        assert (
            ladder.min_bitrate_kbps
            <= result.average_bitrate_kbps
            <= ladder.max_bitrate_kbps
        )


class TestDatasetRoundtripAtScale:
    def test_generated_dataset_roundtrips_through_disk(
        self, dataset, tmp_path
    ):
        sample = Dataset(dataset.records[:500])
        path = tmp_path / "sample.jsonl.gz"
        sample.save(path)
        loaded = Dataset.load(path)
        assert loaded.records == sample.records

    def test_every_record_is_classifiable(self, dataset):
        from repro.core.dimensions import (
            PlatformDimension,
            ProtocolDimension,
        )

        protocol_dim = ProtocolDimension(http_only=False)
        platform_dim = PlatformDimension()
        for record in dataset.records[:2000]:
            assert protocol_dim.values(record), record.url
            assert platform_dim.values(record), record.device_model

    def test_live_records_only_from_live_publishers(self, dataset, eco):
        live_serving = {
            p.publisher_id for p in eco.publishers if p.serves_live
        }
        for record in dataset.records[:2000]:
            if record.content_type is ContentType.LIVE:
                assert record.publisher_id in live_serving

    def test_syndicated_records_reference_real_owners(self, dataset, eco):
        publisher_ids = {p.publisher_id for p in eco.publishers}
        for record in dataset.records[:5000]:
            if record.is_syndicated:
                assert record.owner_id in publisher_ids
                assert record.owner_id != record.publisher_id


class TestWeightInvariance:
    """Analyses must not care whether views are weighted or exploded."""

    @pytest.fixture(scope="class")
    def pair(self, dataset):
        small = Dataset(
            [
                record
                for record in dataset.latest().records
                if record.publisher_id in ("pub_100", "pub_101", "pub_102")
            ]
        )
        # Cap and round weights so the exploded dataset stays small and
        # integral (generator weights are fractional view counts).
        capped = Dataset(
            [
                type(record).from_json_dict(
                    {
                        **record.to_json_dict(),
                        "weight": max(1.0, round(min(record.weight, 50))),
                    }
                )
                for record in small
            ]
        )
        return capped, capped.explode()

    def test_view_hours_invariant(self, pair):
        weighted, exploded = pair
        assert weighted.total_view_hours() == pytest.approx(
            exploded.total_view_hours()
        )

    def test_share_series_invariant(self, pair):
        from repro.core.dimensions import ProtocolDimension
        from repro.core.prevalence import view_hour_share_series

        weighted, exploded = pair
        a = view_hour_share_series(weighted, ProtocolDimension())
        b = view_hour_share_series(exploded, ProtocolDimension())
        for snapshot in a:
            for key in a[snapshot]:
                assert a[snapshot][key] == pytest.approx(
                    b[snapshot].get(key, 0.0)
                )

    def test_counts_invariant(self, pair):
        from repro.core.counts import publisher_counts
        from repro.core.dimensions import CdnDimension

        weighted, exploded = pair
        assert publisher_counts(weighted, CdnDimension()) == publisher_counts(
            exploded, CdnDimension()
        )
