"""Catalogues, ladders, syndication graph, case study (repro.synthesis)."""

import numpy as np
import pytest

from repro.constants import SyndicationRole
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import (
    build_case_catalogue,
    case_video_id,
    publisher_ladder,
    sample_video_index,
    video_id_for,
)
from repro.synthesis.population import generate_publishers
from repro.synthesis.syndication import (
    CaseStudy,
    assign_case_study,
    build_syndication_graph,
    invert_graph,
)


class TestPublisherLadders:
    def test_bigger_publishers_deeper_ladders(self, rng):
        publishers = generate_publishers(rng, 80)
        big = publisher_ladder(rng, publishers[0])
        small = publisher_ladder(rng, publishers[-1])
        assert len(big) > len(small)
        assert big.max_bitrate_kbps > small.max_bitrate_kbps

    def test_ladders_strictly_increasing(self, rng):
        for publisher in generate_publishers(rng, 40):
            ladder = publisher_ladder(rng, publisher)
            rates = ladder.bitrates_kbps
            assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_floor_near_hls_guideline(self, rng):
        for publisher in generate_publishers(rng, 40):
            ladder = publisher_ladder(rng, publisher)
            assert ladder.min_bitrate_kbps < 250


class TestVideoIds:
    def test_id_scheme_stable(self):
        assert video_id_for("pub_003", 7) == "vid_pub_003_00007"

    def test_zipf_concentrates_on_popular_titles(self, rng):
        draws = [sample_video_index(rng, 1000) for _ in range(3000)]
        top10_share = sum(1 for d in draws if d < 10) / len(draws)
        assert top10_share > 0.25

    def test_zipf_within_bounds(self, rng):
        assert all(
            0 <= sample_video_index(rng, 50) < 50 for _ in range(500)
        )

    def test_single_title_catalogue(self, rng):
        assert sample_video_index(rng, 1) == 0


class TestCaseCatalogue:
    def test_size_matches_calibration(self, rng):
        catalogue = build_case_catalogue(rng)
        assert len(catalogue) == cal.CASE_CATALOGUE_TITLES

    def test_case_video_belongs_to_catalogue(self, rng):
        assert case_video_id() in build_case_catalogue(rng)


class TestSyndicationGraph:
    @pytest.fixture(scope="class")
    def graph_and_publishers(self):
        rng = np.random.default_rng(11)
        publishers = generate_publishers(rng, 110)
        graph = build_syndication_graph(rng, publishers)
        return graph, publishers

    def test_every_owner_has_entry(self, graph_and_publishers):
        graph, publishers = graph_and_publishers
        owners = {
            p.publisher_id
            for p in publishers
            if p.role is SyndicationRole.OWNER
        }
        assert set(graph) == owners

    def test_links_point_at_full_syndicators(self, graph_and_publishers):
        graph, publishers = graph_and_publishers
        syndicators = {
            p.publisher_id
            for p in publishers
            if p.role is SyndicationRole.FULL_SYNDICATOR
        }
        for linked in graph.values():
            assert linked <= syndicators

    def test_most_owners_syndicate(self, graph_and_publishers):
        graph, _ = graph_and_publishers
        with_links = sum(1 for links in graph.values() if links)
        assert with_links / len(graph) > 0.7

    def test_invert_graph(self, graph_and_publishers):
        graph, _ = graph_and_publishers
        inverse = invert_graph(graph)
        for owner, links in graph.items():
            for syndicator in links:
                assert owner in inverse[syndicator]


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def study(self):
        rng = np.random.default_rng(13)
        publishers = generate_publishers(rng, 110)
        graph = build_syndication_graph(rng, publishers)
        return assign_case_study(rng, publishers, graph), graph

    def test_labels_cover_o_and_ten_syndicators(self, study):
        case, _ = study
        assert case.syndicator_labels == tuple(
            f"S{i}" for i in range(1, 11)
        )

    def test_owner_ladder_matches_paper(self, study):
        case, _ = study
        ladder = case.ladder("O")
        assert len(ladder) == 9
        assert ladder.max_bitrate_kbps > 8192

    def test_s1_seven_times_below_owner(self, study):
        case, _ = study
        ratio = case.ladder("O").max_bitrate_kbps / case.ladder(
            "S1"
        ).max_bitrate_kbps
        assert 6.5 < ratio < 8.5

    def test_ladder_size_spread(self, study):
        case, _ = study
        sizes = [len(case.ladder(label)) for label in case.syndicator_labels]
        assert min(sizes) == 3
        assert max(sizes) == 14

    def test_graph_wired_to_carry_owner_content(self, study):
        case, graph = study
        for label in case.syndicator_labels:
            assert case.publisher_id(label) in graph[case.owner_id]

    def test_storage_participants(self, study):
        case, _ = study
        labels = [label for label, _ in case.storage_participants()]
        assert labels == ["O", "S4", "S9"]

    def test_unknown_label_rejected(self, study):
        case, _ = study
        with pytest.raises(CalibrationError):
            case.publisher_id("S99")


class TestCalibrationValidation:
    def test_default_calibration_is_valid(self):
        cal.validate_calibration()

    def test_bucket_fractions_sum_to_one(self):
        assert sum(cal.SIZE_BUCKET_FRACTIONS) == pytest.approx(1.0)

    def test_case_ladders_ascending(self):
        for rates in cal.CASE_STUDY_LADDERS.values():
            assert list(rates) == sorted(rates)

    def test_ladder_sizes_match_paper_targets(self):
        sizes = tuple(
            len(cal.CASE_STUDY_LADDERS[f"S{i}"]) for i in range(1, 11)
        )
        assert sizes == cal.PAPER.syndicator_ladder_sizes
