"""The scenario x oracle matrix, as a pytest suite (``-m testkit``).

Each (scenario, oracle) cell is its own test so a violated relation
fails alone with the oracle's message.  Builds are shared per scenario
through a module-level :class:`ScenarioRun` cache, mirroring what
``repro testkit run`` does in one process.

Tier-1 runs the two fast scenarios (``tiny``, ``fault-heavy`` — the
pair that exercises every oracle, including the ingest replay).  The
CI testkit job additionally runs the full four-scenario matrix through
the CLI and archives the JSON report.
"""

import json

import pytest

from repro import testkit as tk
from repro.cli import main
from repro.testkit.oracles import FAIL, SKIP

pytestmark = pytest.mark.testkit

SCENARIOS = ("tiny", "fault-heavy")

_RUNS = {}


def _run_for(name):
    if name not in _RUNS:
        _RUNS[name] = tk.run_scenario(tk.get_scenario(name))
    return _RUNS[name]


#: Cells where the oracle legitimately does not apply.
EXPECTED_SKIPS = {
    ("tiny", "fault-ingest-replay"),
    ("tiny", "chaos-recovery"),
    ("fault-heavy", "chaos-recovery"),
}

#: Oracles that no fast scenario can exercise; each names the suite
#: that runs it non-vacuously instead (chaos scenarios carry plans,
#: tiny/fault-heavy deliberately do not).
DELEGATED = {"chaos-recovery": "tests/test_chaos_plane.py"}


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("oracle_name", tk.oracle_names())
def test_oracle_cell(scenario, oracle_name):
    outcome = tk.run_oracle(tk.get_oracle(oracle_name), _run_for(scenario))
    assert outcome.status != FAIL, outcome.detail
    if (scenario, oracle_name) in EXPECTED_SKIPS:
        assert outcome.status == SKIP, outcome.detail
    else:
        assert outcome.checks > 0, "applicable oracle verified nothing"


def test_fast_scenarios_cover_every_oracle():
    """tiny + fault-heavy leave no oracle permanently skipped,
    except those explicitly delegated to another suite."""
    skippable = {o for s, o in EXPECTED_SKIPS}
    permanently_skipped = {
        o
        for o in skippable
        if all((s, o) in EXPECTED_SKIPS for s in SCENARIOS)
    }
    exercised = set(tk.oracle_names()) - permanently_skipped
    assert permanently_skipped == set(DELEGATED)
    assert exercised | set(DELEGATED) == set(tk.oracle_names())


def test_cli_testkit_run_emits_machine_readable_report(capsys, tmp_path):
    out = tmp_path / "oracle-report.json"
    code = main(
        [
            "testkit",
            "run",
            "--scenario",
            "tiny",
            "--oracle",
            "save-load-roundtrip",
            "--oracle",
            "seed-sensitivity",
            "--json",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["ok"] is True
    assert payload["summary"]["fail"] == 0
    assert payload["scenarios"] == ["tiny"]
    assert json.loads(out.read_text()) == payload


def test_cli_testkit_rejects_unknown_scenario(capsys):
    code = main(["testkit", "run", "--scenario", "nope"])
    assert code == 2
    assert "unknown scenario" in capsys.readouterr().err
