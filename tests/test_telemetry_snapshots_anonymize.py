"""Snapshot scheduling and anonymization (repro.telemetry)."""

from datetime import date

import pytest

from repro.errors import DatasetError
from repro.telemetry.anonymize import Anonymizer, looks_anonymized
from repro.telemetry.snapshots import (
    STUDY_END,
    STUDY_START,
    SnapshotSchedule,
    default_schedule,
)


class TestSchedule:
    def test_default_has_59_snapshots(self):
        assert len(default_schedule()) == 59

    def test_spans_the_study_window(self):
        dates = default_schedule().dates()
        assert dates[0] == STUDY_START
        assert dates[-1] <= STUDY_END

    def test_index_of(self):
        schedule = default_schedule()
        assert schedule.index_of(STUDY_START) == 0
        assert schedule.index_of(schedule.latest()) == 58

    def test_index_of_unscheduled_date(self):
        with pytest.raises(DatasetError):
            default_schedule().index_of(date(2016, 1, 5))

    def test_months_elapsed(self):
        schedule = default_schedule()
        assert schedule.months_elapsed(STUDY_START) == 0.0
        assert 26 < schedule.months_elapsed(schedule.latest()) < 28

    def test_months_elapsed_before_start(self):
        with pytest.raises(DatasetError):
            default_schedule().months_elapsed(date(2015, 1, 1))

    def test_window_of(self):
        schedule = default_schedule()
        first, last = schedule.window_of(STUDY_START)
        assert (last - first).days == 1  # two-day window

    def test_validation(self):
        with pytest.raises(DatasetError):
            SnapshotSchedule(
                start=date(2018, 1, 1), end=date(2016, 1, 1)
            )
        with pytest.raises(DatasetError):
            SnapshotSchedule(window_days=0)


class TestAnonymizer:
    def test_deterministic_within_key(self):
        anonymizer = Anonymizer(key="k1")
        assert anonymizer.publisher("ESPN") == anonymizer.publisher("ESPN")

    def test_differs_across_keys(self):
        assert (
            Anonymizer(key="k1").publisher("ESPN")
            != Anonymizer(key="k2").publisher("ESPN")
        )

    def test_kind_namespacing(self):
        anonymizer = Anonymizer()
        assert anonymizer.publisher("X") != anonymizer.video("X")

    def test_distinct_inputs_distinct_tokens(self):
        anonymizer = Anonymizer()
        tokens = {anonymizer.video(f"title-{i}") for i in range(100)}
        assert len(tokens) == 100

    def test_token_shape(self):
        token = Anonymizer().publisher("ESPN")
        assert looks_anonymized(token)
        assert not looks_anonymized("ESPN")

    def test_url_anonymization_keeps_extension(self):
        anonymizer = Anonymizer()
        url = "http://cdn/raw-title/master.m3u8"
        out = anonymizer.anonymize_url(url, "raw-title")
        assert out.endswith(".m3u8")
        assert "raw-title" not in out

    def test_url_without_video_id_rejected(self):
        with pytest.raises(ValueError):
            Anonymizer().anonymize_url("http://cdn/x.m3u8", "missing")

    def test_validation(self):
        with pytest.raises(ValueError):
            Anonymizer(key="")
        with pytest.raises(ValueError):
            Anonymizer().token("PUB", "x")
        with pytest.raises(ValueError):
            Anonymizer().token("pub", "")
