"""§4.4 summaries and report formatting (repro.core)."""

from datetime import date

import pytest

from repro.constants import ContentType, Protocol
from repro.core.report import cdf_rows, format_comparison, format_table
from repro.core.summary import (
    headline_summary,
    live_vod_cdn_segregation,
    rtmp_share,
    summarize_dimension,
    top_cdn_concentration,
)
from repro.core.dimensions import ProtocolDimension
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


class TestHeadlineSummary:
    def test_three_dimensions_reported(self, dataset):
        summaries = headline_summary(dataset)
        assert set(summaries) == {"protocols", "platforms", "cdns"}

    def test_weighted_exceeds_plain_average(self, dataset):
        for summary in headline_summary(dataset).values():
            assert summary.weighted_average_count > summary.average_count

    def test_multi_instance_view_hours_dominate(self, dataset):
        # §4.4: >90% of view-hours from multi-protocol / multi-CDN /
        # multi-platform publishers.
        for summary in headline_summary(dataset).values():
            assert summary.pct_view_hours_multi > 85.0

    def test_weighted_averages_near_paper(self, dataset):
        summaries = headline_summary(dataset)
        assert 1.8 < summaries["protocols"].weighted_average_count < 3.0
        assert 4.0 < summaries["platforms"].weighted_average_count < 5.0
        assert 4.0 < summaries["cdns"].weighted_average_count < 5.0

    def test_summarize_single_dimension(self, dataset):
        summary = summarize_dimension(dataset, ProtocolDimension())
        assert summary.name == "protocol"


class TestRtmp:
    def test_rtmp_declines(self, dataset):
        shares = rtmp_share(dataset)
        assert shares["first"] > 0.1
        assert shares["latest"] < 0.3
        assert shares["latest"] < shares["first"]

    def test_unclassifiable_snapshot_rejected(self):
        d = date(2018, 3, 12)
        data = Dataset([make_record(snapshot=d, url="http://x/watch/1")])
        with pytest.raises(AnalysisError):
            rtmp_share(data)


class TestCdnConcentration:
    def test_top5_serve_most_view_hours(self, latest):
        # §4.3: >93% of view-hours from 5 of 36 CDNs.
        assert top_cdn_concentration(latest, n=5) > 90.0

    def test_monotone_in_n(self, latest):
        assert top_cdn_concentration(latest, 1) < top_cdn_concentration(
            latest, 5
        )

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            top_cdn_concentration(Dataset([]))


class TestSegregation:
    def test_synthetic_rates_near_paper(self, latest):
        stats = live_vod_cdn_segregation(latest)
        assert stats.eligible_publishers > 10
        assert 15.0 < stats.pct_with_vod_only_cdn < 50.0
        assert 5.0 < stats.pct_with_live_only_cdn < 40.0

    def test_manual_case(self):
        d = date(2018, 3, 12)
        data = Dataset(
            [
                # p1: CDN A live+vod, CDN B vod only.
                make_record(
                    snapshot=d, publisher_id="p1", cdn_names=("A",),
                    content_type=ContentType.LIVE,
                ),
                make_record(
                    snapshot=d, publisher_id="p1", cdn_names=("A",),
                    content_type=ContentType.VOD,
                ),
                make_record(
                    snapshot=d, publisher_id="p1", cdn_names=("B",),
                    content_type=ContentType.VOD,
                ),
            ]
        )
        stats = live_vod_cdn_segregation(data)
        assert stats.eligible_publishers == 1
        assert stats.pct_with_vod_only_cdn == 100.0
        assert stats.pct_with_live_only_cdn == 0.0

    def test_single_cdn_publishers_ineligible(self):
        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(
                    snapshot=d, publisher_id="p1",
                    content_type=ContentType.LIVE,
                ),
                make_record(
                    snapshot=d, publisher_id="p1",
                    content_type=ContentType.VOD,
                ),
            ]
        )
        with pytest.raises(AnalysisError):
            live_vod_cdn_segregation(data)


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"name": "alpha", "value": 1.234},
            {"name": "b", "value": 22.5},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in lines[2]
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_comparison(self):
        text = format_comparison(
            "Fig 18", {"savings_pct": (16.5, 16.36)}
        )
        assert "paper=16.500" in text
        assert "measured=16.360" in text

    def test_cdf_rows(self):
        rows = cdf_rows([1, 2], [0.5, 1.0], x_label="hours")
        assert rows == [
            {"hours": 1.0, "cdf": 0.5},
            {"hours": 2.0, "cdf": 1.0},
        ]
