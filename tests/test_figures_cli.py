"""The figure registry and the CLI."""

import pytest

from repro import figures
from repro.cli import main
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset

EXPECTED_IDS = {
    "T1",
    "F2a", "F2b", "F2c", "F3a", "F3b", "F3c", "F4", "F5",
    "F6a", "F6b", "F6c", "F7", "F8", "F9a", "F9b", "F9c",
    "F10a", "F10b", "F10c", "F11a", "F11b", "F12a", "F12b", "F12c",
    "F13", "F14", "F15", "F16", "F17", "F18",
    "S41R", "S43L", "S44",
    "X1", "X2", "X3", "X4",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(figures.figure_ids()) == EXPECTED_IDS

    def test_descriptions_exist(self):
        for figure_id in figures.figure_ids():
            assert figures.describe(figure_id)

    def test_unknown_figure_rejected(self, eco):
        with pytest.raises(AnalysisError):
            figures.run_figure("F99", eco)

    @pytest.mark.parametrize("figure_id", sorted(EXPECTED_IDS))
    def test_every_figure_produces_rows(self, eco, figure_id):
        rows = figures.run_figure(figure_id, eco)
        assert rows, figure_id
        assert all(isinstance(row, dict) for row in rows)

    def test_f17_lists_eleven_ladders(self, eco):
        rows = figures.run_figure("F17", eco)
        labels = {row["label"] for row in rows}
        assert labels == {"O"} | {f"S{i}" for i in range(1, 11)}

    def test_f13_reports_four_metrics(self, eco):
        rows = figures.run_figure("F13", eco)
        assert len(rows) == 4

    def test_t1_detection_consistent(self, eco):
        for row in figures.run_figure("T1", eco):
            assert row["protocol"] == row["detected"]


class TestCli:
    def test_figures_listing(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "F18" in out and "T1" in out

    def test_generate_writes_dataset(self, tmp_path, capsys):
        out_path = tmp_path / "mini.jsonl.gz"
        code = main(
            [
                "generate",
                "--out",
                str(out_path),
                "--seed",
                "7",
                "--snapshots",
                "2",
                "--publishers",
                "30",
            ]
        )
        assert code == 0
        assert out_path.exists()
        loaded = Dataset.load(out_path)
        assert len(loaded.publishers()) == 30

    def test_figure_command_prints_table(self, capsys):
        code = main(
            [
                "figure",
                "T1",
                "--snapshots",
                "2",
                "--publishers",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SmoothStreaming" in out

    def test_summary_command(self, capsys):
        code = main(["summary", "--snapshots", "2", "--publishers", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "protocols" in out

    def test_unknown_figure_id_errors(self):
        with pytest.raises(AnalysisError):
            main(["figure", "F99", "--snapshots", "2", "--publishers", "30"])
