"""Videos and catalogues (repro.entities.video)."""

import pytest

from repro.constants import ContentType
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.errors import LadderError


class TestVideo:
    def test_storage_is_bitrate_sum_times_duration(self, video):
        ladder = BitrateLadder.from_bitrates((800,))
        # 800 kbps = 1e5 B/s over 600 s = 6e7 bytes.
        assert video.storage_bytes(ladder) == pytest.approx(6e7)

    def test_storage_sums_over_renditions(self, video, ladder):
        per_rung = [
            video.storage_bytes(BitrateLadder.from_bitrates((b,)))
            for b in ladder.bitrates_kbps
        ]
        assert video.storage_bytes(ladder) == pytest.approx(sum(per_rung))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Video(video_id="", duration_seconds=10)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Video(video_id="v", duration_seconds=0)

    def test_default_content_type_is_vod(self, video):
        assert video.content_type is ContentType.VOD


class TestCatalogue:
    def test_len_and_contains(self, catalogue):
        assert len(catalogue) == 2
        assert "vid_test_00001" in catalogue
        assert "vid_missing" not in catalogue

    def test_get(self, catalogue):
        assert catalogue.get("vid_test_00002").duration_seconds == 1200.0

    def test_get_missing_raises_keyerror(self, catalogue):
        with pytest.raises(KeyError):
            catalogue.get("nope")

    def test_duplicate_rejected(self, catalogue, video):
        with pytest.raises(ValueError):
            catalogue.add(video)

    def test_total_duration(self, catalogue):
        assert catalogue.total_duration_seconds == 1800.0

    def test_storage_aggregates_videos(self, catalogue, ladder):
        expected = sum(v.storage_bytes(ladder) for v in catalogue)
        assert catalogue.storage_bytes(ladder) == pytest.approx(expected)

    def test_empty_catalogue_storage_rejected(self, ladder):
        with pytest.raises(LadderError):
            Catalogue("empty").storage_bytes(ladder)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Catalogue("")

    def test_filter_by_content_type(self):
        catalogue = Catalogue(
            "mix",
            [
                Video("v1", 10, ContentType.LIVE),
                Video("v2", 10, ContentType.VOD),
                Video("v3", 10, ContentType.LIVE),
            ],
        )
        live = catalogue.filter(ContentType.LIVE)
        assert sorted(live.video_ids) == ["v1", "v3"]
        assert len(catalogue.filter(ContentType.VOD)) == 1
