"""The Dataset container (repro.telemetry.dataset)."""

from datetime import date

import pytest

from repro.constants import ContentType
from repro.errors import DatasetError
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


@pytest.fixture
def small_dataset():
    return Dataset(
        [
            make_record(
                snapshot=date(2016, 1, 4),
                publisher_id="p1",
                weight=10,
                view_duration_hours=1.0,
            ),
            make_record(
                snapshot=date(2016, 1, 4),
                publisher_id="p2",
                weight=5,
                view_duration_hours=2.0,
                video_id="vid_y",
            ),
            make_record(
                snapshot=date(2018, 3, 12),
                publisher_id="p1",
                weight=2,
                view_duration_hours=0.5,
                content_type=ContentType.LIVE,
            ),
        ]
    )


class TestSlicing:
    def test_snapshots_sorted(self, small_dataset):
        assert small_dataset.snapshots() == [
            date(2016, 1, 4),
            date(2018, 3, 12),
        ]

    def test_latest_and_first(self, small_dataset):
        assert small_dataset.latest_snapshot() == date(2018, 3, 12)
        assert small_dataset.first_snapshot() == date(2016, 1, 4)
        assert len(small_dataset.latest()) == 1

    def test_for_snapshot(self, small_dataset):
        snap = small_dataset.for_snapshot(date(2016, 1, 4))
        assert len(snap) == 2

    def test_missing_snapshot_raises(self, small_dataset):
        with pytest.raises(DatasetError):
            small_dataset.for_snapshot(date(2017, 1, 1))

    def test_empty_dataset_latest_raises(self):
        with pytest.raises(DatasetError):
            Dataset([]).latest_snapshot()

    def test_filter(self, small_dataset):
        live = small_dataset.filter(
            lambda r: r.content_type is ContentType.LIVE
        )
        assert len(live) == 1

    def test_exclude_publishers(self, small_dataset):
        rest = small_dataset.exclude_publishers(["p1"])
        assert rest.publishers() == {"p2"}


class TestAggregation:
    def test_totals(self, small_dataset):
        assert small_dataset.total_view_hours() == pytest.approx(
            10 * 1.0 + 5 * 2.0 + 2 * 0.5
        )
        assert small_dataset.total_views() == 17.0

    def test_publisher_view_hours(self, small_dataset):
        vh = small_dataset.publisher_view_hours()
        assert vh["p1"] == pytest.approx(11.0)
        assert vh["p2"] == pytest.approx(10.0)

    def test_view_hours_by_arbitrary_key(self, small_dataset):
        by_type = small_dataset.view_hours_by(lambda r: r.content_type)
        assert by_type[ContentType.LIVE] == pytest.approx(1.0)

    def test_views_by(self, small_dataset):
        by_pub = small_dataset.views_by(lambda r: r.publisher_id)
        assert by_pub["p1"] == 12.0

    def test_top_publishers(self, small_dataset):
        assert small_dataset.top_publishers(1) == ["p1"]
        assert small_dataset.top_publishers(0) == []
        with pytest.raises(DatasetError):
            small_dataset.top_publishers(-1)

    def test_distinct_video_ids(self, small_dataset):
        assert small_dataset.distinct_video_ids() == 2
        assert small_dataset.distinct_video_ids("p2") == 1


class TestExplode:
    def test_explode_preserves_aggregates(self, small_dataset):
        exploded = small_dataset.explode()
        assert len(exploded) == 17
        assert exploded.total_view_hours() == pytest.approx(
            small_dataset.total_view_hours()
        )
        assert exploded.total_views() == small_dataset.total_views()

    def test_explode_unit_weights(self, small_dataset):
        assert all(r.weight == 1.0 for r in small_dataset.explode())

    def test_explode_rejects_fractional_weights(self):
        dataset = Dataset([make_record(weight=1.5)])
        with pytest.raises(DatasetError):
            dataset.explode()


class TestPersistence:
    def test_jsonl_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        small_dataset.save(path)
        loaded = Dataset.load(path)
        assert loaded.records == small_dataset.records

    def test_gzip_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        small_dataset.save(path)
        assert Dataset.load(path).records == small_dataset.records

    def test_gzip_actually_compressed(self, small_dataset, tmp_path):
        plain = tmp_path / "a.jsonl"
        compressed = tmp_path / "a.jsonl.gz"
        small_dataset.save(plain)
        small_dataset.save(compressed)
        assert compressed.stat().st_size < plain.stat().st_size

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            Dataset.load(tmp_path / "nope.jsonl")

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"broken": true}\n')
        with pytest.raises(DatasetError) as excinfo:
            Dataset.load(path)
        assert "bad.jsonl:1" in str(excinfo.value)

    def test_blank_lines_skipped(self, small_dataset, tmp_path):
        path = tmp_path / "gaps.jsonl"
        text = "\n".join(r.to_json() for r in small_dataset) + "\n\n\n"
        path.write_text(text)
        assert len(Dataset.load(path)) == 3


class TestLoadLimit:
    @pytest.fixture
    def saved(self, small_dataset, tmp_path):
        path = tmp_path / "limited.jsonl"
        small_dataset.save(path)
        return path, small_dataset

    def test_limit_is_an_exact_prefix(self, saved):
        path, dataset = saved
        assert Dataset.load(path, limit=2).records == dataset.records[:2]

    def test_limit_zero_loads_nothing(self, saved):
        path, _ = saved
        loaded = Dataset.load(path, limit=0)
        assert len(loaded) == 0
        assert loaded.records == ()

    def test_limit_beyond_length_loads_everything(self, saved):
        path, dataset = saved
        assert Dataset.load(path, limit=10_000).records == dataset.records

    def test_limit_equal_to_length_loads_everything(self, saved):
        path, dataset = saved
        loaded = Dataset.load(path, limit=len(dataset))
        assert loaded.records == dataset.records

    def test_negative_limit_raises_instead_of_truncating(self, saved):
        path, _ = saved
        with pytest.raises(DatasetError, match=">= 0.*-1"):
            Dataset.load(path, limit=-1)

    def test_negative_limit_checked_before_file_access(self, tmp_path):
        # The argument error wins over the missing-file error.
        with pytest.raises(DatasetError, match=">= 0"):
            Dataset.load(tmp_path / "absent.jsonl", limit=-5)


class TestRepr:
    def test_repr_mentions_shape(self, small_dataset):
        text = repr(small_dataset)
        assert "3 records" in text
        assert "2 snapshots" in text
        assert "2 publishers" in text


class TestCsvExport:
    def test_csv_written_with_header(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        small_dataset.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(small_dataset)
        assert lines[0].startswith("snapshot,publisher_id,url")

    def test_multivalue_fields_pipe_joined(self, tmp_path):
        record = make_record(cdn_names=("A", "B"))
        path = tmp_path / "data.csv"
        Dataset([record]).to_csv(path)
        body = path.read_text().splitlines()[1]
        assert "A|B" in body
        assert "150|600|2400" in body

    def test_enum_values_serialized(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        small_dataset.to_csv(path)
        text = path.read_text()
        assert "vod" in text and "wifi" in text
