"""Fault-tolerant ingestion under deterministic fault injection.

The robustness contract: ``quarantine`` mode never raises no matter how
the stream is corrupted, every rejected event is accounted for in the
dead-letter queue with a typed reason, and sessions the injector did
not touch fold to exactly the records a clean run produces.
"""

from datetime import date

import pytest

from repro.constants import ContentType
from repro.errors import (
    CircuitOpenError,
    DatasetError,
    IngestError,
    TransportError,
)
from repro.resilience import CircuitBreaker, CircuitState, retry_with_backoff
from repro.telemetry.events import (
    Heartbeat,
    SessionEnd,
    SessionStart,
    Sessionizer,
)
from repro.telemetry.faults import (
    FaultInjector,
    FaultMix,
    FlakyTransport,
    corrupt_heartbeat,
)
from repro.telemetry.ingest import (
    ErrorPolicy,
    IngestPipeline,
    RejectReason,
    RobustSessionizer,
    events_from_record,
    events_from_records,
)
from repro.telemetry.records import ViewRecord


def make_record(i: int = 0, **overrides) -> ViewRecord:
    kwargs = dict(
        snapshot=date(2018, 3, 12),
        publisher_id=f"pub_{i % 5:03d}",
        url="http://a.cdn.example.net/vid/master.m3u8",
        device_model="roku-ultra",
        os_name="roku",
        cdn_names=("A", "B") if i % 3 == 0 else ("A",),
        bitrate_ladder_kbps=(150.0, 600.0),
        view_duration_hours=0.01 + i * 0.001,
        avg_bitrate_kbps=600.0,
        rebuffer_ratio=0.02,
        content_type=ContentType.VOD,
        video_id=f"vid_{i:04d}",
    )
    kwargs.update(overrides)
    return ViewRecord(**kwargs)


def _start(session_id="s1", **overrides) -> SessionStart:
    kwargs = dict(
        session_id=session_id,
        snapshot=date(2018, 3, 12),
        publisher_id="pub_001",
        url="http://a.cdn.example.net/vid_x/master.m3u8",
        video_id="vid_x",
        device_model="roku-ultra",
        os_name="roku",
        content_type=ContentType.VOD,
        bitrate_ladder_kbps=(150.0, 600.0),
    )
    kwargs.update(overrides)
    return SessionStart(**kwargs)


def _beat(session_id="s1", playing=18.0, rebuffering=2.0, seq=None):
    return Heartbeat(
        session_id=session_id,
        interval_seconds=20.0,
        playing_seconds=playing,
        rebuffering_seconds=rebuffering,
        bitrate_kbps=600.0,
        cdn_name="A",
        seq=seq,
    )


@pytest.fixture(scope="module")
def clean_records():
    return [make_record(i) for i in range(40)]


@pytest.fixture(scope="module")
def clean_events(clean_records):
    return list(events_from_records(clean_records))


@pytest.fixture(scope="module")
def clean_report(clean_events):
    return IngestPipeline(ErrorPolicy.QUARANTINE).run(clean_events)


class TestEventRoundTrip:
    def test_clean_stream_reproduces_all_records(
        self, clean_records, clean_report
    ):
        assert len(clean_report.records) == len(clean_records)
        assert clean_report.quarantined == 0
        assert clean_report.deduped == 0
        for original, folded in zip(clean_records, clean_report.records):
            assert folded.video_id == original.video_id
            assert folded.view_duration_hours == pytest.approx(
                original.view_duration_hours
            )
            assert folded.rebuffer_ratio == pytest.approx(
                original.rebuffer_ratio
            )
            assert folded.avg_bitrate_kbps == pytest.approx(
                original.avg_bitrate_kbps
            )
            assert folded.cdn_names == original.cdn_names

    def test_zero_playback_record_has_no_event_form(self):
        record = make_record(0, view_duration_hours=0.0)
        with pytest.raises(IngestError):
            events_from_record(record, session_id="s")


@pytest.mark.robustness
class TestQuarantineFuzz:
    """Seeded corruption sweeps: the quarantine contract, end to end."""

    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quarantine_never_raises_and_accounts_for_every_event(
        self, clean_events, seed
    ):
        injector = FaultInjector(FaultMix.uniform(0.25), seed=seed)
        corrupted = injector.apply(clean_events)
        pipeline = IngestPipeline(ErrorPolicy.QUARANTINE)
        report = pipeline.run(corrupted)  # must not raise
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
            == len(corrupted)
        )
        assert report.quarantined == len(report.dead_letters)
        assert all(
            isinstance(letter.reason, RejectReason)
            for letter in report.dead_letters
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_uncorrupted_sessions_match_clean_run(
        self, clean_records, clean_events, clean_report, seed
    ):
        injector = FaultInjector(FaultMix.uniform(0.25), seed=seed)
        corrupted = injector.apply(clean_events)
        report = IngestPipeline(ErrorPolicy.QUARANTINE).run(corrupted)
        clean_by_vid = {r.video_id: r for r in clean_report.records}
        faulty_by_vid = {r.video_id: r for r in report.records}
        untouched = 0
        for index, record in enumerate(clean_records):
            sid = f"sess_{index:06d}"
            if sid in injector.corrupted_sessions:
                continue
            untouched += 1
            assert faulty_by_vid[record.video_id] == clean_by_vid[
                record.video_id
            ]
        assert untouched > 0  # the sweep must actually test something

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repair_mode_never_raises_and_keeps_at_least_quarantine_yield(
        self, clean_events, seed
    ):
        injector = FaultInjector(FaultMix.uniform(0.25), seed=seed)
        corrupted = injector.apply(clean_events)
        quarantine = IngestPipeline(ErrorPolicy.QUARANTINE).run(
            list(corrupted)
        )
        repair = IngestPipeline(ErrorPolicy.REPAIR).run(list(corrupted))
        assert len(repair.records) >= len(quarantine.records)
        assert (
            repair.accepted + repair.deduped + repair.event_quarantined
            == repair.total_events
        )

    def test_heavy_corruption_still_completes(self, clean_events):
        injector = FaultInjector(FaultMix.uniform(0.6), seed=99)
        report = IngestPipeline(ErrorPolicy.QUARANTINE).run(
            injector.apply(clean_events)
        )
        assert report.total_events > 0
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )


class TestStrictParity:
    """Strict mode must raise exactly what the plain Sessionizer raises."""

    CASES = {
        "duplicate_start": [_start(), _beat(), _start()],
        "orphan_heartbeat": [_beat()],
        "unknown_end": [SessionEnd("ghost")],
        "end_without_heartbeats": [_start(), SessionEnd("s1")],
        "unknown_event_type": [_start(), "not an event"],
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_strict_matches_plain_sessionizer(self, name):
        events = self.CASES[name]
        with pytest.raises(DatasetError) as plain:
            plain_sessionizer = Sessionizer()
            for event in events:
                plain_sessionizer.ingest(event)
        with pytest.raises(DatasetError) as robust:
            pipeline = IngestPipeline(ErrorPolicy.STRICT)
            for event in events:
                pipeline.ingest(event)
        assert str(robust.value) == str(plain.value)

    def test_strict_clean_stream_matches(self, clean_events, clean_report):
        report = IngestPipeline(ErrorPolicy.STRICT).run(list(clean_events))
        assert report.records == clean_report.records


class TestDeadLetterReasons:
    def run(self, events, policy=ErrorPolicy.QUARANTINE, **kwargs):
        return IngestPipeline(policy, **kwargs).run(events)

    def reasons(self, report):
        return [letter.reason for letter in report.dead_letters]

    def test_unknown_session_end(self):
        report = self.run([SessionEnd("ghost")])
        assert self.reasons(report) == [RejectReason.UNKNOWN_SESSION]

    def test_conflicting_duplicate_start(self):
        report = self.run(
            [_start(), _start(publisher_id="pub_other"), _beat(),
             SessionEnd("s1")]
        )
        assert self.reasons(report) == [RejectReason.DUPLICATE_START]
        assert len(report.records) == 1  # first start wins

    def test_identical_duplicate_start_is_deduped_not_quarantined(self):
        report = self.run([_start(), _start(), _beat(), SessionEnd("s1")])
        assert report.deduped == 1
        assert report.quarantined == 0

    def test_negative_timing_quarantined(self):
        bad = corrupt_heartbeat(_beat(), playing_seconds=-5.0)
        report = self.run([_start(), bad, _beat(), SessionEnd("s1")])
        assert RejectReason.NEGATIVE_TIMING in self.reasons(report)
        assert len(report.records) == 1  # session survives on good beats

    def test_negative_timing_repaired_in_repair_mode(self):
        bad = corrupt_heartbeat(_beat(), playing_seconds=-5.0)
        report = self.run(
            [_start(), bad, _beat(), SessionEnd("s1")],
            policy=ErrorPolicy.REPAIR,
        )
        assert report.repaired == 1
        assert report.quarantined == 0
        assert len(report.records) == 1

    def test_end_without_heartbeats(self):
        report = self.run([_start(), SessionEnd("s1")])
        assert self.reasons(report) == [RejectReason.END_WITHOUT_HEARTBEATS]

    def test_orphan_heartbeat_after_close(self):
        report = self.run([_start(), _beat(), SessionEnd("s1"), _beat()])
        assert self.reasons(report) == [RejectReason.ORPHAN_HEARTBEAT]

    def test_orphan_heartbeat_never_started(self):
        report = self.run([_beat("never_started")])
        assert self.reasons(report) == [RejectReason.ORPHAN_HEARTBEAT]
        assert report.dead_letters[0].sequence == 0

    def test_truncated_start_quarantined_at_fold(self):
        report = self.run(
            [_start(publisher_id=""), _beat(), SessionEnd("s1")]
        )
        assert self.reasons(report) == [RejectReason.MALFORMED_EVENT]

    def test_unknown_event_type(self):
        report = self.run([42])
        assert self.reasons(report) == [RejectReason.UNKNOWN_EVENT_TYPE]

    def test_reorder_buffer_replays_early_heartbeats(self):
        report = self.run([_beat(), _beat(), _start(), SessionEnd("s1")])
        assert report.quarantined == 0
        assert len(report.records) == 1
        assert report.records[0].view_duration_hours == pytest.approx(
            36.0 / 3600
        )

    def test_reorder_buffer_overflow(self):
        report = self.run(
            [_beat(f"s{i}") for i in range(5)], reorder_buffer=3
        )
        counts = report.reason_counts()
        assert counts[RejectReason.REORDER_OVERFLOW.value] == 2
        # The three parked beats become orphans at finalize.
        assert counts[RejectReason.ORPHAN_HEARTBEAT.value] == 3

    def test_end_before_start_is_replayed_in_order(self):
        report = self.run([_beat(), SessionEnd("s1"), _start()])
        assert len(report.records) == 1
        assert report.quarantined == 0

    def test_stale_session_reaped_by_idle_gap(self):
        events = [_start("stale"), _beat("stale")]
        events += [
            event
            for i in range(10)
            for event in (_start(f"s{i}"), _beat(f"s{i}"),
                          SessionEnd(f"s{i}"))
        ]
        report = self.run(events, max_idle_events=5)
        assert RejectReason.STALE_SESSION in self.reasons(report)
        assert report.reaped == 1
        assert len(report.records) == 10  # stale session dropped

    def test_stale_session_force_folded_in_repair_mode(self):
        events = [_start("stale"), _beat("stale")]
        events += [
            event
            for i in range(10)
            for event in (_start(f"s{i}"), _beat(f"s{i}"),
                          SessionEnd(f"s{i}"))
        ]
        report = self.run(
            events, policy=ErrorPolicy.REPAIR, max_idle_events=5
        )
        assert report.reaped == 1
        # The stale session is force-folded into a record, not dropped.
        assert len(report.records) == 11
        assert RejectReason.STALE_SESSION not in self.reasons(report)

    def test_duplicate_heartbeat_deduped_by_seq(self):
        beat = _beat(seq=0)
        report = self.run(
            [_start(), beat, beat, _beat(seq=1), SessionEnd("s1")]
        )
        assert report.deduped == 1
        assert report.records[0].view_duration_hours == pytest.approx(
            36.0 / 3600
        )

    def test_duplicate_end_deduped(self):
        report = self.run(
            [_start(), _beat(), SessionEnd("s1"), SessionEnd("s1")]
        )
        assert report.deduped == 1
        assert len(report.records) == 1


@pytest.mark.robustness
class TestIngestEdgeCases:
    """Boundary conditions: empty streams, exact-capacity overflow,
    duplicate bursts larger than any buffering window."""

    def run(self, events, **kwargs):
        return IngestPipeline(ErrorPolicy.QUARANTINE, **kwargs).run(events)

    def test_zero_length_stream_through_injector_and_pipeline(self):
        injector = FaultInjector(FaultMix.uniform(0.5), seed=1)
        assert injector.apply([]) == []
        assert injector.log == []
        assert injector.corrupted_sessions == set()
        report = self.run([])
        assert report.total_events == 0
        assert report.records == []
        assert report.quarantined == 0
        assert report.deduped == 0
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )

    def test_zero_length_stream_in_strict_and_repair_modes(self):
        for policy in (ErrorPolicy.STRICT, ErrorPolicy.REPAIR):
            report = IngestPipeline(policy).run([])
            assert report.total_events == 0
            assert report.records == []

    def test_reorder_buffer_fills_to_exact_capacity_without_loss(self):
        # Exactly `capacity` early heartbeats park; the late start
        # replays every one of them, so nothing is lost at the boundary.
        capacity = 4
        events = [_beat("late", seq=i) for i in range(capacity)]
        events += [_start("late"), SessionEnd("late")]
        report = self.run(events, reorder_buffer=capacity)
        assert report.quarantined == 0
        assert len(report.records) == 1
        assert report.records[0].view_duration_hours == pytest.approx(
            capacity * 18.0 / 3600
        )
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )

    def test_one_past_exact_capacity_overflows_exactly_once(self):
        capacity = 4
        events = [_beat("late", seq=i) for i in range(capacity + 1)]
        events += [_start("late"), SessionEnd("late")]
        report = self.run(events, reorder_buffer=capacity)
        counts = report.reason_counts()
        assert counts[RejectReason.REORDER_OVERFLOW.value] == 1
        assert report.quarantined == 1
        # The parked events still replay once the start arrives.
        assert len(report.records) == 1
        assert report.records[0].view_duration_hours == pytest.approx(
            capacity * 18.0 / 3600
        )
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )

    def test_zero_capacity_buffer_rejects_every_early_event(self):
        # Disabling the buffer entirely (capacity 0) quarantines early
        # events as orphans instead of overflowing.
        events = [_beat("late", seq=0), _start("late"), _beat("late", seq=1),
                  SessionEnd("late")]
        report = self.run(events, reorder_buffer=0)
        counts = report.reason_counts()
        assert counts[RejectReason.ORPHAN_HEARTBEAT.value] == 1
        assert RejectReason.REORDER_OVERFLOW.value not in counts
        assert len(report.records) == 1  # folds from the in-order beat

    def test_duplicate_seq_burst_larger_than_reorder_buffer(self):
        # Seq dedup is per-session and unbounded: a burst of duplicates
        # far wider than the reorder buffer still collapses to one beat.
        burst = 12
        events = [_start()]
        events += [_beat(seq=0)] * burst
        events += [_beat(seq=1), SessionEnd("s1")]
        report = self.run(events, reorder_buffer=2)
        assert report.deduped == burst - 1
        assert report.quarantined == 0
        assert len(report.records) == 1
        assert report.records[0].view_duration_hours == pytest.approx(
            36.0 / 3600
        )
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )

    def test_interleaved_duplicate_bursts_dedup_per_session(self):
        events = [_start("a"), _start("b")]
        for _ in range(8):
            events.append(_beat("a", seq=0))
            events.append(_beat("b", seq=0))
        events += [SessionEnd("a"), SessionEnd("b")]
        report = self.run(events)
        # One surviving beat per session; the other 14 dedup away.
        assert report.deduped == 14
        assert len(report.records) == 2
        for record in report.records:
            assert record.view_duration_hours == pytest.approx(18.0 / 3600)


class TestFaultInjectorDeterminism:
    def test_same_seed_same_stream(self, clean_events):
        mix = FaultMix.uniform(0.3)
        first = FaultInjector(mix, seed=5).apply(clean_events)
        second = FaultInjector(mix, seed=5).apply(clean_events)
        assert first == second

    def test_different_seed_different_stream(self, clean_events):
        mix = FaultMix.uniform(0.3)
        first = FaultInjector(mix, seed=5).apply(clean_events)
        second = FaultInjector(mix, seed=6).apply(clean_events)
        assert first != second

    def test_zero_rate_is_identity(self, clean_events):
        injector = FaultInjector(FaultMix(), seed=5)
        assert injector.apply(clean_events) == list(clean_events)
        assert injector.corrupted_sessions == set()

    def test_rates_validated(self):
        with pytest.raises(DatasetError):
            FaultMix(drop=0.8, duplicate=0.5)
        with pytest.raises(DatasetError):
            FaultMix(drop=-0.1)


@pytest.mark.robustness
class TestFlakyTransportResilience:
    def test_thirty_percent_failure_rate_succeeds_with_retries(self):
        transport = FlakyTransport(
            lambda payload: f"stored:{payload}", failure_rate=0.3, seed=11
        )
        for i in range(50):
            result = retry_with_backoff(
                lambda i=i: transport(i),
                retry_on=(TransportError,),
                seed=i,
            )
            assert result == f"stored:{i}"
        assert transport.failures > 0  # the flakiness actually fired

    def test_sustained_failure_trips_circuit_breaker(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_timeout=60.0,
            clock=lambda: clock[0],
        )
        transport = FlakyTransport(lambda: "ok", failure_rate=1.0, seed=0)
        outcomes = []
        for _ in range(10):
            try:
                breaker.call(transport)
            except TransportError:
                outcomes.append("transport")
            except CircuitOpenError as exc:
                outcomes.append(type(exc).__name__)
        assert breaker.state is CircuitState.OPEN
        # After 3 real failures the breaker short-circuits the rest.
        assert outcomes[:3] == ["transport"] * 3
        assert outcomes[3:] == ["CircuitOpenError"] * 7
        assert transport.attempts == 3
