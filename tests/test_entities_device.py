"""Devices, SDKs and the registry (repro.entities.device)."""

import pytest

from repro.constants import Platform
from repro.entities.device import SDK, Device, DeviceRegistry, default_registry


class TestSDK:
    def test_identity_string(self):
        assert str(SDK("RokuSDK", "8.1")) == "RokuSDK/8.1"

    def test_equality(self):
        assert SDK("A", "1") == SDK("A", "1")
        assert SDK("A", "1") != SDK("A", "2")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            SDK("", "1")
        with pytest.raises(ValueError):
            SDK("A", "")


class TestDevice:
    def test_app_device_needs_sdk(self):
        with pytest.raises(ValueError):
            Device(
                model="roku-x",
                platform=Platform.SET_TOP,
                family="roku",
                os_name="roku",
            )

    def test_browser_device_needs_no_sdk(self):
        device = Device(
            model="chrome-html5",
            platform=Platform.BROWSER,
            family="html5",
            os_name="desktop",
        )
        assert device.uses_browser_player

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Device(
                model="", platform=Platform.BROWSER, family="f", os_name="o"
            )


class TestDefaultRegistry:
    @pytest.fixture(scope="class")
    def registry(self):
        return default_registry()

    def test_covers_all_platforms(self, registry):
        for platform in Platform:
            assert registry.models(platform), platform

    def test_lookup_roundtrip(self, registry):
        device = registry.lookup("roku-ultra")
        assert device.platform is Platform.SET_TOP
        assert device.family == "roku"
        assert device.sdk_name == "RokuSDK"

    def test_unknown_model(self, registry):
        with pytest.raises(KeyError):
            registry.lookup("vhs-player")

    def test_contains(self, registry):
        assert "iphone" in registry
        assert "pager" not in registry

    def test_browser_families_are_player_technologies(self, registry):
        families = set(registry.families(Platform.BROWSER))
        assert {"html5", "flash"} <= families

    def test_mobile_families_are_oses(self, registry):
        assert set(registry.families(Platform.MOBILE)) >= {"ios", "android"}

    def test_taxonomy_matches_fig5(self, registry):
        taxonomy = registry.taxonomy()
        assert set(taxonomy) == set(Platform)
        assert "roku" in taxonomy[Platform.SET_TOP]

    def test_every_app_device_has_sdk(self, registry):
        for model in registry.models():
            device = registry.lookup(model)
            if device.platform.is_app_based:
                assert device.sdk_name

    def test_duplicate_model_rejected(self):
        device = Device(
            model="x",
            platform=Platform.BROWSER,
            family="html5",
            os_name="desktop",
        )
        with pytest.raises(ValueError):
            DeviceRegistry([device, device])
