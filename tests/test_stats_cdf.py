"""Empirical CDFs (repro.stats.cdf)."""

import numpy as np
import pytest

from repro.stats.cdf import ECDF


class TestUnweighted:
    def test_single_point(self):
        cdf = ECDF([5.0])
        assert cdf(4.9) == 0.0
        assert cdf(5.0) == 1.0

    def test_quartiles(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf(1) == 0.25
        assert cdf(2) == 0.5
        assert cdf(4) == 1.0

    def test_right_continuity(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf(2.5) == 0.5  # flat between sample points

    def test_below_support_is_zero(self):
        assert ECDF([3, 4])(0.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_support(self):
        assert ECDF([3, 1, 2]).support == (1.0, 3.0)


class TestWeighted:
    def test_weight_equals_repetition(self):
        weighted = ECDF([1, 2], weights=[3, 1])
        repeated = ECDF([1, 1, 1, 2])
        for x in (0.5, 1.0, 1.5, 2.0):
            assert weighted(x) == repeated(x)

    def test_zero_weight_sample_ignored_in_mass(self):
        cdf = ECDF([1, 2], weights=[0, 1])
        assert cdf(1) == 0.0
        assert cdf(2) == 1.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            ECDF([1, 2], weights=[1, -1])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ECDF([1, 2], weights=[0, 0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ECDF([1, 2, 3], weights=[1, 2])

    def test_total_weight(self):
        assert ECDF([1, 2], weights=[3, 2]).total_weight == 5.0


class TestQuantiles:
    def test_median_of_odd_sample(self):
        assert ECDF([1, 2, 3]).median() == 2.0

    def test_quantile_bounds(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_quantile_inverse_of_cdf(self):
        values = [1, 5, 7, 9, 11]
        cdf = ECDF(values)
        for q in (0.2, 0.4, 0.6, 0.8, 1.0):
            x = cdf.quantile(q)
            assert cdf(x) >= q


class TestSurvivalAndSeries:
    def test_survival_complements_cdf(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf.survival(2) == pytest.approx(1 - cdf(2))

    def test_evaluate_matches_scalar(self):
        cdf = ECDF([1, 2, 3])
        xs = [0.0, 1.5, 3.0]
        np.testing.assert_allclose(
            cdf.evaluate(xs), [cdf(x) for x in xs]
        )

    def test_steps_are_monotone(self):
        xs, fs = ECDF([3, 1, 4, 1, 5]).steps()
        assert list(xs) == sorted(xs)
        assert all(b >= a for a, b in zip(fs, fs[1:]))
        assert fs[-1] == 1.0

    def test_as_series_endpoints(self):
        cdf = ECDF([1, 2, 3])
        xs, fs = cdf.as_series(n_points=5)
        assert xs[0] == 1.0 and xs[-1] == 3.0
        assert fs[-1] == 1.0

    def test_as_series_needs_two_points(self):
        with pytest.raises(ValueError):
            ECDF([1, 2]).as_series(n_points=1)
