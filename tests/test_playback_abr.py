"""ABR rung selection (repro.playback.abr).

The Fig 15/16 ablation depends on both families behaving classically:
throughput ABR never overshoots its discounted estimate, and BBA maps
buffer occupancy monotonically onto the ladder between its reservoir
and cushion boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities.ladder import BitrateLadder
from repro.errors import PlaybackError
from repro.playback.abr import AbrState, BufferBasedAbr, ThroughputAbr

ladders = st.lists(
    st.floats(min_value=50, max_value=20_000, allow_nan=False),
    min_size=1,
    max_size=10,
    unique=True,
).map(sorted).filter(
    lambda rates: all(b / a > 1.001 for a, b in zip(rates, rates[1:]))
).map(BitrateLadder.from_bitrates)

throughputs = st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False)
buffers = st.floats(min_value=0.0, max_value=120.0, allow_nan=False)


def _state(buffer_seconds=10.0, ewma_kbps=1_000.0):
    return AbrState(
        buffer_seconds=buffer_seconds,
        last_throughput_kbps=ewma_kbps,
        ewma_throughput_kbps=ewma_kbps,
    )


FIVE_RUNG = BitrateLadder.from_bitrates([150, 400, 800, 1600, 2400])


class TestThroughputAbr:
    @pytest.mark.parametrize("safety", [0.0, -0.5, 1.2])
    def test_bad_safety_rejected(self, safety):
        with pytest.raises(PlaybackError):
            ThroughputAbr(safety=safety)

    def test_picks_highest_rung_under_the_discounted_estimate(self):
        abr = ThroughputAbr(safety=0.8)
        # 0.8 * 1100 = 880 -> the 800 kbps rung, not 1600.
        chosen = abr.choose(FIVE_RUNG, _state(ewma_kbps=1_100.0))
        assert chosen.bitrate_kbps == 800

    def test_falls_back_to_lowest_rung_when_starved(self):
        chosen = ThroughputAbr().choose(FIVE_RUNG, _state(ewma_kbps=10.0))
        assert chosen.bitrate_kbps == FIVE_RUNG.min_bitrate_kbps

    @given(ladder=ladders, ewma=throughputs)
    @settings(max_examples=80)
    def test_never_overshoots_unless_starved(self, ladder, ewma):
        chosen = ThroughputAbr(safety=0.8).choose(ladder, _state(ewma_kbps=ewma))
        budget = 0.8 * ewma
        if chosen.bitrate_kbps > budget:
            # Only legal overshoot: even the lowest rung exceeds budget.
            assert chosen.bitrate_kbps == ladder.min_bitrate_kbps

    @given(ladder=ladders, ewma=throughputs)
    @settings(max_examples=80)
    def test_chooses_the_maximal_fitting_rung(self, ladder, ewma):
        chosen = ThroughputAbr(safety=1.0).choose(ladder, _state(ewma_kbps=ewma))
        assert chosen in tuple(ladder)
        better = [
            r
            for r in ladder
            if chosen.bitrate_kbps < r.bitrate_kbps <= ewma
        ]
        assert not better, "left a sustainable higher rung on the table"


class TestBufferBasedAbr:
    @pytest.mark.parametrize(
        "reservoir,cushion", [(-1.0, 16.0), (8.0, 0.0), (8.0, -4.0)]
    )
    def test_bad_configuration_rejected(self, reservoir, cushion):
        with pytest.raises(PlaybackError):
            BufferBasedAbr(
                reservoir_seconds=reservoir, cushion_seconds=cushion
            )

    def test_reservoir_floor_and_cushion_ceiling(self):
        abr = BufferBasedAbr(reservoir_seconds=8.0, cushion_seconds=16.0)
        lowest, highest = FIVE_RUNG[0], FIVE_RUNG[len(FIVE_RUNG) - 1]
        assert abr.choose(FIVE_RUNG, _state(buffer_seconds=0.0)) == lowest
        assert abr.choose(FIVE_RUNG, _state(buffer_seconds=8.0)) == lowest
        assert abr.choose(FIVE_RUNG, _state(buffer_seconds=24.0)) == highest
        assert abr.choose(FIVE_RUNG, _state(buffer_seconds=90.0)) == highest

    def test_midpoint_lands_mid_ladder(self):
        abr = BufferBasedAbr(reservoir_seconds=8.0, cushion_seconds=16.0)
        # Halfway through the cushion: target = 150 + 0.5*(2400-150).
        chosen = abr.choose(FIVE_RUNG, _state(buffer_seconds=16.0))
        assert chosen.bitrate_kbps == 800

    @given(ladder=ladders, buffer_seconds=buffers)
    @settings(max_examples=80)
    def test_always_picks_from_the_ladder(self, ladder, buffer_seconds):
        abr = BufferBasedAbr()
        chosen = abr.choose(ladder, _state(buffer_seconds=buffer_seconds))
        assert chosen in tuple(ladder)

    @given(ladder=ladders, b1=buffers, b2=buffers)
    @settings(max_examples=80)
    def test_monotone_in_buffer_occupancy(self, ladder, b1, b2):
        # More buffer can never mean a lower rung — the anti-oscillation
        # property that makes BBA stable.
        low, high = sorted((b1, b2))
        abr = BufferBasedAbr()
        assert (
            abr.choose(ladder, _state(buffer_seconds=high)).bitrate_kbps
            >= abr.choose(ladder, _state(buffer_seconds=low)).bitrate_kbps
        )

    def test_single_rung_ladder_is_a_fixed_point(self):
        only = BitrateLadder.from_bitrates([640])
        abr = BufferBasedAbr()
        for buffer_seconds in (0.0, 8.0, 12.0, 50.0):
            assert (
                abr.choose(only, _state(buffer_seconds=buffer_seconds))
                == only[0]
            )
