"""ABR algorithms, session simulation, user agents (repro.playback)."""

import numpy as np
import pytest

from repro.delivery.network import NetworkPath
from repro.entities.ladder import BitrateLadder
from repro.errors import PlaybackError
from repro.playback.abr import AbrState, BufferBasedAbr, ThroughputAbr
from repro.playback.session import SessionConfig, simulate_session
from repro.playback.useragent import build_user_agent, parse_user_agent


def _state(buffer_seconds=10.0, ewma=2000.0):
    return AbrState(
        buffer_seconds=buffer_seconds,
        last_throughput_kbps=ewma,
        ewma_throughput_kbps=ewma,
    )


class TestThroughputAbr:
    def test_picks_highest_rung_under_budget(self, ladder):
        abr = ThroughputAbr(safety=0.8)
        # budget = 0.8 * 1600 = 1280 -> rung 1200
        assert abr.choose(ladder, _state(ewma=1600)).bitrate_kbps == 1200

    def test_floor_when_throughput_terrible(self, ladder):
        abr = ThroughputAbr()
        assert abr.choose(ladder, _state(ewma=10)).bitrate_kbps == 150

    def test_ceiling_when_throughput_huge(self, ladder):
        abr = ThroughputAbr()
        assert abr.choose(ladder, _state(ewma=1e6)).bitrate_kbps == 2400

    def test_safety_factor_validation(self):
        with pytest.raises(PlaybackError):
            ThroughputAbr(safety=0.0)
        with pytest.raises(PlaybackError):
            ThroughputAbr(safety=1.5)


class TestBufferBasedAbr:
    def test_reservoir_forces_floor(self, ladder):
        abr = BufferBasedAbr(reservoir_seconds=8, cushion_seconds=16)
        assert abr.choose(ladder, _state(buffer_seconds=4)).bitrate_kbps == 150

    def test_full_cushion_gives_top(self, ladder):
        abr = BufferBasedAbr(reservoir_seconds=8, cushion_seconds=16)
        choice = abr.choose(ladder, _state(buffer_seconds=30))
        assert choice.bitrate_kbps == 2400

    def test_midpoint_is_intermediate(self, ladder):
        abr = BufferBasedAbr(reservoir_seconds=8, cushion_seconds=16)
        choice = abr.choose(ladder, _state(buffer_seconds=16))
        assert 150 < choice.bitrate_kbps < 2400

    def test_monotone_in_buffer(self, ladder):
        abr = BufferBasedAbr(reservoir_seconds=8, cushion_seconds=16)
        picks = [
            abr.choose(ladder, _state(buffer_seconds=b)).bitrate_kbps
            for b in (2, 10, 14, 18, 22, 30)
        ]
        assert picks == sorted(picks)

    def test_validation(self):
        with pytest.raises(PlaybackError):
            BufferBasedAbr(reservoir_seconds=-1)
        with pytest.raises(PlaybackError):
            BufferBasedAbr(cushion_seconds=0)


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(PlaybackError):
            SessionConfig(view_seconds=0)
        with pytest.raises(PlaybackError):
            SessionConfig(view_seconds=60, chunk_seconds=0)
        with pytest.raises(PlaybackError):
            SessionConfig(view_seconds=60, max_buffer_seconds=1)
        with pytest.raises(PlaybackError):
            SessionConfig(view_seconds=60, ewma_alpha=0)


class TestSimulation:
    @pytest.fixture
    def path(self):
        return NetworkPath(
            isp="X", cdn_name="A", median_kbps=5000, sigma=0.0,
            within_session_cv=0.0,
        )

    def test_fast_network_no_rebuffering(self, ladder, path, rng):
        result = simulate_session(
            ladder, path, SessionConfig(view_seconds=300), rng
        )
        assert result.rebuffer_ratio == 0.0
        assert result.average_bitrate_kbps == pytest.approx(2400, rel=0.05)

    def test_slow_network_caps_bitrate(self, ladder, rng):
        slow = NetworkPath(
            isp="X", cdn_name="A", median_kbps=400, sigma=0.0,
            within_session_cv=0.0,
        )
        result = simulate_session(
            ladder, slow, SessionConfig(view_seconds=300), rng
        )
        assert result.average_bitrate_kbps <= 400

    def test_starving_network_rebuffers(self, rng):
        ladder = BitrateLadder.from_bitrates((800,))  # floor above network
        starving = NetworkPath(
            isp="X", cdn_name="A", median_kbps=400, sigma=0.0,
            within_session_cv=0.0,
        )
        result = simulate_session(
            ladder, starving, SessionConfig(view_seconds=300), rng
        )
        assert result.rebuffer_ratio > 0.2

    def test_low_floor_protects_against_starvation(self, ladder, rng):
        starving = NetworkPath(
            isp="X", cdn_name="A", median_kbps=400, sigma=0.0,
            within_session_cv=0.0,
        )
        result = simulate_session(
            ladder, starving, SessionConfig(view_seconds=300), rng
        )
        # ladder floor 150 < 400 kbps: playable without stalls after
        # startup.
        assert result.rebuffer_ratio < 0.05

    def test_chunk_count(self, ladder, path, rng):
        result = simulate_session(
            ladder, path, SessionConfig(view_seconds=95, chunk_seconds=10),
            rng,
        )
        assert result.chunk_count == 10

    def test_pinned_session_mean_is_deterministic(self, ladder, path):
        results = [
            simulate_session(
                ladder,
                path,
                SessionConfig(view_seconds=120),
                np.random.default_rng(1),
                session_mean_kbps=3000,
            )
            for _ in range(2)
        ]
        assert (
            results[0].average_bitrate_kbps == results[1].average_bitrate_kbps
        )

    def test_startup_delay_positive(self, ladder, path, rng):
        result = simulate_session(
            ladder, path, SessionConfig(view_seconds=120), rng
        )
        assert result.startup_delay_seconds > 0

    def test_buffer_abr_also_works(self, ladder, path, rng):
        result = simulate_session(
            ladder,
            path,
            SessionConfig(view_seconds=300),
            rng,
            abr=BufferBasedAbr(),
        )
        assert 150 <= result.average_bitrate_kbps <= 2400


class TestUserAgents:
    @pytest.mark.parametrize(
        "browser", ["chrome", "firefox", "safari", "edge", "ie11"]
    )
    def test_roundtrip(self, browser):
        ua = build_user_agent(browser, major_version=70)
        assert parse_user_agent(ua).browser == browser

    def test_edge_not_misdetected_as_chrome(self):
        ua = build_user_agent("edge", 100)
        assert parse_user_agent(ua).browser == "edge"

    def test_chrome_not_misdetected_as_safari(self):
        ua = build_user_agent("chrome", 90)
        assert parse_user_agent(ua).browser == "chrome"

    def test_version_extracted(self):
        info = parse_user_agent(build_user_agent("firefox", 61))
        assert info.major_version == 61

    def test_unknown_string(self):
        info = parse_user_agent("curl/7.68.0")
        assert info.browser == "other"
        assert info.major_version is None

    def test_empty_string(self):
        assert parse_user_agent("").browser == "other"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_user_agent("netscape")

    def test_str_format(self):
        info = parse_user_agent(build_user_agent("chrome", 80))
        assert str(info) == "chrome/80"
