"""repro.obs unit suite: clocks, spans, metrics, logs, exporters.

Everything runs against private :class:`ObsContext` / registry / tracer
instances driven by a :class:`FakeClock`, so durations and histogram
samples are exact, not approximate, and the process-global context is
never touched.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    CallableClock,
    FakeClock,
    MetricsError,
    MetricsRegistry,
    MonotonicClock,
    NULL_SPAN_CONTEXT,
    ObsContext,
    Tracer,
    bench_payload,
    log_buckets,
    render_tree,
    snapshot_payload,
    to_json,
    write_snapshot,
)
from repro.obs.clock import Clock
from repro.obs.instruments import CATALOG, catalog_by_name, register_catalog
from repro.obs.logs import (
    JsonLogFormatter,
    get_logger,
    install_handler,
    log_event,
    remove_handler,
)
from repro.obs.metrics import NOOP_INSTRUMENT, Histogram, format_series

pytestmark = pytest.mark.obs


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------


class TestClocks:
    def test_base_clock_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().now()

    def test_fake_clock_only_moves_when_told(self):
        clock = FakeClock(start=100.0)
        assert clock.now() == 100.0
        assert clock.now() == 100.0
        clock.advance(2.5)
        assert clock.now() == 102.5

    def test_fake_clock_rejects_backwards_motion(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_callable_clock_adapts_a_function(self):
        ticks = iter([1, 2, 3])
        clock = CallableClock(lambda: next(ticks))
        assert clock.now() == 1.0
        assert clock.now() == 2.0

    def test_monotonic_clock_goes_forward(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_duration_is_exact_under_fake_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(1.25)
        assert span.duration == 1.25
        assert tracer.finished == [span]

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_ids_are_sequential_not_random(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            with tracer.span("c"):
                pass
        assert [s.span_id for s in tracer.finished] == [1, 3, 2]
        ordered = sorted(tracer.finished, key=lambda s: s.span_id)
        assert [s.name for s in ordered] == ["a", "b", "c"]

    def test_span_records_even_when_body_raises(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance(0.5)
                raise RuntimeError("boom")
        assert tracer.current_span_id is None
        (span,) = tracer.finished
        assert span.duration == 0.5

    def test_set_attaches_attributes(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", n=3) as span:
            span.set(rows=7)
        assert span.attrs == {"n": 3, "rows": 7}

    def test_reset_restarts_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished == []
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1


class TestRenderTree:
    def test_tree_nests_and_scales(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root", seed=7):
            with tracer.span("child"):
                clock.advance(0.002)
        text = render_tree(tracer.finished)
        assert text.splitlines() == [
            "root  2.000ms  [seed=7]",
            "  child  2.000ms",
        ]

    def test_orphans_render_as_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent"):
            with tracer.span("child") as child:
                pass
        # Drop the parent: the child's parent_id now dangles.
        orphaned = [s for s in tracer.finished if s is child]
        assert render_tree(orphaned).startswith("child")

    def test_empty_input_has_a_placeholder(self):
        assert render_tree([]) == "(no spans recorded)"


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        assert counter.count == 3
        with pytest.raises(MetricsError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_values(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1010.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 1000.0
        assert snap["buckets"] == {"1": 1, "10": 2, "+Inf": 1}

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram(bounds=())

    def test_log_buckets_span_the_default_range(self):
        bounds = log_buckets()
        assert bounds[0] <= 1e-6
        assert bounds[-1] >= 1e4
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_log_buckets_validate_inputs(self):
        with pytest.raises(MetricsError):
            log_buckets(lo=0.0)
        with pytest.raises(MetricsError):
            log_buckets(lo=2.0, hi=1.0)
        with pytest.raises(MetricsError):
            log_buckets(per_decade=0)

    def test_noop_instrument_absorbs_everything(self):
        NOOP_INSTRUMENT.inc()
        NOOP_INSTRUMENT.dec()
        NOOP_INSTRUMENT.set(5)
        NOOP_INSTRUMENT.observe(1.0)
        assert NOOP_INSTRUMENT.value == 0.0
        assert NOOP_INSTRUMENT.snapshot() == 0.0


class TestRegistry:
    def test_same_identity_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", route="a")
        b = registry.counter("hits", route="a")
        c = registry.counter("hits", route="b")
        assert a is b
        assert a is not c

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_series_and_series_values(self):
        registry = MetricsRegistry()
        registry.counter("q", reason="bad").inc(2)
        registry.counter("q", reason="late").inc(1)
        assert registry.series_values("q") == {"bad": 2.0, "late": 1.0}
        assert len(registry.series("q")) == 2

    def test_format_series_is_the_snapshot_key(self):
        assert format_series("n", ()) == "n"
        assert (
            format_series("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"
        )

    def test_snapshot_is_sorted_and_json_stable(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("z").inc()
            registry.counter("a", k="2").inc()
            registry.counter("a", k="1").inc()
            registry.gauge("depth").set(3)
            registry.histogram("lat").observe(0.5)
            return registry

        one, two = build().snapshot(), build().snapshot()
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )
        assert list(one["counters"]) == ["a{k=1}", "a{k=2}", "z"]

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0.0
        assert registry.counter("c") is counter

    def test_describe_and_kind_of(self):
        registry = MetricsRegistry()
        registry.counter("c", "how many")
        assert registry.describe("c") == "how many"
        assert registry.kind_of("c") == "counter"
        with pytest.raises(MetricsError):
            registry.kind_of("nope")


class TestCatalog:
    def test_catalog_names_are_unique(self):
        names = [spec.name for spec in CATALOG]
        assert len(names) == len(set(names))
        assert catalog_by_name().keys() == set(names)

    def test_register_catalog_creates_label_free_instruments(self):
        registry = MetricsRegistry()
        register_catalog(registry)
        assert "ingest.events" in registry.names()
        assert registry.kind_of("retry.attempts") == "histogram"
        # Labeled families only materialize per label value.
        assert registry.series("ingest.quarantined") == {}


# ---------------------------------------------------------------------------
# Structured logs
# ---------------------------------------------------------------------------


class TestLogs:
    def test_formatter_attaches_span_and_seed(self):
        formatter = JsonLogFormatter(span_id_fn=lambda: 42, seed=2018)
        record = logging.LogRecord(
            "repro.obs", logging.INFO, __file__, 1, "ingest.reap", (), None
        )
        record.repro_fields = {"why": "stale"}
        payload = json.loads(formatter.format(record))
        assert payload == {
            "event": "ingest.reap",
            "level": "info",
            "logger": "repro.obs",
            "seed": 2018,
            "span_id": 42,
            "why": "stale",
        }

    def test_handler_roundtrip_one_json_line_per_event(self):
        stream = io.StringIO()
        handler = install_handler(stream=stream, span_id_fn=lambda: None)
        try:
            log_event(get_logger("test"), "hello", n=1)
        finally:
            remove_handler(handler)
        (line,) = stream.getvalue().splitlines()
        assert json.loads(line)["event"] == "hello"
        assert json.loads(line)["n"] == 1

    def test_log_event_respects_level(self):
        stream = io.StringIO()
        handler = install_handler(stream=stream, level=logging.WARNING)
        try:
            log_event(get_logger("test"), "quiet", level=logging.DEBUG)
        finally:
            remove_handler(handler)
        assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# The facade: enabled vs disabled paths
# ---------------------------------------------------------------------------


class TestObsContext:
    def test_disabled_context_never_reads_the_clock(self):
        calls = []

        def tick() -> float:
            calls.append(1)
            return 0.0

        ctx = ObsContext(enabled=False, clock=CallableClock(tick))
        with ctx.span("work") as span:
            span.set(rows=3)
        ctx.counter("c").inc()
        ctx.gauge("g").set(1)
        ctx.histogram("h").observe(2.0)
        ctx.emit("event", n=1)
        assert calls == []
        assert ctx.tracer.finished == []
        assert ctx.registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disabled_span_is_the_shared_null_context(self):
        ctx = ObsContext(enabled=False)
        assert ctx.span("a") is NULL_SPAN_CONTEXT
        assert ctx.counter("c") is NOOP_INSTRUMENT

    def test_enabled_context_records_exact_durations(self):
        clock = FakeClock()
        ctx = ObsContext(enabled=True, clock=clock)
        with ctx.span("outer"):
            clock.advance(1.0)
            with ctx.span("inner"):
                clock.advance(0.25)
        inner, outer = ctx.tracer.finished
        assert (inner.name, inner.duration) == ("inner", 0.25)
        assert (outer.name, outer.duration) == ("outer", 1.25)

    def test_configure_swaps_the_clock_in_place(self):
        ctx = ObsContext(enabled=True)
        fake = FakeClock()
        ctx.configure(enabled=True, clock=fake)
        with ctx.span("s") as span:
            fake.advance(3.0)
        assert span.duration == 3.0

    def test_emit_stamps_span_id_and_seed(self):
        stream = io.StringIO()
        clock = FakeClock()
        ctx = ObsContext(enabled=True, clock=clock)
        ctx.configure(enabled=True, seed=7, log_stream=stream)
        try:
            with ctx.span("ingest.batch") as span:
                ctx.emit("ingest.reap", why="stale")
        finally:
            ctx.configure(enabled=False)
        payload = json.loads(stream.getvalue())
        assert payload["seed"] == 7
        assert payload["span_id"] == span.span_id
        assert payload["why"] == "stale"

    def test_reset_clears_data_keeps_config(self):
        ctx = ObsContext(enabled=True, clock=FakeClock())
        with ctx.span("s"):
            ctx.counter("c").inc()
        ctx.reset()
        assert ctx.enabled
        assert ctx.tracer.finished == []
        assert ctx.registry.counter("c").value == 0.0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _traced_context() -> ObsContext:
    clock = FakeClock()
    ctx = ObsContext(enabled=True, clock=clock)
    with ctx.span("stage.a"):
        clock.advance(1.0)
        ctx.counter("hits").inc(3)
    with ctx.span("stage.a"):
        clock.advance(3.0)
    with ctx.span("stage.b", rows=2):
        clock.advance(0.5)
    return ctx


class TestExport:
    def test_snapshot_payload_shape(self):
        ctx = _traced_context()
        payload = snapshot_payload(
            ctx.registry, spans=ctx.tracer.finished, meta={"cmd": "x"}
        )
        assert payload["schema"] == 1
        assert payload["metrics"]["counters"]["hits"] == 3.0
        assert [row["name"] for row in payload["spans"]] == [
            "stage.a",
            "stage.a",
            "stage.b",
        ]
        assert payload["meta"] == {"cmd": "x"}

    def test_span_rows_carry_sorted_attrs(self):
        ctx = _traced_context()
        rows = snapshot_payload(ctx.registry, spans=ctx.tracer.finished)
        assert rows["spans"][2]["attrs"] == {"rows": 2}
        assert rows["spans"][2]["duration_s"] == 0.5

    def test_bench_payload_aggregates_stages(self):
        ctx = _traced_context()
        payload = bench_payload(ctx.tracer.finished, registry=ctx.registry)
        assert payload["stages"]["stage.a"] == {
            "calls": 2,
            "total_s": 4.0,
            "max_s": 3.0,
        }
        assert payload["stages"]["stage.b"]["calls"] == 1
        assert list(payload["stages"]) == ["stage.a", "stage.b"]

    def test_write_snapshot_roundtrips(self, tmp_path):
        ctx = _traced_context()
        path = tmp_path / "m.json"
        written = write_snapshot(str(path), ctx.registry)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(written)
        )

    def test_to_json_is_sorted_with_trailing_newline(self):
        text = to_json({"b": 1, "a": 2})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
