"""Property-based tests for domain invariants: ladders, manifests,
origin dedup, chunking, records."""

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ContentType, Protocol
from repro.delivery.origin import OriginServer
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.packaging.chunker import Chunker
from repro.packaging.manifest import manifest_writer_for, parser_for
from repro.packaging.manifest.detect import (
    detect_protocol,
    sample_manifest_url,
)
from repro.telemetry.records import ViewRecord

# Strategy: strictly increasing bitrate lists (ladders).
ladders = st.lists(
    st.floats(min_value=50, max_value=20_000, allow_nan=False),
    min_size=1,
    max_size=12,
    unique=True,
).map(sorted).filter(
    lambda rates: all(b / a > 1.001 for a, b in zip(rates, rates[1:]))
)

durations = st.floats(min_value=10.0, max_value=20_000.0, allow_nan=False)

video_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=16
)


class TestLadderProperties:
    @given(ladders)
    def test_construction_preserves_rates(self, rates):
        ladder = BitrateLadder.from_bitrates(rates)
        assert list(ladder.bitrates_kbps) == pytest.approx(rates)

    @given(ladders, st.floats(min_value=1, max_value=50_000))
    def test_nearest_at_most_never_overshoots_unless_floored(
        self, rates, throughput
    ):
        ladder = BitrateLadder.from_bitrates(rates)
        choice = ladder.nearest_at_most(throughput)
        if choice.bitrate_kbps > throughput:
            assert choice.bitrate_kbps == ladder.min_bitrate_kbps

    @given(ladders, st.floats(min_value=0.0, max_value=0.3))
    def test_tolerance_match_is_within_tolerance(self, rates, tolerance):
        ladder = BitrateLadder.from_bitrates(rates)
        target = rates[len(rates) // 2] * 1.02
        match = ladder.matches_within_tolerance(target, tolerance)
        if match is not None:
            assert abs(match.bitrate_kbps - target) <= tolerance * target


class TestManifestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        ladders,
        durations,
        st.sampled_from(
            [Protocol.HLS, Protocol.DASH, Protocol.MSS, Protocol.HDS]
        ),
    )
    def test_roundtrip_preserves_ladder(self, rates, duration, protocol):
        video = Video(video_id="prop", duration_seconds=duration)
        ladder = BitrateLadder.from_bitrates(rates)
        writer = manifest_writer_for(protocol, chunk_duration_seconds=6.0)
        info = parser_for(protocol).parse(
            writer.render(video, ladder, "http://cdn")
        )
        assert info.protocol is protocol
        assert len(info.bitrates_kbps) == len(rates)
        # HDS encodes integer kbps (F4M spec), so allow 0.5 kbps slack.
        assert list(info.bitrates_kbps) == pytest.approx(
            rates, rel=1e-3, abs=0.51
        )

    @given(
        video_ids,
        st.sampled_from(
            [
                Protocol.HLS,
                Protocol.DASH,
                Protocol.MSS,
                Protocol.HDS,
                Protocol.RTMP,
            ]
        ),
    )
    def test_minted_urls_always_detect(self, video_id, protocol):
        url = sample_manifest_url(protocol, video_id, "edge.example.net")
        assert detect_protocol(url) is protocol


class TestChunkerProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        durations,
        st.floats(min_value=1.0, max_value=30.0),
        st.floats(min_value=50, max_value=10_000),
    )
    def test_chunks_partition_the_video(self, duration, chunk_s, bitrate):
        video = Video(video_id="v", duration_seconds=duration)
        ladder = BitrateLadder.from_bitrates((bitrate,))
        chunks = list(Chunker(chunk_s).chunks(video, ladder[0]))
        assert chunks[0].start_seconds == 0.0
        for a, b in zip(chunks, chunks[1:]):
            assert b.start_seconds == pytest.approx(a.end_seconds)
        assert chunks[-1].end_seconds == pytest.approx(duration)
        total = sum(c.duration_seconds for c in chunks)
        assert total == pytest.approx(duration)


class TestOriginProperties:
    @settings(max_examples=40, deadline=None)
    @given(ladders, ladders, st.floats(min_value=0.0, max_value=0.25))
    def test_dedup_bounded_and_conservative(self, rates_a, rates_b, tol):
        catalogue = Catalogue("c", [Video("v", 1000.0)])
        origin = OriginServer("A")
        origin.push_catalogue(
            "p1", catalogue, BitrateLadder.from_bitrates(rates_a)
        )
        origin.push_catalogue(
            "p2", catalogue, BitrateLadder.from_bitrates(rates_b)
        )
        total = origin.total_bytes()
        kept = origin.deduplicated_bytes(tol)
        assert 0 < kept <= total * (1 + 1e-9) + 1e-3
        # Dedup never drops below the single largest rendition.
        biggest = max(max(rates_a), max(rates_b)) * 125.0 * 1000.0
        assert kept >= biggest - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(ladders, ladders)
    def test_integrated_keeps_exactly_owner_bytes(self, rates_o, rates_s):
        catalogue = Catalogue("c", [Video("v", 1000.0)])
        origin = OriginServer("A")
        owner_ladder = BitrateLadder.from_bitrates(rates_o)
        origin.push_catalogue("owner", catalogue, owner_ladder)
        origin.push_catalogue(
            "syn", catalogue, BitrateLadder.from_bitrates(rates_s)
        )
        assert origin.integrated_bytes("owner") == pytest.approx(
            catalogue.storage_bytes(owner_ladder)
        )

    @settings(max_examples=40, deadline=None)
    @given(ladders)
    def test_zero_tolerance_identical_copies_halve(self, rates):
        catalogue = Catalogue("c", [Video("v", 500.0)])
        origin = OriginServer("A")
        origin.push_catalogue(
            "p1", catalogue, BitrateLadder.from_bitrates(rates)
        )
        origin.push_catalogue(
            "p2", catalogue, BitrateLadder.from_bitrates(rates)
        )
        assert origin.deduplicated_bytes(0.0) == pytest.approx(
            origin.total_bytes() / 2
        )


class TestRecordProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=24.0),
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_json_roundtrip_any_values(self, duration, weight, rebuffer):
        record = ViewRecord(
            snapshot=date(2017, 6, 5),
            publisher_id="p",
            url="http://x/v/master.m3u8",
            device_model="ipad",
            os_name="ios",
            cdn_names=("A",),
            bitrate_ladder_kbps=(100.0,),
            view_duration_hours=duration,
            avg_bitrate_kbps=90.0,
            rebuffer_ratio=rebuffer,
            content_type=ContentType.LIVE,
            video_id="v",
            weight=float(weight),
        )
        assert ViewRecord.from_json(record.to_json()) == record
