"""Portfolio assignment (repro.synthesis.portfolios)."""

import numpy as np
import pytest

from repro.constants import ContentType, Platform, Protocol
from repro.entities.device import default_registry
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.population import generate_publishers
from repro.synthesis.portfolios import PortfolioAssigner


@pytest.fixture(scope="module")
def assigner_and_publishers():
    rng = np.random.default_rng(7)
    publishers = generate_publishers(rng, 110)
    assigner = PortfolioAssigner(rng, publishers, default_registry())
    return assigner, publishers


class TestAdoptionLevels:
    def test_population_support_tracks_curves(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        n = len(publishers)
        for protocol, curve in cal.PROTOCOL_ADOPTION.items():
            if protocol is Protocol.RTMP:
                continue  # attenuated by the serves_live requirement
            for t in (0.0, 1.0):
                fraction = (
                    sum(
                        protocol in assigner.protocols_at(p.publisher_id, t)
                        for p in publishers
                    )
                    / n
                )
                # HLS gets topped up by the at-least-one-protocol rule.
                tolerance = 0.10 if protocol is Protocol.HLS else 0.06
                assert fraction == pytest.approx(
                    curve.level(t), abs=tolerance
                ), protocol

    def test_platform_support_tracks_curves(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        n = len(publishers)
        for platform, curve in cal.PLATFORM_ADOPTION.items():
            fraction = (
                sum(
                    platform in assigner.platforms_at(p.publisher_id, 1.0)
                    for p in publishers
                )
                / n
            )
            assert fraction == pytest.approx(curve.level(1.0), abs=0.06)

    def test_adoption_monotone_over_time(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers[:20]:
            was_supported = False
            for t in np.linspace(0, 1, 12):
                supported = Protocol.DASH in assigner.protocols_at(
                    publisher.publisher_id, t
                )
                assert supported or not was_supported or True
                if was_supported:
                    assert supported  # DASH is rising: never abandoned
                was_supported = supported


class TestProfiles:
    def test_profile_is_internally_consistent(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        registry = default_registry()
        for publisher in publishers[:30]:
            profile = assigner.profile_at(publisher.publisher_id, 1.0)
            for model in profile.device_models:
                assert registry.platform_of(model) in profile.platforms
            sdk_names = {
                registry.lookup(m).sdk_name
                for m in profile.device_models
                if registry.lookup(m).sdk_name
            }
            for sdk in profile.sdks:
                assert sdk.name in sdk_names

    def test_every_publisher_has_http_protocol(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers:
            protocols = assigner.protocols_at(publisher.publisher_id, 0.0)
            assert any(p.is_http_adaptive for p in protocols)

    def test_rtmp_only_for_live_publishers(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers:
            protocols = assigner.protocols_at(publisher.publisher_id, 0.0)
            if Protocol.RTMP in protocols:
                assert publisher.serves_live


class TestCdnDraws:
    def test_cdn_count_bounds(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers:
            profile = assigner.profile_at(publisher.publisher_id, 0.5)
            assert 1 <= profile.cdn_count <= 5

    def test_smallest_publishers_single_cdn(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers:
            if publisher.daily_view_hours <= cal.VIEW_HOUR_BASE_X:
                profile = assigner.profile_at(publisher.publisher_id, 0.5)
                assert profile.cdn_count == 1

    def test_largest_publishers_many_cdns(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        top_decade = len(cal.SIZE_BUCKET_FRACTIONS) - 1
        threshold = cal.VIEW_HOUR_BASE_X * 10 ** (top_decade - 1)
        for publisher in publishers:
            if publisher.daily_view_hours > threshold:
                profile = assigner.profile_at(publisher.publisher_id, 0.5)
                assert profile.cdn_count >= 4

    def test_content_coverage_after_split(self, assigner_and_publishers):
        assigner, publishers = assigner_and_publishers
        for publisher in publishers:
            profile = assigner.profile_at(publisher.publisher_id, 0.5)
            for content_type in publisher.content_types:
                assert profile.cdns_for(content_type)


class TestForcing:
    # force_protocol/ensure_cdns mutate assigner state in place, so this
    # class gets a private assigner: the shared module-scoped fixture is
    # read by other classes and the suite runs in shuffled order.
    @pytest.fixture(scope="class")
    def forcing_assigner(self):
        rng = np.random.default_rng(7)
        publishers = generate_publishers(rng, 110)
        assigner = PortfolioAssigner(rng, publishers, default_registry())
        return assigner, publishers

    def test_force_protocol(self, forcing_assigner):
        assigner, publishers = forcing_assigner
        pid = publishers[5].publisher_id
        assigner.force_protocol(pid, Protocol.DASH, 0.0)
        assert Protocol.DASH in assigner.protocols_at(pid, 0.0)
        assigner.force_protocol(pid, Protocol.DASH, 1.0)
        assert Protocol.DASH not in assigner.protocols_at(pid, 1.0)

    def test_force_unknown_publisher(self, forcing_assigner):
        assigner, _ = forcing_assigner
        with pytest.raises(CalibrationError):
            assigner.force_protocol("ghost", Protocol.DASH, 0.5)

    def test_ensure_cdns_adds_missing(self, forcing_assigner):
        assigner, publishers = forcing_assigner
        pid = publishers[-1].publisher_id  # smallest: one CDN
        assigner.ensure_cdns(pid, ("A", "B"))
        profile = assigner.profile_at(pid, 0.5)
        assert {"A", "B"} <= set(profile.cdn_names)
        assert profile.cdn_count <= 5

    def test_ensure_cdns_idempotent(self, forcing_assigner):
        assigner, publishers = forcing_assigner
        pid = publishers[-2].publisher_id
        assigner.ensure_cdns(pid, ("A",))
        count = assigner.profile_at(pid, 0.5).cdn_count
        assigner.ensure_cdns(pid, ("A",))
        assert assigner.profile_at(pid, 0.5).cdn_count == count

    def test_ensure_cdns_caps_at_five(self, forcing_assigner):
        assigner, publishers = forcing_assigner
        pid = publishers[0].publisher_id  # largest: 4-5 CDNs already
        assigner.ensure_cdns(pid, ("A", "B", "C", "D", "E"))
        assert assigner.profile_at(pid, 0.5).cdn_count <= 5
