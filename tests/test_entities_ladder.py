"""Bitrate ladders (repro.entities.ladder)."""

import pytest

from repro.entities.ladder import (
    BitrateLadder,
    Rendition,
    resolution_for_bitrate,
)
from repro.errors import LadderError


class TestRendition:
    def test_total_bitrate_includes_audio(self):
        rendition = Rendition(
            bitrate_kbps=1000, width=1280, height=720, audio_bitrate_kbps=96
        )
        assert rendition.total_bitrate_kbps == 1096

    def test_resolution_property(self):
        rendition = Rendition(bitrate_kbps=1000, width=1280, height=720)
        assert rendition.resolution == (1280, 720)

    def test_invalid_bitrate(self):
        with pytest.raises(LadderError):
            Rendition(bitrate_kbps=0, width=1, height=1)

    def test_invalid_resolution(self):
        with pytest.raises(LadderError):
            Rendition(bitrate_kbps=100, width=0, height=100)

    def test_negative_audio(self):
        with pytest.raises(LadderError):
            Rendition(
                bitrate_kbps=100, width=1, height=1, audio_bitrate_kbps=-1
            )


class TestResolutionBands:
    def test_low_bitrate_small_resolution(self):
        assert resolution_for_bitrate(200) == (416, 234)

    def test_hd_band(self):
        assert resolution_for_bitrate(5000) == (1920, 1080)

    def test_uhd_band(self):
        assert resolution_for_bitrate(20000) == (3840, 2160)

    def test_monotone_in_bitrate(self):
        widths = [resolution_for_bitrate(b)[0] for b in (100, 800, 3000, 9000)]
        assert widths == sorted(widths)

    def test_nonpositive_rejected(self):
        with pytest.raises(LadderError):
            resolution_for_bitrate(0)


class TestLadderConstruction:
    def test_sorted_on_construction(self):
        ladder = BitrateLadder.from_bitrates((2400, 150, 600))
        assert ladder.bitrates_kbps == (150, 600, 2400)

    def test_duplicate_bitrates_rejected(self):
        with pytest.raises(LadderError):
            BitrateLadder.from_bitrates((100, 100, 200))

    def test_empty_rejected(self):
        with pytest.raises(LadderError):
            BitrateLadder([])

    def test_len_and_indexing(self, ladder):
        assert len(ladder) == 5
        assert ladder[0].bitrate_kbps == 150
        assert ladder[4].bitrate_kbps == 2400

    def test_equality_and_hash(self):
        a = BitrateLadder.from_bitrates((100, 200))
        b = BitrateLadder.from_bitrates((200, 100))
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitrateLadder.from_bitrates((100, 300))


class TestLadderQueries:
    def test_min_max_aggregate(self, ladder):
        assert ladder.min_bitrate_kbps == 150
        assert ladder.max_bitrate_kbps == 2400
        assert ladder.aggregate_bitrate_kbps == 150 + 300 + 600 + 1200 + 2400

    def test_nearest_at_most_exact(self, ladder):
        assert ladder.nearest_at_most(600).bitrate_kbps == 600

    def test_nearest_at_most_between_rungs(self, ladder):
        assert ladder.nearest_at_most(1199).bitrate_kbps == 600

    def test_nearest_at_most_below_floor_returns_floor(self, ladder):
        assert ladder.nearest_at_most(10).bitrate_kbps == 150

    def test_nearest_at_most_above_top(self, ladder):
        assert ladder.nearest_at_most(1e9).bitrate_kbps == 2400

    def test_step_ratios(self, ladder):
        assert ladder.step_ratios() == pytest.approx([2.0, 2.0, 2.0, 2.0])


class TestHlsGuidelines:
    def test_conforming_ladder(self, ladder):
        assert ladder.follows_hls_guidelines()

    def test_missing_low_rung(self):
        ladder = BitrateLadder.from_bitrates((800, 1400, 2000))
        assert not ladder.follows_hls_guidelines()

    def test_excessive_step(self):
        ladder = BitrateLadder.from_bitrates((150, 600))  # 4x jump
        assert not ladder.follows_hls_guidelines()


class TestToleranceMatching:
    def test_match_within_tolerance(self, ladder):
        match = ladder.matches_within_tolerance(310, 0.05)
        assert match is not None
        assert match.bitrate_kbps == 300

    def test_no_match_outside_tolerance(self, ladder):
        assert ladder.matches_within_tolerance(400, 0.05) is None

    def test_closest_of_several(self):
        ladder = BitrateLadder.from_bitrates((95, 100, 106))
        match = ladder.matches_within_tolerance(101, 0.10)
        assert match is not None
        assert match.bitrate_kbps == 100

    def test_negative_tolerance_rejected(self, ladder):
        with pytest.raises(LadderError):
            ladder.matches_within_tolerance(100, -0.1)
