"""Decade bucketing (repro.stats.bucketing)."""

import pytest

from repro.stats.bucketing import DecadeBuckets, modal_bucket


class TestBucketIndex:
    @pytest.fixture
    def buckets(self):
        return DecadeBuckets(base=100.0, n_buckets=7)

    def test_smallest_bucket_closed_at_base(self, buckets):
        assert buckets.bucket_index(100.0) == 0
        assert buckets.bucket_index(1.0) == 0

    def test_decade_boundaries(self, buckets):
        assert buckets.bucket_index(100.0001) == 1
        assert buckets.bucket_index(1_000.0) == 1
        assert buckets.bucket_index(1_001.0) == 2
        assert buckets.bucket_index(10_000.0) == 2

    def test_top_bucket_open_ended(self, buckets):
        assert buckets.bucket_index(1e12) == 6

    def test_negative_rejected(self, buckets):
        with pytest.raises(ValueError):
            buckets.bucket_index(-1.0)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            DecadeBuckets(base=0)
        with pytest.raises(ValueError):
            DecadeBuckets(base=1, n_buckets=0)


class TestLabels:
    def test_labels_use_x_notation(self):
        buckets = DecadeBuckets(base=100.0, n_buckets=7)
        assert buckets.label(0) == "<=X"
        assert buckets.label(1) == "X-10X"
        assert buckets.label(3) == "100X-1000X"
        assert buckets.label(6) == ">100000X"

    def test_label_out_of_range(self):
        with pytest.raises(IndexError):
            DecadeBuckets(base=1, n_buckets=2).label(5)


class TestMembership:
    def test_counts_and_shares(self):
        buckets = DecadeBuckets(base=10.0, n_buckets=3)
        buckets.add("a", 1, 5.0)
        buckets.add("b", 2, 50.0)
        buckets.add("c", 3, 50.0)
        buckets.add("d", 4, 5000.0)
        assert buckets.publisher_counts() == [1, 2, 1]
        assert buckets.publisher_share() == [25.0, 50.0, 25.0]

    def test_count_histogram(self):
        buckets = DecadeBuckets(base=10.0, n_buckets=2)
        buckets.add("a", 2, 5.0)
        buckets.add("b", 2, 5.0)
        buckets.add("c", 3, 5.0)
        assert buckets.count_histogram(0) == {2: 2, 3: 1}
        assert buckets.count_histogram(1) == {}

    def test_count_range(self):
        buckets = DecadeBuckets(base=10.0, n_buckets=2)
        buckets.add("a", 1, 50.0)
        buckets.add("b", 5, 50.0)
        assert buckets.count_range(1) == (1, 5)
        assert buckets.count_range(0) == (0, 0)

    def test_negative_count_rejected(self):
        buckets = DecadeBuckets(base=10.0)
        with pytest.raises(ValueError):
            buckets.add("a", -1, 5.0)

    def test_share_requires_members(self):
        with pytest.raises(ValueError):
            DecadeBuckets(base=10.0).publisher_share()

    def test_stacked_rows_shape(self):
        buckets = DecadeBuckets.from_pairs(
            [("a", 1, 5.0), ("b", 2, 500.0)], base=10.0, n_buckets=3
        )
        rows = buckets.stacked_rows()
        assert len(rows) == 3
        assert rows[0]["count_histogram"] == {1: 1}
        assert rows[2]["count_histogram"] == {2: 1}


class TestModalBucket:
    def test_modal(self):
        assert modal_bucket([10.0, 40.0, 30.0]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            modal_bucket([])
