"""Chaos plane: fault-plan DSL, injector determinism, degradation
contracts, and the scenario-zoo campaign.

The expensive end-to-end assertions run one zoo scenario
(``flash-crowd``) twice — once through the Python API and once through
the CLI — and require the two degradation reports to be identical,
which is the determinism guarantee CI relies on.  The full five-scenario
campaign runs in the dedicated CI chaos job, not here.
"""

import json
import subprocess
import sys
from datetime import date
from types import SimpleNamespace

import pytest

from repro.chaos import (
    LAYER_KINDS,
    PLAN_VERSION,
    RECOVERABLE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    Layer,
    Window,
    chaos_scenario_names,
    contract,
    contract_names,
    contracts_for,
    inject_telemetry,
    run_chaos,
)
from repro.chaos.contracts import _CONTRACTS, ContractCheck, run_contract
from repro.cli import main
from repro.constants import ContentType
from repro.errors import ChaosError, ContractViolation, TestkitError
from repro.telemetry.ingest import events_from_records
from repro.telemetry.records import ViewRecord
from repro.testkit.oracles import FAIL, PASS, SKIP, Skip
from repro.testkit.scenario import get_scenario

ZOO = (
    "abr-policy-zoo",
    "flash-crowd",
    "low-end-device-fleet",
    "protocol-migration-wave",
    "regional-cdn-outage",
)


def _records(n=12):
    return [
        ViewRecord(
            snapshot=date(2018, 3, 12),
            publisher_id=f"pub_{i % 3:03d}",
            url="http://a.cdn.example.net/vid/master.m3u8",
            device_model="roku-ultra",
            os_name="roku",
            cdn_names=("A",),
            bitrate_ladder_kbps=(150.0, 600.0),
            view_duration_hours=0.01 + i * 0.001,
            avg_bitrate_kbps=600.0,
            rebuffer_ratio=0.02,
            content_type=ContentType.VOD,
            video_id=f"vid_{i:04d}",
        )
        for i in range(n)
    ]


def _plan(*specs, name="unit", seed=7):
    return FaultPlan(name=name, seed=seed, specs=tuple(specs))


@pytest.mark.chaos
class TestFaultPlanDsl:
    def test_round_trips_through_versioned_json(self):
        plan = _plan(
            FaultSpec(FaultKind.DUPLICATE, Layer.TELEMETRY,
                      Window(0.0, 0.5), intensity=0.1),
            FaultSpec(FaultKind.OUTAGE, Layer.DELIVERY,
                      Window(0.2, 0.8), intensity=0.9, target="R12"),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert plan.to_payload()["version"] == PLAN_VERSION

    def test_unsupported_version_rejected(self):
        payload = _plan().to_payload()
        payload["version"] = PLAN_VERSION + 1
        with pytest.raises(ChaosError):
            FaultPlan.from_payload(payload)

    def test_malformed_json_and_payloads_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ChaosError):
            FaultPlan.from_json("[]")
        with pytest.raises(ChaosError):
            FaultPlan.from_payload({"version": PLAN_VERSION, "seed": 1})

    @pytest.mark.parametrize("start,end", [(0.5, 0.5), (0.6, 0.2),
                                           (-0.1, 0.5), (0.0, 1.5)])
    def test_degenerate_windows_rejected(self, start, end):
        with pytest.raises(ChaosError):
            Window(start, end)

    def test_window_index_math(self):
        assert Window(0.2, 0.5).indices(10) == (2, 5)
        assert Window(0.0, 1.0).indices(0) == (0, 0)
        # A sliver of a window still covers at least one tick.
        i0, i1 = Window(0.5, 0.501).indices(10)
        assert i1 == i0 + 1

    def test_kind_layer_legality_enforced(self):
        with pytest.raises(ChaosError):
            FaultSpec(FaultKind.OUTAGE, Layer.TELEMETRY)
        with pytest.raises(ChaosError):
            FaultSpec(FaultKind.DROP, Layer.MANIFEST)
        for layer, kinds in LAYER_KINDS.items():
            for kind in kinds:
                target = "A" if layer is Layer.DELIVERY else None
                FaultSpec(kind, layer, target=target)  # must not raise

    def test_delivery_faults_need_a_target(self):
        with pytest.raises(ChaosError):
            FaultSpec(FaultKind.OUTAGE, Layer.DELIVERY)

    @pytest.mark.parametrize("intensity", [0.0, -0.5, 1.5])
    def test_intensity_bounds_enforced(self, intensity):
        with pytest.raises(ChaosError):
            FaultSpec(FaultKind.DROP, Layer.TELEMETRY, intensity=intensity)

    def test_spec_seeds_are_stable_and_distinct(self):
        specs = [
            FaultSpec(FaultKind.DROP, Layer.TELEMETRY, intensity=0.1),
            FaultSpec(FaultKind.DUPLICATE, Layer.TELEMETRY, intensity=0.1),
        ]
        plan = _plan(*specs)
        seeds = [plan.spec_seed(s) for s in plan.specs]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [plan.spec_seed(s) for s in plan.specs]
        foreign = FaultSpec(FaultKind.CORRUPT, Layer.TELEMETRY)
        with pytest.raises(ChaosError):
            plan.spec_seed(foreign)

    def test_projections(self):
        plan = _plan(
            FaultSpec(FaultKind.DUPLICATE, Layer.TELEMETRY, intensity=0.1),
            FaultSpec(FaultKind.CORRUPT, Layer.TELEMETRY, intensity=0.1),
            FaultSpec(FaultKind.OUTAGE, Layer.DELIVERY, target="A"),
        )
        recoverable = plan.recoverable()
        assert all(s.kind in RECOVERABLE_KINDS for s in recoverable.specs)
        assert len(recoverable.specs) == 2
        assert recoverable.seed == plan.seed
        only = plan.only(Layer.DELIVERY)
        assert [s.layer for s in only.specs] == [Layer.DELIVERY]
        assert plan.baseline().specs == ()
        assert plan.layers() == [Layer.DELIVERY, Layer.TELEMETRY]


@pytest.mark.chaos
class TestTelemetryInjectorDeterminism:
    def test_same_plan_same_stream(self):
        events = list(events_from_records(_records()))
        plan = _plan(
            FaultSpec(FaultKind.DUPLICATE, Layer.TELEMETRY,
                      Window(0.0, 0.5), intensity=0.2),
            FaultSpec(FaultKind.REORDER_START, Layer.TELEMETRY,
                      Window(0.2, 0.9), intensity=0.4),
        )
        first = inject_telemetry(events, plan)
        second = inject_telemetry(events, plan)
        assert first.events == second.events
        assert first.injected == second.injected
        assert first.total_injected > 0

    def test_different_seed_different_stream(self):
        events = list(events_from_records(_records()))
        spec = FaultSpec(FaultKind.DROP, Layer.TELEMETRY, intensity=0.3)
        first = inject_telemetry(events, _plan(spec, seed=1))
        second = inject_telemetry(events, _plan(spec, seed=2))
        assert first.events != second.events

    def test_empty_plan_is_identity(self):
        events = list(events_from_records(_records()))
        result = inject_telemetry(events, _plan())
        assert result.events == events
        assert result.total_injected == 0


@pytest.mark.chaos
class TestContractFramework:
    def _run(self, name, fn, scenarios=("*",)):
        contract(name, "test contract", scenarios)(fn)
        try:
            chaos_run = SimpleNamespace(spec=SimpleNamespace(name="unit"))
            return run_contract(_CONTRACTS[name], chaos_run)
        finally:
            _CONTRACTS.pop(name, None)

    def test_vacuous_pass_is_a_failure(self):
        outcome = self._run("unit-vacuous", lambda run, check: "no checks")
        assert outcome.status == FAIL
        assert "vacuous" in outcome.detail
        assert outcome.checks == 0

    def test_violation_becomes_failing_outcome(self):
        def body(run, check):
            check.that(True, "fine")
            check.that(False, "the invariant broke")
            return "unreached"

        outcome = self._run("unit-violation", body)
        assert outcome.status == FAIL
        assert outcome.detail == "the invariant broke"
        assert outcome.checks == 2
        assert not outcome.passed

    def test_skip_counts_as_vacuously_passed(self):
        def body(run, check):
            raise Skip("layer not in plan")

        outcome = self._run("unit-skip", body)
        assert outcome.status == SKIP
        assert outcome.passed

    def test_passing_contract_reports_summary_and_checks(self):
        def body(run, check):
            check.that(True, "a")
            check.that(True, "b")
            return "verified two things"

        outcome = self._run("unit-pass", body)
        assert outcome.status == PASS
        assert outcome.checks == 2
        assert outcome.detail == "verified two things"

    def test_duplicate_names_and_empty_scopes_rejected(self):
        existing = contract_names()[0]
        with pytest.raises(TestkitError):
            contract(existing, "dup", ("*",))(lambda run, check: "")
        with pytest.raises(TestkitError):
            contract("unit-unscoped", "no scope", ())(lambda run, check: "")

    def test_contract_check_raises_typed_violation(self):
        check = ContractCheck()
        with pytest.raises(ContractViolation):
            check.that(False, "typed")
        assert check.count == 1


@pytest.mark.chaos
class TestScenarioZoo:
    def test_five_scenarios_carry_chaos_plans(self):
        assert tuple(chaos_scenario_names()) == ZOO

    def test_every_plan_serializes_and_round_trips(self):
        for name in ZOO:
            plan = get_scenario(name).chaos_plan
            assert FaultPlan.from_json(plan.to_json()) == plan
            assert plan.specs  # a chaos scenario without faults is a bug

    def test_universal_contracts_cover_every_scenario(self):
        universal = {"recovered-equals-fault-free", "breaker-reclose",
                     "no-silent-leaks"}
        for name in ZOO:
            applicable = {c.name for c in contracts_for(name)}
            assert universal <= applicable
            # Each zoo scenario also carries a scenario-specific contract.
            assert len(applicable) > len(universal)

    def test_import_order_is_symmetric(self):
        # The zoo registers once whether repro.chaos or repro.testkit
        # loads first; both orders must agree on the registry contents.
        probe = (
            "import repro.{first}, repro.{second}\n"
            "from repro.chaos import chaos_scenario_names, contract_names\n"
            "print(len(chaos_scenario_names()), len(contract_names()))\n"
        )
        outputs = set()
        for first, second in (("chaos", "testkit"), ("testkit", "chaos")):
            result = subprocess.run(
                [sys.executable, "-c",
                 probe.format(first=first, second=second)],
                capture_output=True, text=True, check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        scenarios, contracts = outputs.pop().split()
        assert int(scenarios) == len(ZOO)
        assert int(contracts) >= 8


@pytest.mark.chaos
class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(["flash-crowd"])

    def test_flash_crowd_degrades_gracefully(self, report):
        assert report.ok
        assert report.failed == 0
        assert report.passed > 0
        assert report.checks > 0

    def test_ledger_covers_planned_layers_without_leaks(self, report):
        (scenario,) = report.reports
        plan = get_scenario("flash-crowd").chaos_plan
        assert sorted(scenario.ledger) == [l.value for l in plan.layers()]
        for layer, counts in scenario.ledger.items():
            assert counts["leaked"] == 0, layer
        assert sum(c["injected"] for c in scenario.ledger.values()) > 0

    def test_report_and_cli_run_are_identical(self, report, tmp_path):
        out = tmp_path / "degradation-report.json"
        code = main(
            ["chaos", "run", "--scenario", "flash-crowd", "--json",
             "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text()) == report.to_payload()

    def test_unknown_scenario_is_a_typed_error(self):
        with pytest.raises(TestkitError):
            run_chaos(["not-a-scenario"])

    def test_cli_list_and_plan_exit_codes(self, capsys):
        assert main(["chaos", "list"]) == 0
        assert "flash-crowd" in capsys.readouterr().out
        assert main(["chaos", "plan", "--scenario", "flash-crowd"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == PLAN_VERSION
        assert main(["chaos", "plan", "--scenario", "nope"]) == 2
        capsys.readouterr()
