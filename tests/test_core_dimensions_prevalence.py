"""Dimensions and prevalence series (repro.core)."""

from datetime import date

import pytest

from repro.constants import Platform, Protocol
from repro.core.dimensions import (
    CdnDimension,
    FamilyDimension,
    PlatformDimension,
    ProtocolDimension,
    record_protocol,
)
from repro.core.prevalence import (
    first_last,
    publisher_support_series,
    series_rows,
    share_at,
    top_values,
    view_hour_share_series,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


class TestProtocolDimension:
    def test_detects_from_url(self):
        record = make_record(url="http://x/v/master.mpd")
        assert ProtocolDimension().values(record) == (Protocol.DASH,)

    def test_http_only_excludes_rtmp(self):
        record = make_record(url="rtmp://x/live/v")
        assert ProtocolDimension(http_only=True).values(record) == ()
        assert ProtocolDimension(http_only=False).values(record) == (
            Protocol.RTMP,
        )

    def test_unknown_url_out_of_scope(self):
        record = make_record(url="http://x/watch/123")
        assert ProtocolDimension().values(record) == ()

    def test_record_protocol_helper(self):
        assert record_protocol(make_record()) is Protocol.HLS


class TestPlatformDimension:
    def test_classifies_device(self):
        assert PlatformDimension().values(make_record()) == (
            Platform.SET_TOP,
        )

    def test_unknown_device_out_of_scope(self):
        record = make_record(device_model="fridge")
        assert PlatformDimension().values(record) == ()


class TestFamilyDimension:
    def test_same_platform_classified(self):
        dim = FamilyDimension(Platform.SET_TOP)
        assert dim.values(make_record()) == ("roku",)

    def test_other_platform_out_of_scope(self):
        dim = FamilyDimension(Platform.MOBILE)
        assert dim.values(make_record()) == ()


class TestCdnDimension:
    def test_multi_valued(self):
        record = make_record(cdn_names=("A", "B"))
        assert CdnDimension().values(record) == ("A", "B")

    def test_weighted_values_split_evenly(self):
        record = make_record(cdn_names=("A", "B"))
        weighted = CdnDimension().weighted_values(record)
        assert weighted == (("A", 0.5), ("B", 0.5))

    def test_single_cdn_full_weight(self):
        weighted = CdnDimension().weighted_values(make_record())
        assert weighted == (("A", 1.0),)


def _two_snapshot_dataset():
    d1, d2 = date(2016, 1, 4), date(2018, 3, 12)
    return Dataset(
        [
            make_record(snapshot=d1, publisher_id="p1", weight=10),
            make_record(
                snapshot=d1,
                publisher_id="p2",
                url="http://x/v.mpd",
                weight=30,
            ),
            make_record(snapshot=d2, publisher_id="p1", weight=10),
            make_record(snapshot=d2, publisher_id="p2", weight=10),
        ]
    )


class TestSupportSeries:
    def test_publisher_percentages(self):
        series = publisher_support_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        first = series[date(2016, 1, 4)]
        assert first[Protocol.HLS] == 50.0
        assert first[Protocol.DASH] == 50.0
        latest = series[date(2018, 3, 12)]
        assert latest[Protocol.HLS] == 100.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            publisher_support_series(Dataset([]), ProtocolDimension())


class TestShareSeries:
    def test_shares_sum_to_100(self, dataset):
        series = view_hour_share_series(dataset, PlatformDimension())
        for shares in series.values():
            assert sum(shares.values()) == pytest.approx(100.0)

    def test_share_values(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        first = series[date(2016, 1, 4)]
        assert first[Protocol.HLS] == pytest.approx(25.0)
        assert first[Protocol.DASH] == pytest.approx(75.0)

    def test_exclusion(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(),
            ProtocolDimension(),
            exclude_publishers=["p2"],
        )
        assert series[date(2016, 1, 4)][Protocol.HLS] == pytest.approx(100.0)

    def test_by_views_differs_from_view_hours(self, dataset):
        vh = view_hour_share_series(dataset, PlatformDimension())
        views = view_hour_share_series(
            dataset, PlatformDimension(), by_views=True
        )
        latest = dataset.latest_snapshot()
        # Set-top views are long: view-hour share exceeds view share.
        assert vh[latest][Platform.SET_TOP] > views[latest][
            Platform.SET_TOP
        ]

    def test_excluding_everyone_rejected(self):
        data = _two_snapshot_dataset()
        with pytest.raises(AnalysisError):
            view_hour_share_series(
                data, ProtocolDimension(), exclude_publishers=["p1", "p2"]
            )


class TestSeriesHelpers:
    def test_share_at_and_first_last(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        assert share_at(series, date(2016, 1, 4), Protocol.DASH) == 75.0
        first, last = first_last(series, Protocol.DASH)
        assert first == 75.0
        assert last == 0.0  # both latest-snapshot records are HLS

    def test_share_at_missing_snapshot(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        with pytest.raises(AnalysisError):
            share_at(series, date(2017, 6, 1), Protocol.HLS)

    def test_top_values(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        assert top_values(series, date(2016, 1, 4), n=1) == [Protocol.DASH]

    def test_series_rows_printable(self):
        series = view_hour_share_series(
            _two_snapshot_dataset(), ProtocolDimension()
        )
        rows = series_rows(series, [Protocol.HLS, Protocol.DASH])
        assert len(rows) == 2
        assert rows[0]["snapshot"] == "2016-01-04"
        assert rows[0]["HLS"] == 25.0
