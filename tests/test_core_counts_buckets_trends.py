"""Per-publisher counts, buckets, and longitudinal trends (repro.core)."""

from datetime import date

import pytest

from repro.core.buckets import bucket_table, bucketed_counts
from repro.core.counts import (
    count_distribution,
    publisher_counts,
    share_with_count_above,
)
from repro.core.dimensions import CdnDimension, ProtocolDimension
from repro.core.trends import count_trend, trend_growth
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


def _counting_dataset():
    d = date(2018, 3, 12)
    return Dataset(
        [
            # p1: HLS only, tiny.
            make_record(snapshot=d, publisher_id="p1", weight=1),
            # p2: HLS + DASH, large.
            make_record(snapshot=d, publisher_id="p2", weight=50),
            make_record(
                snapshot=d,
                publisher_id="p2",
                url="http://x/v.mpd",
                weight=50,
            ),
        ]
    )


class TestPublisherCounts:
    def test_distinct_values_counted(self):
        counts = publisher_counts(_counting_dataset(), ProtocolDimension())
        assert counts == {"p1": 1, "p2": 2}

    def test_repeated_value_counted_once(self):
        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(snapshot=d, publisher_id="p1"),
                make_record(snapshot=d, publisher_id="p1"),
            ]
        )
        assert publisher_counts(data, ProtocolDimension()) == {"p1": 1}

    def test_cdn_counts_union_multi_cdn_views(self):
        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(snapshot=d, publisher_id="p1", cdn_names=("A", "B")),
                make_record(snapshot=d, publisher_id="p1", cdn_names=("C",)),
            ]
        )
        assert publisher_counts(data, CdnDimension()) == {"p1": 3}

    def test_out_of_scope_dataset_rejected(self):
        d = date(2018, 3, 12)
        data = Dataset(
            [make_record(snapshot=d, url="http://x/watch/1")]
        )
        with pytest.raises(AnalysisError):
            publisher_counts(data, ProtocolDimension())


class TestCountDistribution:
    def test_rows(self):
        rows = count_distribution(_counting_dataset(), ProtocolDimension())
        by_count = {r.count: r for r in rows}
        assert by_count[1].percent_publishers == 50.0
        assert by_count[1].percent_view_hours < 5.0
        assert by_count[2].percent_view_hours > 95.0

    def test_percentages_sum(self, latest):
        rows = count_distribution(latest, ProtocolDimension())
        assert sum(r.percent_publishers for r in rows) == pytest.approx(100)
        assert sum(r.percent_view_hours for r in rows) == pytest.approx(100)

    def test_share_above_threshold(self):
        rows = count_distribution(_counting_dataset(), ProtocolDimension())
        multi = share_with_count_above(rows, 1)
        assert multi["percent_publishers"] == 50.0
        assert multi["percent_view_hours"] > 95.0

    def test_share_above_requires_rows(self):
        with pytest.raises(AnalysisError):
            share_with_count_above([], 1)


class TestBuckets:
    def test_bucketing_normalizes_to_daily(self, latest, eco):
        buckets = bucketed_counts(latest, ProtocolDimension())
        assert sum(buckets.publisher_counts()) == len(
            publisher_counts(latest, ProtocolDimension())
        )

    def test_bucket_table_rows(self, latest):
        rows = bucket_table(bucketed_counts(latest, ProtocolDimension()))
        assert len(rows) == 7
        assert all("count_histogram" in row for row in rows)

    def test_modal_bucket_is_100x_1000x(self, latest):
        # §4.1: the tallest bar is the 100X-1000X bucket.
        buckets = bucketed_counts(latest, ProtocolDimension())
        shares = buckets.publisher_share()
        assert shares.index(max(shares)) == 3

    def test_window_validation(self, latest):
        with pytest.raises(AnalysisError):
            bucketed_counts(latest, ProtocolDimension(), window_days=0)


class TestTrends:
    def test_weighted_average_above_plain(self, dataset):
        # Figs 3c/9c/12c: larger publishers support more instances.
        points = count_trend(dataset, CdnDimension())
        for point in points:
            assert point.weighted_average > point.average

    def test_one_point_per_snapshot(self, dataset):
        points = count_trend(dataset, ProtocolDimension())
        assert len(points) == len(dataset.snapshots())

    def test_growth_computation(self, dataset):
        from repro.core.dimensions import PlatformDimension

        growth = trend_growth(count_trend(dataset, PlatformDimension()))
        # §4.2: platform counts grew over the study for both curves.
        assert growth["average_growth_pct"] > 10
        assert growth["weighted_growth_pct"] > 5

    def test_growth_needs_two_points(self):
        with pytest.raises(AnalysisError):
            trend_growth([])

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            count_trend(Dataset([]), ProtocolDimension())
