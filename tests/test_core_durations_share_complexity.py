"""Durations (Fig 8), protocol share (Fig 4), complexity (Fig 13)."""

from datetime import date

import pytest

from repro.constants import Platform, Protocol
from repro.core.complexity import (
    fit_complexity,
    max_unique_sdks,
    publisher_complexity,
)
from repro.core.durations import (
    duration_cdfs,
    long_view_fractions,
    median_durations,
)
from repro.core.protocol_share import (
    per_publisher_protocol_share,
    share_cdf,
    supporter_medians,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


class TestDurations:
    def test_cdfs_cover_observed_platforms(self, latest):
        cdfs = duration_cdfs(latest)
        assert Platform.SET_TOP in cdfs
        assert Platform.MOBILE in cdfs

    def test_set_top_views_longer_than_mobile(self, latest):
        # Fig 8's core finding.
        fractions = long_view_fractions(latest, threshold_hours=0.2)
        assert fractions[Platform.SET_TOP] > 2 * fractions[Platform.MOBILE]

    def test_long_view_fractions_in_unit_interval(self, latest):
        for fraction in long_view_fractions(latest).values():
            assert 0.0 <= fraction <= 1.0

    def test_median_ordering(self, latest):
        medians = median_durations(latest)
        assert medians[Platform.SET_TOP] > medians[Platform.MOBILE]

    def test_negative_threshold_rejected(self, latest):
        with pytest.raises(AnalysisError):
            long_view_fractions(latest, threshold_hours=-1)

    def test_unclassifiable_dataset_rejected(self):
        data = Dataset([make_record(device_model="fridge")])
        with pytest.raises(AnalysisError):
            duration_cdfs(data)


class TestProtocolShare:
    def _dataset(self):
        d = date(2018, 3, 12)
        return Dataset(
            [
                make_record(
                    snapshot=d, publisher_id="p1", weight=85,
                    view_duration_hours=1.0,
                ),
                make_record(
                    snapshot=d, publisher_id="p1", weight=15,
                    view_duration_hours=1.0, url="http://x/v.mpd",
                ),
                make_record(
                    snapshot=d, publisher_id="p2", weight=100,
                    view_duration_hours=1.0,
                ),
            ]
        )

    def test_shares_among_supporters_only(self):
        shares = per_publisher_protocol_share(
            self._dataset(), Protocol.DASH
        )
        assert set(shares) == {"p1"}
        assert shares["p1"] == pytest.approx(15.0)

    def test_hls_share(self):
        shares = per_publisher_protocol_share(self._dataset(), Protocol.HLS)
        assert shares["p1"] == pytest.approx(85.0)
        assert shares["p2"] == pytest.approx(100.0)

    def test_cdf_median(self):
        cdf = share_cdf(self._dataset(), Protocol.HLS)
        assert cdf.median() == pytest.approx(85.0)

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(AnalysisError):
            per_publisher_protocol_share(self._dataset(), Protocol.HDS)

    def test_fig4_contrast_on_synthetic_data(self, latest):
        medians = supporter_medians(latest)
        # Fig 4: HLS supporters lean on HLS; DASH support is shallow.
        assert medians[Protocol.HLS] > 60.0
        assert medians[Protocol.DASH] < 30.0


class TestComplexity:
    def test_metrics_computed_per_publisher(self, latest, eco):
        metrics = publisher_complexity(latest, eco.catalogue_sizes)
        assert set(metrics) == latest.publishers()
        for m in metrics.values():
            assert m.combinations >= 1
            assert m.protocol_titles >= 1
            assert m.unique_sdks >= 1

    def test_catalogue_sizes_used_when_given(self, eco, latest):
        with_sizes = publisher_complexity(latest, eco.catalogue_sizes)
        without = publisher_complexity(latest, None)
        pid = max(
            eco.catalogue_sizes, key=lambda p: eco.catalogue_sizes[p]
        )
        # Telemetry under-samples large catalogues (§3 caveat).
        assert with_sizes[pid].protocol_titles > without[pid].protocol_titles

    def test_fits_are_sublinear_and_significant(self, latest, eco):
        fits = fit_complexity(publisher_complexity(latest, eco.catalogue_sizes))
        assert fits.all_sublinear()
        assert fits.all_significant(alpha=0.05)
        # The paper reports p-values below 1e-9.
        assert fits.combinations.p_value < 1e-9
        assert fits.protocol_titles.p_value < 1e-9
        assert fits.unique_sdks.p_value < 1e-9

    def test_slopes_near_paper(self, latest, eco):
        fits = fit_complexity(publisher_complexity(latest, eco.catalogue_sizes))
        assert 1.4 < fits.combinations.per_decade_factor < 2.4
        assert 3.0 < fits.protocol_titles.per_decade_factor < 4.6
        assert 1.4 < fits.unique_sdks.per_decade_factor < 2.2

    def test_max_unique_sdks_magnitude(self, latest, eco):
        biggest = max_unique_sdks(publisher_complexity(latest, eco.catalogue_sizes))
        assert 50 <= biggest <= 130  # paper: up to 85 code bases

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            publisher_complexity(Dataset([]), None)

    def test_fit_needs_enough_publishers(self):
        d = date(2018, 3, 12)
        data = Dataset([make_record(snapshot=d, publisher_id="p1")])
        with pytest.raises(AnalysisError):
            fit_complexity(publisher_complexity(data, None))

    def test_max_requires_metrics(self):
        with pytest.raises(AnalysisError):
            max_unique_sdks({})
