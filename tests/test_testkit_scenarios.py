"""Unit tests for the testkit DSL: specs, registry, Check, runner, report.

These are fast (no ecosystem builds except where explicitly noted) and
run in tier-1; the expensive scenario x oracle matrix lives in
``test_testkit_oracles.py`` behind the ``testkit`` marker.
"""

import math

import pytest

from repro import testkit as tk
from repro.errors import OracleFailure, TestkitError
from repro.testkit.oracles import FAIL, PASS, SKIP, Check, Oracle, Skip
from repro.testkit.report import OracleReport, run_matrix
from repro.testkit.scenario import IngestSpec, ScenarioRun, ScenarioSpec


def _spec(**overrides):
    base = dict(
        name="unit",
        description="unit-test scenario",
        seed=1,
        alt_seed=2,
        snapshot_limit=2,
        n_publishers=20,
        qoe_sessions=10,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- spec validation -------------------------------------------------------


def test_spec_rejects_whitespace_name():
    with pytest.raises(TestkitError, match="no spaces"):
        _spec(name="bad name")


def test_spec_rejects_equal_seeds():
    with pytest.raises(TestkitError, match="alt_seed"):
        _spec(alt_seed=1)


def test_spec_rejects_serial_jobs():
    with pytest.raises(TestkitError, match="jobs"):
        _spec(jobs=1)


def test_spec_rejects_unknown_figures():
    with pytest.raises(TestkitError, match="F99zz"):
        _spec(figure_ids=("F2a", "F99zz"))


def test_spec_figures_defaults_to_all_registered():
    from repro import figures

    assert _spec().figures() == tuple(figures.figure_ids())
    assert _spec(figure_ids=("F2a",)).figures() == ("F2a",)


def test_spec_config_carries_seed_override():
    spec = _spec()
    assert spec.config().seed == 1
    assert spec.config(seed=99).seed == 99
    assert spec.config().n_publishers == 20


def test_ingest_spec_validation():
    with pytest.raises(TestkitError, match="sessions"):
        IngestSpec(sessions=0)
    with pytest.raises(TestkitError, match="fault rate"):
        IngestSpec(fault_rate=1.5)
    assert IngestSpec(fault_rate=0.25).mix() is not None


# -- registry --------------------------------------------------------------


def test_scenario_registry_knows_the_four_shipped_scenarios():
    assert set(tk.scenario_names()) >= {
        "tiny",
        "paper-shaped",
        "fault-heavy",
        "syndication-heavy",
    }
    assert tk.get_scenario("tiny").snapshot_limit == 2


def test_unknown_scenario_names_the_known_ones():
    with pytest.raises(TestkitError, match="tiny"):
        tk.get_scenario("nope")


def test_duplicate_scenario_rejected():
    with pytest.raises(TestkitError, match="duplicate"):
        tk.register_scenario(_spec(name="tiny"))


def test_oracle_registry_covers_both_kinds():
    differential = {o.name for o in tk.oracles_by_kind("differential")}
    metamorphic = {o.name for o in tk.oracles_by_kind("metamorphic")}
    assert "row-vs-columnar" in differential
    assert "serial-vs-parallel" in differential
    assert "permutation-invariance" in metamorphic
    assert "seed-sensitivity" in metamorphic
    assert not differential & metamorphic


def test_unknown_oracle_raises():
    with pytest.raises(TestkitError, match="unknown oracle"):
        tk.get_oracle("nope")


def test_duplicate_oracle_name_rejected():
    with pytest.raises(TestkitError, match="duplicate"):
        tk.oracle("differential", "row-vs-columnar", "dup")(lambda r, c: "")


def test_unknown_oracle_kind_rejected():
    with pytest.raises(TestkitError, match="kind"):
        tk.oracle("quantum", "novel", "bad kind")


# -- Check helper ----------------------------------------------------------


def test_check_counts_and_raises_on_first_violation():
    check = Check()
    check.that(True, "fine")
    check.equal(3, 3, "threes")
    with pytest.raises(OracleFailure, match="threes vs four"):
        check.equal(3, 4, "threes vs four")
    assert check.count == 3


def test_check_close_handles_nan_pairs():
    check = Check()
    check.close(float("nan"), float("nan"), "nan==nan")
    with pytest.raises(OracleFailure, match="NaN"):
        check.close(float("nan"), 1.0, "nan vs one")


def test_rows_equal_exact_mode_accepts_nan_cells():
    check = Check()
    rows = [{"x": float("nan"), "label": "a"}]
    check.rows_equal(rows, [{"x": float("nan"), "label": "a"}], "nan rows")
    with pytest.raises(OracleFailure, match="col x"):
        check.rows_equal(rows, [{"x": 1.0, "label": "a"}], "nan rows")


def test_rows_equal_exact_mode_rejects_float_drift():
    check = Check()
    with pytest.raises(OracleFailure):
        check.rows_equal([{"x": 1.0}], [{"x": 1.0 + 1e-12}], "drift")
    # ... which the tolerant mode absorbs.
    check.rows_equal([{"x": 1.0}], [{"x": 1.0 + 1e-12}], "drift", rel=1e-9)


def test_rows_equal_reports_shape_mismatches():
    check = Check()
    with pytest.raises(OracleFailure, match="1 rows != 2 rows"):
        check.rows_equal([{"x": 1}], [{"x": 1}, {"x": 2}], "shape")
    with pytest.raises(OracleFailure, match="columns"):
        check.rows_equal([{"x": 1}], [{"y": 1}], "cols")


def test_dicts_close_names_the_asymmetric_keys():
    check = Check()
    with pytest.raises(OracleFailure, match="only-left=\\['a'\\]"):
        check.dicts_close({"a": 1.0}, {"b": 1.0}, "keys")


# -- runner ----------------------------------------------------------------


def _toy_oracle(fn, name="toy"):
    return Oracle(name=name, kind="differential", description="toy", fn=fn)


def _lazy_run():
    # Never built: the toy oracles below don't touch the dataset.
    return ScenarioRun(tk.get_scenario("tiny"))


def test_run_oracle_pass_skip_fail_statuses():
    def passing(run, check):
        check.that(True, "ok")
        return "compared one thing"

    def skipping(run, check):
        raise Skip("not applicable here")

    def failing(run, check):
        check.that(False, "expected inequality violated")
        return "unreachable"

    run = _lazy_run()
    ok = tk.run_oracle(_toy_oracle(passing), run)
    assert (ok.status, ok.checks, ok.detail) == (PASS, 1, "compared one thing")
    assert ok.passed
    skip = tk.run_oracle(_toy_oracle(skipping), run)
    assert (skip.status, skip.detail) == (SKIP, "not applicable here")
    assert skip.passed  # vacuously
    fail = tk.run_oracle(_toy_oracle(failing), run)
    assert fail.status == FAIL and not fail.passed
    assert "expected inequality violated" in fail.detail


def test_run_oracle_flags_vacuous_pass_as_harness_bug():
    outcome = tk.run_oracle(_toy_oracle(lambda r, c: "did nothing"), _lazy_run())
    assert outcome.status == FAIL
    assert "no checks" in outcome.detail


def test_run_oracle_converts_library_errors_to_failures():
    def exploding(run, check):
        check.that(True, "warm-up")
        raise TestkitError("stage blew up")

    outcome = tk.run_oracle(_toy_oracle(exploding), _lazy_run())
    assert outcome.status == FAIL
    assert "TestkitError" in outcome.detail


def test_run_oracle_lets_programming_errors_propagate():
    def buggy(run, check):
        raise ZeroDivisionError("oracle bug")

    with pytest.raises(ZeroDivisionError):
        tk.run_oracle(_toy_oracle(buggy), _lazy_run())


# -- scenario run caching --------------------------------------------------


def test_scenario_run_requires_ingest_spec_for_corruption():
    run = ScenarioRun(tk.get_scenario("tiny"))
    with pytest.raises(TestkitError, match="no ingest stage"):
        run.corrupted_events()


def test_unknown_build_variant_rejected():
    run = ScenarioRun(tk.get_scenario("tiny"))
    with pytest.raises(TestkitError, match="variant"):
        run._build("turbo")


# -- report ----------------------------------------------------------------


def _outcome(status, scenario="tiny", oracle="toy", checks=1):
    return tk.OracleOutcome(
        oracle=oracle,
        kind="differential",
        scenario=scenario,
        status=status,
        checks=checks,
        detail=f"{status} detail",
    )


def test_report_counts_and_ok():
    report = OracleReport(
        outcomes=(_outcome(PASS), _outcome(SKIP, oracle="other"))
    )
    assert (report.passed, report.failed, report.skipped) == (1, 0, 1)
    assert report.ok
    assert not OracleReport(outcomes=()).ok  # nothing passed
    assert not OracleReport(
        outcomes=(_outcome(PASS), _outcome(FAIL, oracle="bad"))
    ).ok


def test_report_payload_is_deterministic_and_versioned():
    report = OracleReport(
        outcomes=(
            _outcome(PASS, scenario="b", oracle="z"),
            _outcome(FAIL, scenario="a", oracle="y", checks=7),
        )
    )
    payload = report.to_payload()
    assert payload["version"] == 1
    assert payload["scenarios"] == ["a", "b"]
    ordered = [(o["scenario"], o["oracle"]) for o in payload["outcomes"]]
    assert ordered == sorted(ordered)
    assert payload["summary"] == {
        "pass": 1,
        "fail": 1,
        "skip": 0,
        "checks": 8,
        "ok": False,
    }
    assert report.to_json() == report.to_json()


def test_report_format_text_names_failures():
    report = OracleReport(
        outcomes=(_outcome(FAIL, oracle="broken"), _outcome(PASS))
    )
    text = report.format_text()
    assert "FAIL tiny/broken" in text
    assert "FAILED: 1 passed, 1 failed" in text
    assert math.isfinite(report.checks)


def test_run_matrix_resolves_names_and_rejects_unknown():
    def trivial(run, check):
        check.equal(run.spec.name, "tiny", "scenario routing")
        return "routed"

    report = run_matrix(
        scenarios=["tiny"], oracles=[_toy_oracle(trivial, name="routing")]
    )
    assert report.ok and report.passed == 1
    assert report.outcomes[0].scenario == "tiny"
    with pytest.raises(TestkitError, match="unknown scenario"):
        run_matrix(scenarios=["nope"], oracles=[])
