"""Integrated syndication what-ifs and the edge-cache study (extensions)."""

import numpy as np
import pytest

from repro.core.integrated import (
    accounting_report,
    integrated_qoe_projection,
    owner_share_of_cdn,
    project_all_syndicators,
)
from repro.delivery.edgesim import EdgeSyndicationStudy
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.errors import AnalysisError, DeliveryError
from repro.synthesis.catalogues import case_video_id
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


class TestQoeProjection:
    def test_integration_lifts_s7_bitrate(self, eco):
        projection = integrated_qoe_projection(
            eco.case_study, "S7", "X", "A", sessions=80
        )
        # S7's 2 Mbps cap disappears once it serves the owner's ladder.
        assert projection.bitrate_gain > 1.5
        assert projection.after_median_kbps > 3000

    def test_integration_reduces_s7_rebuffering(self, eco):
        projection = integrated_qoe_projection(
            eco.case_study, "S7", "X", "A", sessions=80
        )
        # The 800 kbps floor goes away too.
        assert projection.rebuffer_reduction > 0.0

    def test_strong_syndicators_change_little(self, eco):
        # S6 already runs a dense 10-rung ladder up to 8 Mbps:
        # integration is roughly neutral for it.
        projection = integrated_qoe_projection(
            eco.case_study, "S6", "X", "A", sessions=80
        )
        assert 0.7 < projection.bitrate_gain < 1.3

    def test_projection_deterministic_by_seed(self, eco):
        a = integrated_qoe_projection(
            eco.case_study, "S2", "X", "A", sessions=50, seed=3
        )
        b = integrated_qoe_projection(
            eco.case_study, "S2", "X", "A", sessions=50, seed=3
        )
        assert a.after_median_kbps == b.after_median_kbps

    def test_project_all_covers_every_syndicator(self, eco):
        projections = project_all_syndicators(
            eco.case_study, sessions=20
        )
        assert set(projections) == set(eco.case_study.syndicator_labels)

    def test_session_minimum(self, eco):
        with pytest.raises(AnalysisError):
            integrated_qoe_projection(
                eco.case_study, "S7", "X", "A", sessions=2
            )


class TestAccounting:
    def test_report_totals(self):
        from datetime import date

        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(
                    snapshot=d, publisher_id="owner", cdn_names=("A",),
                    weight=10, view_duration_hours=1.0,
                    avg_bitrate_kbps=4000,
                ),
                make_record(
                    snapshot=d, publisher_id="syn", cdn_names=("A",),
                    weight=10, view_duration_hours=1.0,
                    avg_bitrate_kbps=2000,
                ),
            ]
        )
        report = accounting_report(data, "A")
        assert set(report) == {"owner", "syn"}
        # owner delivered twice the bytes at twice the bitrate.
        assert report["owner"].delivered_gigabytes == pytest.approx(
            2 * report["syn"].delivered_gigabytes
        )
        assert owner_share_of_cdn(data, "A", "owner") == pytest.approx(
            2 / 3
        )

    def test_multi_cdn_traffic_split(self):
        from datetime import date

        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(
                    snapshot=d, publisher_id="p", cdn_names=("A", "B"),
                    weight=10, view_duration_hours=1.0,
                )
            ]
        )
        report = accounting_report(data, "A")
        assert report["p"].view_hours == pytest.approx(5.0)

    def test_video_filter(self, dataset, eco):
        study = eco.case_study
        report = accounting_report(
            dataset, "A", video_ids=frozenset({case_video_id()})
        )
        # Only case-study participants touched that video on CDN A.
        participant_ids = set(study.labels.values())
        assert set(report) <= participant_ids

    def test_unused_cdn_rejected(self, dataset):
        with pytest.raises(AnalysisError):
            accounting_report(dataset, "NO_SUCH_CDN")

    def test_mean_bitrate_consistency(self):
        from datetime import date

        d = date(2018, 3, 12)
        data = Dataset(
            [
                make_record(
                    snapshot=d, publisher_id="p", cdn_names=("A",),
                    weight=4, view_duration_hours=0.5,
                    avg_bitrate_kbps=3000,
                )
            ]
        )
        entry = accounting_report(data, "A")["p"]
        assert entry.mean_bitrate_kbps == pytest.approx(3000.0)


@pytest.fixture
def edge_study():
    catalogue = Catalogue(
        "series", [Video(f"e{i}", 1500.0) for i in range(40)]
    )
    ladders = {
        "owner": BitrateLadder.from_bitrates((150, 400, 900, 2000, 4500)),
        "syn1": BitrateLadder.from_bitrates((180, 700, 1500, 3600)),
        "syn2": BitrateLadder.from_bitrates((800, 1400, 2000)),
    }
    return EdgeSyndicationStudy(
        catalogue=catalogue,
        ladders=ladders,
        owner_id="owner",
        cache_capacity_bytes=2e9,
    )


class TestEdgeSyndicationStudy:
    def test_integration_improves_hit_ratio(self, edge_study, rng):
        results = edge_study.compare(rng, n_sessions=400)
        independent = results["independent"]
        integrated = results["integrated"]
        assert integrated.hit_ratio > independent.hit_ratio
        assert integrated.origin_gigabytes < independent.origin_gigabytes

    def test_same_request_count_across_regimes(self, edge_study, rng):
        results = edge_study.compare(rng, n_sessions=200)
        assert (
            results["independent"].requests
            == results["integrated"].requests
        )

    def test_origin_offload_bounds(self, edge_study, rng):
        for result in edge_study.compare(rng, n_sessions=200).values():
            assert 0.0 <= result.origin_offload <= 1.0

    def test_requests_reference_catalogue(self, edge_study, rng):
        requests = edge_study.sample_requests(rng, 50)
        video_ids = set(edge_study.catalogue.video_ids)
        for publisher, video_id, bitrate, index in requests:
            assert publisher in edge_study.ladders
            assert video_id in video_ids
            assert bitrate in edge_study.ladders[publisher].bitrates_kbps

    def test_unknown_regime_rejected(self, edge_study, rng):
        requests = edge_study.sample_requests(rng, 10)
        with pytest.raises(DeliveryError):
            edge_study.replay(requests, "federated")

    def test_construction_validation(self):
        catalogue = Catalogue("c", [Video("v", 100.0)])
        ladder = BitrateLadder.from_bitrates((500,))
        with pytest.raises(DeliveryError):
            EdgeSyndicationStudy(
                catalogue=catalogue,
                ladders={"owner": ladder},
                owner_id="owner",
                cache_capacity_bytes=1e9,
            )
        with pytest.raises(DeliveryError):
            EdgeSyndicationStudy(
                catalogue=catalogue,
                ladders={"a": ladder, "b": ladder},
                owner_id="missing",
                cache_capacity_bytes=1e9,
            )
