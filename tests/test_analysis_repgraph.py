"""repgraph: symbol table, call graph, effect fixpoints, RPL1xx rules.

The suite climbs the analyzer's three layers — project model, call
graph, effect/taint analyses — then closes with the claims that make
the whole-program pass worth having:

* every seeded hazard in ``tests/fixtures/repgraph_demo`` fires its
  RPL1xx analysis **and** is invisible to the per-file replint rules,
* the JSON report is byte-identical across runs (pinned by a golden
  file), and
* the real ``src/`` tree analyzes clean with no baseline — the
  pipeline is proven safe to parallelize.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli, obs
from repro.analysis import (
    ANALYSES,
    ANALYSIS_VERSION,
    EffectAnalysis,
    Project,
    build_call_graph,
    format_json,
    format_text,
    graph_json,
    run_analysis,
)
from repro.analysis.callgraph import MODULE_FN
from repro.lint import (
    LintConfig,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.baseline import split_by_baseline
from repro.lint.engine import apply_pragmas, collect_files, pragma_map
from repro.lint.findings import Finding, Severity

pytestmark = pytest.mark.analysis

ROOT = Path(__file__).resolve().parent.parent
DEMO_ROOT = ROOT / "tests" / "fixtures" / "repgraph_demo"
GOLDEN_REPORT = ROOT / "tests" / "golden" / "repgraph_demo_report.json"

DEMO_CODES = ("RPL101", "RPL102", "RPL103", "RPL104")


def project_of(files: dict) -> Project:
    """Build an in-memory project from ``{relative_path: source}``."""
    return Project.from_sources(
        [(path, textwrap.dedent(text)) for path, text in files.items()]
    )


def write_tree(tmp_path: Path, files: dict) -> Path:
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def analyze_tree(tmp_path: Path, files: dict, **kwargs):
    write_tree(tmp_path, files)
    config = LintConfig(root=str(tmp_path))
    kwargs.setdefault("use_baseline", False)
    return run_analysis(None, config=config, **kwargs)


def demo_result(**kwargs):
    config = LintConfig(root=str(DEMO_ROOT))
    kwargs.setdefault("use_baseline", False)
    return run_analysis(["demo"], config=config, **kwargs)


# ---------------------------------------------------------------------------
# Layer 1: project model (modules, symbols, functions, classes)
# ---------------------------------------------------------------------------


class TestProjectModel:
    def test_module_names_strip_source_root_and_init(self):
        project = project_of({
            "src/app/__init__.py": "",
            "src/app/util.py": "def helper():\n    return 1\n",
        })
        assert set(project.modules) == {"app", "app.util"}
        assert "app.util.helper" in project.functions

    def test_import_alias_resolution(self):
        project = project_of({
            "src/app/a.py": "import numpy as np\nimport app.util as u\n",
        })
        module = project.modules["app.a"]
        assert project.resolve(module, "np.random.default_rng") == (
            "numpy.random.default_rng"
        )
        assert project.resolve(module, "u.helper") == "app.util.helper"

    def test_relative_import_resolution(self):
        project = project_of({
            "src/app/__init__.py": "",
            "src/app/util.py": "def helper():\n    return 1\n",
            "src/app/sub/__init__.py": "",
            "src/app/sub/mod.py": "from ..util import helper as h\n",
        })
        module = project.modules["app.sub.mod"]
        assert project.resolve(module, "h") == "app.util.helper"

    def test_method_qualnames_and_inheritance(self):
        project = project_of({
            "src/app/shapes.py": """
            class Base:
                def area(self):
                    return 0

            class Square(Base):
                def __init__(self, side):
                    self.side = side
            """,
        })
        assert "app.shapes.Base.area" in project.functions
        assert project.lookup_method("app.shapes.Square", "area") == (
            "app.shapes.Base.area"
        )

    def test_parse_failure_is_a_finding_not_a_crash(self):
        project = project_of({
            "src/app/ok.py": "x = 1\n",
            "src/app/broken.py": "def broken(:\n",
        })
        assert [f.code for f in project.parse_findings] == ["RPL000"]
        assert project.modules["app.ok"].tree is not None

    def test_rng_globals_classified_with_seededness(self):
        project = project_of({
            "src/app/streams.py": """
            import random
            import numpy as np

            SEEDED = random.Random(7)
            WILD = np.random.default_rng()
            """,
        })
        rng = project.modules["app.streams"].rng_globals
        assert rng["SEEDED"].seeded and not rng["WILD"].seeded
        assert rng["WILD"].ctor == "numpy.random.default_rng"
        assert set(project.rng_symbols()) == {
            "app.streams.SEEDED",
            "app.streams.WILD",
        }


# ---------------------------------------------------------------------------
# Layer 2: call graph (edges, method binding, fan-out sites)
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_cross_module_edge_through_import(self):
        project = project_of({
            "src/app/util.py": "def helper():\n    return 1\n",
            "src/app/main.py": """
            from app import util

            def go():
                return util.helper()
            """,
        })
        graph = build_call_graph(project)
        assert "app.util.helper" in graph.callees("app.main.go")
        assert "app.main.go" in graph.callers("app.util.helper")

    def test_local_instance_method_binding(self):
        project = project_of({
            "src/app/shapes.py": """
            class Square:
                def area(self):
                    return 4

            def measure():
                sq = Square()
                return sq.area()
            """,
        })
        graph = build_call_graph(project)
        assert "app.shapes.Square.area" in graph.callees(
            "app.shapes.measure"
        )

    def test_module_level_calls_belong_to_module_fn(self):
        project = project_of({
            "src/app/boot.py": """
            def init():
                return 1

            STATE = init()
            """,
        })
        graph = build_call_graph(project)
        assert "app.boot.init" in graph.callees(f"app.boot.{MODULE_FN}")

    def test_fanout_site_resolves_worker_through_partial(self):
        project = project_of({
            "src/app/work.py": """
            from concurrent.futures import ProcessPoolExecutor
            from functools import partial

            def worker(config, item):
                return (config, item)

            def run(config, items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(partial(worker, config), items))
            """,
        })
        graph = build_call_graph(project)
        assert [s.worker for s in graph.fanouts] == ["app.work.worker"]
        assert graph.fanouts[0].pool == (
            "concurrent.futures.ProcessPoolExecutor"
        )

    def test_shortest_path_is_deterministic(self):
        project = project_of({
            "src/app/chain.py": """
            def a():
                return b() + c()

            def b():
                return d()

            def c():
                return d()

            def d():
                return 1
            """,
        })
        graph = build_call_graph(project)
        path = graph.shortest_path("app.chain.a", "app.chain.d")
        # BFS over sorted adjacency: the b-branch wins ties.
        assert path == ["app.chain.a", "app.chain.b", "app.chain.d"]
        reach = graph.reachable_from(["app.chain.b"])
        assert "app.chain.c" not in reach and "app.chain.d" in reach


# ---------------------------------------------------------------------------
# Layer 3: effect and taint fixpoints
# ---------------------------------------------------------------------------


class TestEffects:
    def _effects(self, project):
        return EffectAnalysis(project, build_call_graph(project))

    def test_transitive_global_write_reaches_caller_summary(self):
        project = project_of({
            "src/app/state.py": """
            CACHE = {}

            def poke(key):
                CACHE[key] = 1

            def outer(key):
                return poke(key)
            """,
        })
        effects = self._effects(project)
        assert not effects.direct["app.state.outer"].writes_global
        assert ("app.state.CACHE", "app.state.poke") in (
            effects.effects_of("app.state.outer").writes_global
        )

    def test_plain_local_rebinding_is_not_a_global_write(self):
        project = project_of({
            "src/app/state.py": """
            LIMIT = 5

            def shadow():
                LIMIT = 9
                return LIMIT

            def declared():
                global LIMIT
                LIMIT = 9
            """,
        })
        effects = self._effects(project)
        assert not effects.direct["app.state.shadow"].writes_global
        assert effects.direct["app.state.declared"].writes_global

    def test_clock_taint_flows_through_returns(self):
        project = project_of({
            "src/app/clocks.py": """
            import time

            def now():
                return time.time()

            def indirect():
                stamp = now()
                return stamp
            """,
        })
        effects = self._effects(project)
        assert effects.returns_clock["app.clocks.now"]
        assert effects.returns_clock["app.clocks.indirect"]

    def test_cross_module_rng_use_lands_in_worker_summary(self):
        project = project_of({
            "src/app/streams.py": "import random\nRNG = random.Random(3)\n",
            "src/app/work.py": """
            from app import streams

            def draw():
                return streams.RNG.random()
            """,
        })
        effects = self._effects(project)
        assert ("app.streams.RNG", "app.work.draw") in (
            effects.direct["app.work.draw"].rng_uses
        )


# ---------------------------------------------------------------------------
# RPL1xx analyses end-to-end over temporary trees
# ---------------------------------------------------------------------------


class TestAnalyses:
    def test_rpl101_unseeded_origin_fires_and_seeded_is_clean(
        self, tmp_path
    ):
        result = analyze_tree(
            tmp_path,
            {
                "src/app/bad.py": (
                    "import numpy as np\n\n"
                    "def fresh():\n"
                    "    return np.random.default_rng()\n"
                ),
                "src/app/good.py": (
                    "import numpy as np\n\n"
                    "def derived(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                ),
            },
        )
        assert [f.code for f in result.findings] == ["RPL101"]
        assert result.findings[0].path == "src/app/bad.py"

    def test_rpl102_shared_stream_across_pool_and_per_unit_spawn_clean(
        self, tmp_path
    ):
        result = analyze_tree(
            tmp_path,
            {
                "src/app/streams.py": (
                    "import random\nRNG = random.Random(11)\n"
                ),
                "src/app/bad.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "from app import streams\n\n"
                    "def draw(n):\n"
                    "    return [streams.RNG.random() for _ in range(n)]\n\n"
                    "def run(counts):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(draw, counts))\n"
                ),
                "src/app/good.py": (
                    "import numpy as np\n"
                    "from concurrent.futures import ProcessPoolExecutor\n\n"
                    "def draw(child):\n"
                    "    return np.random.default_rng(child).random()\n\n"
                    "def run(seed, jobs):\n"
                    "    children = np.random.SeedSequence(seed).spawn(jobs)\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(draw, children))\n"
                ),
            },
        )
        assert [f.code for f in result.findings] == ["RPL102"]
        assert result.findings[0].path == "src/app/bad.py"
        assert "app.streams.RNG" in result.findings[0].message

    def test_rpl103_interprocedural_clock_taint_and_pure_stamp_clean(
        self, tmp_path
    ):
        result = analyze_tree(
            tmp_path,
            {
                "src/app/clocks.py": (
                    "import time\n\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
                "src/app/bad.py": (
                    "import json\n"
                    "from app import clocks\n\n"
                    "def write_rows(rows):\n"
                    "    payload = {'at': clocks.stamp(), 'rows': rows}\n"
                    "    return json.dumps(payload)\n"
                ),
                "src/app/good.py": (
                    "import json\n\n"
                    "def write_rows(rows, snapshot_date):\n"
                    "    payload = {'at': snapshot_date, 'rows': rows}\n"
                    "    return json.dumps(payload)\n"
                ),
            },
        )
        codes = {f.code for f in result.findings}
        assert codes == {"RPL103"}
        paths = {f.path for f in result.findings}
        assert "src/app/good.py" not in paths

    def test_rpl104_impure_worker_flagged_and_memoized_builder_clean(
        self, tmp_path
    ):
        result = analyze_tree(
            tmp_path,
            {
                "src/app/bad.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n\n"
                    "SEEN = []\n\n"
                    "def worker(item):\n"
                    "    SEEN.append(item)\n"
                    "    return len(SEEN)\n\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return [pool.submit(worker, i) for i in items]\n"
                ),
                "src/app/good.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "from functools import lru_cache\n\n"
                    "@lru_cache(maxsize=1)\n"
                    "def plan_for(config):\n"
                    "    return {'config': config}\n\n"
                    "def worker(config, item):\n"
                    "    return (plan_for(config), item)\n\n"
                    "def run(config, items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return [pool.submit(worker, config, i)\n"
                    "                for i in items]\n"
                ),
            },
        )
        assert [f.code for f in result.findings] == ["RPL104"]
        assert result.findings[0].path == "src/app/bad.py"
        assert "app.bad.SEEN" in result.findings[0].message

    def test_rpl104_lambda_capture_mutation(self, tmp_path):
        result = analyze_tree(
            tmp_path,
            {
                "src/app/bad.py": (
                    "from concurrent.futures import ThreadPoolExecutor\n\n"
                    "def run(items):\n"
                    "    acc = []\n"
                    "    with ThreadPoolExecutor() as pool:\n"
                    "        pool.map(lambda i: acc.append(i), items)\n"
                    "    return acc\n"
                ),
            },
        )
        assert [f.code for f in result.findings] == ["RPL104"]
        assert "acc" in result.findings[0].message


# ---------------------------------------------------------------------------
# The seeded fixture package: true positives per-file lint cannot see
# ---------------------------------------------------------------------------


class TestFixturePackage:
    def test_every_analysis_fires_on_its_planted_hazard(self):
        result = demo_result()
        assert {f.code for f in result.findings} == set(DEMO_CODES)

    def test_per_file_replint_is_blind_to_every_hazard(self):
        """The reason repgraph exists: replint passes this package."""
        config = LintConfig(root=str(DEMO_ROOT))
        lint = run_lint(["demo"], config=config, use_baseline=False)
        assert lint.files_checked == 6
        assert lint.findings == [], "\n".join(
            f.format() for f in lint.findings
        )

    def test_repo_config_excludes_the_fixture_package(self):
        config = LintConfig.load(str(ROOT))
        files = collect_files(
            [str(ROOT / "tests" / "fixtures" / "repgraph_demo")], config
        )
        assert files == []

    def test_analysis_registry_documents_each_code(self):
        assert set(ANALYSES) == set(DEMO_CODES)
        for description, exempt in ANALYSES.values():
            assert description
            assert isinstance(exempt, tuple)


# ---------------------------------------------------------------------------
# Suppression: pragmas and the separate analysis baseline
# ---------------------------------------------------------------------------


class TestSuppression:
    BAD = (
        "import numpy as np\n\n"
        "def fresh():\n"
        "    return np.random.default_rng()\n"
    )

    def test_inline_pragma_silences_rpl1xx(self, tmp_path):
        silenced = self.BAD.replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # replint: disable=RPL101",
        )
        result = analyze_tree(tmp_path, {"src/app/a.py": silenced})
        assert result.findings == []

    def test_baseline_roundtrip_suppresses_known_findings(self, tmp_path):
        result = analyze_tree(tmp_path, {"src/app/a.py": self.BAD})
        assert [f.code for f in result.findings] == ["RPL101"]
        config = LintConfig(root=str(tmp_path))
        baseline_file = tmp_path / config.analysis_baseline_path
        write_baseline(str(baseline_file), result.findings)
        again = run_analysis(None, config=config, use_baseline=True)
        assert again.findings == [] and again.ok
        assert [f.code for f in again.baselined] == ["RPL101"]

    def test_analysis_baseline_is_separate_from_lint_baseline(self):
        config = LintConfig()
        assert config.analysis_baseline_path != config.baseline_path

    def test_exemption_globs_skip_sanctioned_paths(self, tmp_path):
        clock_src = (
            "import time\nimport json\n\n"
            "def write_now():\n"
            "    return json.dumps({'at': time.time()})\n"
        )
        result = analyze_tree(
            tmp_path,
            {
                "src/app/obs/clock.py": clock_src,
                "src/app/report.py": clock_src,
            },
        )
        flagged = {f.path for f in result.findings}
        assert flagged == {"src/app/report.py"}


# ---------------------------------------------------------------------------
# Report determinism: versioned JSON, golden pin, graph artifact
# ---------------------------------------------------------------------------


class TestReportDeterminism:
    def test_json_report_is_byte_identical_across_runs(self):
        first, second = format_json(demo_result()), format_json(
            demo_result()
        )
        assert first == second
        assert graph_json(demo_result()) == graph_json(demo_result())

    def test_json_report_matches_golden_file(self):
        """Byte-for-byte pin of the fixture package's report."""
        golden = GOLDEN_REPORT.read_text(encoding="utf-8")
        assert format_json(demo_result()) + "\n" == golden

    def test_report_shape_and_version(self):
        payload = json.loads(format_json(demo_result()))
        assert payload["version"] == ANALYSIS_VERSION
        assert set(payload["analyses"]) == set(DEMO_CODES)
        summary = payload["summary"]
        assert summary["ok"] is False
        assert summary["new_errors"] == len(payload["findings"])
        assert summary["findings_by_code"]["RPL103"] == 2
        assert summary["fanout_sites"] == 2

    def test_graph_artifact_lists_sorted_edges_and_fanouts(self):
        payload = json.loads(graph_json(demo_result()))
        edges = payload["edges"]
        assert edges == sorted(
            edges, key=lambda e: (e["caller"], e["callee"], e["line"])
        )
        workers = {s["worker"] for s in payload["fanouts"]}
        assert workers == {
            "demo.workers.draw_many",
            "demo.workers.record_result",
        }

    def test_text_report_summarizes_scale(self):
        text = format_text(demo_result())
        assert "6 modules" in text and "fan-out sites" in text


# ---------------------------------------------------------------------------
# CLI: `repro analyze`
# ---------------------------------------------------------------------------


class TestCli:
    def _seed_project(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pyproject.toml": "[tool.replint]\npaths = [\"src\"]\n",
                "src/app/bad.py": TestSuppression.BAD,
            },
        )
        return tmp_path

    def test_analyze_reports_and_fails(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        assert cli.main(["analyze", "--root", str(root)]) == 1
        assert "RPL101" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        code = cli.main(
            ["analyze", "--root", str(root), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"][0]["code"] == "RPL101"

    def test_baseline_flag_snapshots_then_passes(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        assert cli.main(["analyze", "--root", str(root), "--baseline"]) == 0
        assert (root / ".repgraph-baseline.json").is_file()
        capsys.readouterr()
        assert cli.main(["analyze", "--root", str(root)]) == 0
        assert cli.main(
            ["analyze", "--root", str(root), "--no-baseline"]
        ) == 1

    def test_out_and_graph_out_artifacts(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        report = tmp_path / "report.json"
        graph = tmp_path / "graph.json"
        cli.main(
            [
                "analyze", "--root", str(root), "--format", "json",
                "--out", str(report), "--graph-out", str(graph),
            ]
        )
        on_disk = json.loads(report.read_text(encoding="utf-8"))
        assert on_disk == json.loads(capsys.readouterr().out)
        graph_payload = json.loads(graph.read_text(encoding="utf-8"))
        assert graph_payload["version"] == ANALYSIS_VERSION
        assert set(graph_payload) >= {"edges", "fanouts", "nodes"}


# ---------------------------------------------------------------------------
# Observability: analysis.* instruments
# ---------------------------------------------------------------------------


@pytest.fixture
def global_obs():
    ctx = obs.configure(enabled=True)
    yield ctx
    ctx.configure(enabled=False)


class TestObsInstruments:
    def test_run_emits_stage_spans_and_scale_gauges(self, global_obs):
        result = demo_result()
        names = [s.name for s in global_obs.tracer.finished]
        for stage in (
            "analysis.parse",
            "analysis.callgraph",
            "analysis.effects",
            "analysis.rules",
            "analysis.run",
        ):
            assert stage in names
        registry = global_obs.registry
        assert registry.gauge("analysis.modules").value == (
            result.stats["modules"]
        )
        by_code = registry.series_values("analysis.findings")
        assert by_code == {
            "RPL101": 1.0, "RPL102": 1.0, "RPL103": 2.0, "RPL104": 1.0,
        }


# ---------------------------------------------------------------------------
# Property tests: baseline and pragma round-trips
# ---------------------------------------------------------------------------


_code_st = st.from_regex(r"RPL[0-9]{3}", fullmatch=True)
_path_st = st.from_regex(r"src/[a-z]{1,8}/[a-z]{1,8}\.py", fullmatch=True)
_findings_st = st.lists(
    st.builds(
        Finding,
        path=_path_st,
        line=st.integers(min_value=1, max_value=9999),
        col=st.integers(min_value=0, max_value=80),
        code=_code_st,
        severity=st.just(Severity.ERROR),
        message=st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Nd"), max_codepoint=0x7F
            ),
            min_size=1,
            max_size=40,
        ),
        source_line=st.just("x = 1"),
    ),
    max_size=8,
)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(findings=_findings_st)
    def test_baseline_save_load_roundtrip_suppresses_exactly(
        self, findings, tmp_path_factory
    ):
        """write_baseline |> load_baseline suppresses those findings
        and only those findings."""
        target = tmp_path_factory.mktemp("baseline") / "b.json"
        write_baseline(str(target), findings)
        loaded = load_baseline(str(target))
        fresh, suppressed = split_by_baseline(findings, loaded)
        assert fresh == []
        assert len(suppressed) == len(findings)
        outsider = Finding(
            path="src/zz/never.py",
            line=1,
            col=0,
            code="RPL999",
            severity=Severity.ERROR,
            message="novel",
        )
        fresh2, _ = split_by_baseline(findings + [outsider], loaded)
        assert fresh2 == [outsider]

    @settings(max_examples=100, deadline=None)
    @given(
        disabled=st.sets(_code_st, min_size=1, max_size=4),
        other=_code_st,
    )
    def test_pragma_parse_and_apply_roundtrip(self, disabled, other):
        """A disable= pragma suppresses exactly the listed codes."""
        line = "x = 1  # replint: disable=" + ",".join(sorted(disabled))
        pragmas = pragma_map([line])
        assert pragmas == {1: set(disabled)}

        def finding(code):
            return Finding(
                path="src/a/b.py",
                line=1,
                col=0,
                code=code,
                severity=Severity.ERROR,
                message="m",
            )

        kept = apply_pragmas(
            [finding(c) for c in sorted(disabled | {other})], pragmas
        )
        expected = [] if other in disabled else [other]
        assert [f.code for f in kept] == expected

    @settings(max_examples=50, deadline=None)
    @given(codes=st.sets(_code_st, min_size=0, max_size=3))
    def test_blanket_pragma_beats_any_code(self, codes):
        pragmas = pragma_map(["y = 2  # replint: disable"])
        findings = [
            Finding(
                path="src/a/b.py",
                line=1,
                col=0,
                code=code,
                severity=Severity.ERROR,
                message="m",
            )
            for code in sorted(codes)
        ]
        assert apply_pragmas(findings, pragmas) == []


# ---------------------------------------------------------------------------
# Acceptance: the shipped tree is proven safe to parallelize
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_src_tree_analyzes_clean_with_no_baseline(self):
        config = LintConfig.load(str(ROOT))
        result = run_analysis(
            [str(ROOT / "src")], config=config, use_baseline=False
        )
        assert result.stats["modules"] > 100
        assert result.stats["fanout_sites"] >= 1
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )

    def test_cli_src_tree_clean_and_deterministic(self, capsys):
        args = [
            "analyze", str(ROOT / "src"), "--root", str(ROOT),
            "--format", "json",
        ]
        assert cli.main(args) == 0
        first = capsys.readouterr().out
        assert cli.main(args) == 0
        assert capsys.readouterr().out == first

    def test_repo_analysis_baseline_is_absent_or_empty(self):
        baseline = ROOT / ".repgraph-baseline.json"
        if baseline.is_file():
            assert load_baseline(str(baseline)) == {}
