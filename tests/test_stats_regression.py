"""Log-log OLS and the t-distribution machinery (repro.stats.regression)."""

import math

import numpy as np
import pytest

from repro.stats.regression import LogLogFit, fit_loglog, t_sf


class TestExactFits:
    def test_perfect_power_law(self):
        xs = [10, 100, 1000, 10000]
        ys = [x**0.5 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.p_value == pytest.approx(0.0, abs=1e-12)

    def test_per_decade_factor(self):
        xs = [1, 10, 100, 1000]
        ys = [2 * x**0.2355 for x in xs]  # the paper's 1.72x slope
        fit = fit_loglog(xs, ys)
        assert fit.per_decade_factor == pytest.approx(1.72, rel=1e-3)

    def test_intercept_recovered(self):
        xs = [1, 10, 100]
        ys = [5.0, 5.0, 5.0]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(0.0)
        assert 10**fit.intercept == pytest.approx(5.0)

    def test_predict(self):
        fit = fit_loglog([1, 10, 100], [2, 20, 200])
        assert fit.predict(1000) == pytest.approx(2000.0)

    def test_predict_rejects_nonpositive(self):
        fit = fit_loglog([1, 10, 100], [2, 20, 200])
        with pytest.raises(ValueError):
            fit.predict(0)

    def test_sublinearity_flag(self):
        sub = fit_loglog([1, 10, 100], [1, 5, 25])
        sup = fit_loglog([1, 10, 100], [1, 20, 400])
        assert sub.is_sublinear
        assert not sup.is_sublinear


class TestNoisyFits:
    def test_noisy_slope_recovered(self, rng):
        xs = np.logspace(0, 6, 80)
        ys = 3.0 * xs**0.58 * np.exp(rng.normal(0, 0.2, size=80))
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(0.58, abs=0.05)
        assert fit.p_value < 1e-9  # the paper's significance bar

    def test_no_relationship_has_high_p(self, rng):
        xs = np.logspace(0, 4, 30)
        ys = np.exp(rng.normal(2.0, 0.5, size=30))
        fit = fit_loglog(xs, ys)
        assert fit.p_value > 0.01


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_loglog([1, 2], [1, 2])

    def test_nonpositive_data(self):
        with pytest.raises(ValueError):
            fit_loglog([1, 2, 0], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_loglog([1, 2, 3], [1, -2, 3])

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            fit_loglog([5, 5, 5], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_loglog([1, 2, 3], [1, 2])


class TestNearDegenerateInputs:
    """Inputs that defeat exact ``== 0.0`` guards (RPL004 cleanup).

    Values differing only in the last few ulps produce tiny-but-nonzero
    sums of squares; the epsilon guards must treat them as degenerate
    rather than amplifying rounding noise into slopes and r² values.
    """

    def test_x_identical_within_rounding_rejected(self):
        xs = [7.0 * (1.0 + k * 2**-52) for k in range(4)]
        assert len(set(xs)) > 1  # genuinely distinct floats
        with pytest.raises(ValueError):
            fit_loglog(xs, [1.0, 2.0, 3.0, 4.0])

    def test_y_constant_within_rounding_is_perfect_flat_fit(self):
        xs = [1.0, 10.0, 100.0, 1000.0]
        ys = [5.0 * (1.0 + k * 2**-52) for k in range(4)]
        fit = fit_loglog(xs, ys)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert math.isfinite(fit.p_value)
        assert 0.0 <= fit.p_value <= 1.0

    def test_exactly_constant_y_unchanged(self):
        fit = fit_loglog([1, 10, 100], [5.0, 5.0, 5.0])
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0)

    def test_far_from_degenerate_unaffected(self):
        xs = [1, 10, 100, 1000]
        ys = [2 * x**0.5 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)


class TestStudentT:
    def test_symmetry(self):
        assert t_sf(0.0, 10) == pytest.approx(0.5)

    def test_known_value(self):
        # P[T > 2.228] with 10 df is 0.025 (classic t-table entry).
        assert t_sf(2.228, 10) == pytest.approx(0.025, abs=2e-4)

    def test_negative_argument(self):
        assert t_sf(-2.228, 10) == pytest.approx(0.975, abs=2e-4)

    def test_large_df_approaches_normal(self):
        # P[Z > 1.96] = 0.025 for the standard normal.
        assert t_sf(1.96, 10_000) == pytest.approx(0.025, abs=1e-3)

    def test_bad_df(self):
        with pytest.raises(ValueError):
            t_sf(1.0, 0)
