"""The top-level generator (repro.synthesis.generator)."""

import pytest

from repro.errors import CalibrationError
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import (
    EcosystemGenerator,
    generate_default_dataset,
)


class TestGeneration:
    def test_dataset_shape(self, eco):
        assert len(eco.dataset.snapshots()) == 6
        assert len(eco.publishers) == 110
        assert len(eco.dataset.publishers()) == 110

    def test_first_and_last_snapshots_kept(self, eco):
        dates = eco.dataset.snapshots()
        schedule = eco.schedule.dates()
        assert dates[0] == schedule[0]
        assert dates[-1] == schedule[-1]

    def test_dash_drivers_are_among_largest(self, eco):
        ranked = sorted(
            eco.publishers, key=lambda p: p.daily_view_hours, reverse=True
        )
        top = {p.publisher_id for p in ranked[:4]}
        assert eco.dash_driver_ids == top

    def test_top3_subset_of_drivers(self, eco):
        assert eco.top3_ids <= eco.dash_driver_ids

    def test_case_study_present(self, eco):
        assert eco.case_study is not None
        assert len(eco.case_study.labels) == 11

    def test_catalogue_sizes_cover_population(self, eco):
        assert set(eco.catalogue_sizes) == {
            p.publisher_id for p in eco.publishers
        }

    def test_publisher_lookup(self, eco):
        publisher = eco.publisher(eco.case_study.owner_id)
        assert publisher.publisher_id == eco.case_study.owner_id
        with pytest.raises(KeyError):
            eco.publisher("ghost")

    def test_publisher_miss_names_the_id_and_leaves_index_intact(self, eco):
        # Regression: a dict-index miss must surface the requested id
        # (not a bare KeyError from the internal dict) and must not
        # poison subsequent hits on the cached index.
        with pytest.raises(KeyError, match="unknown publisher 'pub_404'"):
            eco.publisher("pub_404")
        survivor = eco.publishers[0].publisher_id
        assert eco.publisher(survivor).publisher_id == survivor
        with pytest.raises(KeyError, match="''"):
            eco.publisher("")

    def test_every_listed_publisher_resolves(self, eco):
        for expected in eco.publishers:
            assert eco.publisher(expected.publisher_id) is expected

    def test_total_view_hours_order_of_magnitude(self, eco):
        # §3: ~0.06B daily view-hours aggregate; the synthetic
        # population should land within the same order of magnitude.
        daily = eco.dataset.latest().total_view_hours() / 2.0
        assert 1e7 < daily < 1e9


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate_default_dataset(seed=99, snapshot_limit=3)
        b = generate_default_dataset(seed=99, snapshot_limit=3)
        assert len(a.dataset) == len(b.dataset)
        assert a.dataset.records[:50] == b.dataset.records[:50]
        assert a.dataset.records[-1] == b.dataset.records[-1]

    def test_different_seed_differs(self):
        a = generate_default_dataset(seed=1, snapshot_limit=3)
        b = generate_default_dataset(seed=2, snapshot_limit=3)
        assert a.dataset.records[:100] != b.dataset.records[:100]


class TestConfig:
    def test_case_study_optional(self):
        config = EcosystemConfig(
            seed=5, snapshot_limit=2, include_case_study=False
        )
        result = EcosystemGenerator(config).generate()
        assert result.case_study is None

    def test_records_scale(self):
        small = EcosystemGenerator(
            EcosystemConfig(
                seed=5, snapshot_limit=2, records_scale=0.5,
                include_case_study=False,
            )
        ).generate()
        big = EcosystemGenerator(
            EcosystemConfig(
                seed=5, snapshot_limit=2, records_scale=1.0,
                include_case_study=False,
            )
        ).generate()
        assert (
            small.dataset.total_view_hours()
            < big.dataset.total_view_hours()
        )

    def test_snapshot_limit_validation(self):
        with pytest.raises(CalibrationError):
            EcosystemGenerator(
                EcosystemConfig(seed=1, snapshot_limit=1)
            ).generate()
        with pytest.raises(CalibrationError):
            EcosystemConfig(seed=1, snapshot_limit=-1)

    def test_population_minimum(self):
        with pytest.raises(CalibrationError):
            EcosystemConfig(n_publishers=5)

    def test_qoe_sessions_minimum(self):
        with pytest.raises(CalibrationError):
            EcosystemConfig(qoe_sessions=1)


class TestDashDriverCounterfactual:
    """§4.1's causal claim: large publishers drive the DASH surge."""

    def test_without_drivers_dash_stays_marginal(self):
        from repro.constants import Protocol
        from repro.core.dimensions import ProtocolDimension
        from repro.core.prevalence import (
            first_last,
            view_hour_share_series,
        )

        config = EcosystemConfig(
            seed=2018,
            snapshot_limit=5,
            dash_driver_count=0,
            include_case_study=False,
        )
        counterfactual = EcosystemGenerator(config).generate()
        series = view_hour_share_series(
            counterfactual.dataset, ProtocolDimension()
        )
        _, dash_end = first_last(series, Protocol.DASH)
        # Without the drivers, DASH view-hours never surge (the factual
        # world ends near 40%).
        assert dash_end < 12.0
        assert counterfactual.dash_driver_ids == frozenset()

    def test_negative_driver_count_rejected(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            EcosystemConfig(dash_driver_count=-1)
