"""Diversity metrics (repro.core.diversity) — extension."""

import math

import pytest

from repro.core.diversity import (
    effective_choices,
    fit_diversity,
    herfindahl,
    mean_evenness,
    publisher_diversity,
    shannon_entropy,
)
from repro.errors import AnalysisError


class TestEntropy:
    def test_uniform_distribution(self):
        shares = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
        assert shannon_entropy(shares) == pytest.approx(math.log(4))
        assert effective_choices(shares) == pytest.approx(4.0)

    def test_concentrated_distribution(self):
        shares = {"a": 1.0, "b": 0.0}
        assert shannon_entropy(shares) == 0.0
        assert effective_choices(shares) == 1.0

    def test_normalization_irrelevant(self):
        assert shannon_entropy({"a": 1, "b": 3}) == pytest.approx(
            shannon_entropy({"a": 0.25, "b": 0.75})
        )

    def test_effective_between_one_and_count(self):
        shares = {"a": 5.0, "b": 3.0, "c": 1.0}
        effective = effective_choices(shares)
        assert 1.0 < effective < 3.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            shannon_entropy({})
        with pytest.raises(AnalysisError):
            shannon_entropy({"a": -1.0, "b": 2.0})
        with pytest.raises(AnalysisError):
            shannon_entropy({"a": 0.0})


class TestHerfindahl:
    def test_uniform(self):
        assert herfindahl({"a": 1, "b": 1}) == pytest.approx(0.5)

    def test_monopoly(self):
        assert herfindahl({"a": 7.0}) == 1.0

    def test_inverse_matches_effective_for_uniform(self):
        shares = {str(i): 1.0 for i in range(5)}
        assert 1.0 / herfindahl(shares) == pytest.approx(
            effective_choices(shares)
        )


class TestPublisherDiversity:
    def test_profiles_for_all_publishers(self, latest):
        profiles = publisher_diversity(latest)
        assert len(profiles) > 100

    def test_effective_never_exceeds_count(self, latest):
        for profile in publisher_diversity(latest).values():
            assert profile.protocol_effective <= profile.protocol_count + 1e-9
            assert profile.platform_effective <= profile.platform_count + 1e-9
            assert profile.cdn_effective <= profile.cdn_count + 1e-9

    def test_evenness_ratio_in_unit_interval(self, latest):
        for profile in publisher_diversity(latest).values():
            assert 0.0 < profile.evenness_ratio <= 1.0 + 1e-9

    def test_surface_below_count_surface(self, latest):
        for profile in publisher_diversity(latest).values():
            assert profile.surface_index <= profile.count_surface + 1e-9

    def test_empty_dataset_rejected(self):
        from repro.telemetry.dataset import Dataset

        with pytest.raises(AnalysisError):
            publisher_diversity(Dataset([]))


class TestDiversityFits:
    def test_both_surfaces_grow_sublinearly(self, latest):
        fits = fit_diversity(publisher_diversity(latest))
        assert 1.0 < fits.surface_index.per_decade_factor < 10.0
        assert 1.0 < fits.count_surface.per_decade_factor < 10.0

    def test_counts_overstate_exercised_diversity(self, latest):
        # Large publishers' extra choices are partly long-tail: the raw
        # count surface grows faster than the evenness-aware one.
        fits = fit_diversity(publisher_diversity(latest))
        assert fits.evenness_gap > 0

    def test_mean_evenness_bounds(self, latest):
        profiles = publisher_diversity(latest)
        plain = mean_evenness(profiles)
        weighted = mean_evenness(profiles, weight_by_view_hours=True)
        assert 0.0 < plain <= 1.0
        assert 0.0 < weighted <= 1.0

    def test_fit_needs_enough_profiles(self):
        with pytest.raises(AnalysisError):
            fit_diversity({})
