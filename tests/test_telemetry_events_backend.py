"""Event sessionization and the telemetry backend."""

from datetime import date

import pytest

from repro.constants import ContentType
from repro.errors import DatasetError
from repro.telemetry.backend import TelemetryBackend
from repro.telemetry.events import (
    Heartbeat,
    SessionEnd,
    SessionStart,
    Sessionizer,
)
from tests.test_telemetry_records import make_record


def _start(session_id="s1", **overrides):
    kwargs = dict(
        session_id=session_id,
        snapshot=date(2018, 3, 12),
        publisher_id="pub_001",
        url="http://a.cdn.example.net/vid_x/master.m3u8",
        video_id="vid_x",
        device_model="roku-ultra",
        os_name="roku",
        content_type=ContentType.VOD,
        bitrate_ladder_kbps=(150.0, 600.0),
        sdk_name="RokuSDK",
        sdk_version="8.1",
    )
    kwargs.update(overrides)
    return SessionStart(**kwargs)


def _beat(session_id="s1", playing=18.0, rebuffering=2.0, bitrate=600.0,
          cdn="A"):
    return Heartbeat(
        session_id=session_id,
        interval_seconds=20.0,
        playing_seconds=playing,
        rebuffering_seconds=rebuffering,
        bitrate_kbps=bitrate,
        cdn_name=cdn,
    )


class TestSessionizer:
    def test_fold_single_session(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        sessionizer.ingest(_beat())
        sessionizer.ingest(_beat(rebuffering=0.0, playing=20.0))
        record = sessionizer.ingest(SessionEnd("s1"))
        assert record is not None
        assert record.view_duration_hours == pytest.approx(38.0 / 3600)
        assert record.rebuffer_ratio == pytest.approx(2.0 / 40.0)

    def test_bitrate_is_play_time_weighted(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        sessionizer.ingest(_beat(playing=10, rebuffering=0, bitrate=600))
        sessionizer.ingest(_beat(playing=20, rebuffering=0, bitrate=150))
        record = sessionizer.ingest(SessionEnd("s1"))
        assert record.avg_bitrate_kbps == pytest.approx(
            (600 * 10 + 150 * 20) / 30
        )

    def test_multi_cdn_views_record_each_cdn_once(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        sessionizer.ingest(_beat(cdn="A"))
        sessionizer.ingest(_beat(cdn="B"))
        sessionizer.ingest(_beat(cdn="A"))
        record = sessionizer.ingest(SessionEnd("s1"))
        assert record.cdn_names == ("A", "B")

    def test_interleaved_sessions(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start("s1"))
        sessionizer.ingest(_start("s2", publisher_id="pub_002"))
        sessionizer.ingest(_beat("s2"))
        sessionizer.ingest(_beat("s1"))
        first = sessionizer.ingest(SessionEnd("s2"))
        assert first.publisher_id == "pub_002"
        assert sessionizer.open_sessions == 1

    def test_duplicate_start_rejected(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        with pytest.raises(DatasetError):
            sessionizer.ingest(_start())

    def test_orphan_heartbeat_rejected(self):
        with pytest.raises(DatasetError):
            Sessionizer().ingest(_beat())

    def test_orphan_end_rejected(self):
        with pytest.raises(DatasetError):
            Sessionizer().ingest(SessionEnd("ghost"))

    def test_session_without_heartbeats_rejected(self):
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        with pytest.raises(DatasetError):
            sessionizer.ingest(SessionEnd("s1"))

    def test_heartbeat_component_validation(self):
        with pytest.raises(DatasetError):
            Heartbeat(
                session_id="s",
                interval_seconds=20,
                playing_seconds=15,
                rebuffering_seconds=10,
                bitrate_kbps=100,
                cdn_name="A",
            )

    def test_unknown_event_type_rejected(self):
        with pytest.raises(DatasetError):
            Sessionizer().ingest("not an event")


class TestBackend:
    def test_event_path_produces_records(self):
        backend = TelemetryBackend()
        backend.ingest_event(_start())
        backend.ingest_event(_beat())
        record = backend.ingest_event(SessionEnd("s1"))
        assert record is not None
        assert backend.record_count == 1
        assert len(backend.dataset()) == 1

    def test_bulk_record_import(self):
        backend = TelemetryBackend()
        count = backend.ingest_records(make_record() for _ in range(5))
        assert count == 5
        assert backend.record_count == 5

    def test_combo_rollups_group_by_cdn_protocol_device(self):
        backend = TelemetryBackend()
        backend.ingest_record(make_record(cdn_names=("A",)))
        backend.ingest_record(make_record(cdn_names=("A",)))
        backend.ingest_record(make_record(cdn_names=("B",)))
        rollups = backend.combo_rollups()
        keys = {(r.cdn_name, r.protocol, r.device_model) for r in rollups}
        assert keys == {
            ("A", "hls", "roku-ultra"),
            ("B", "hls", "roku-ultra"),
        }

    def test_multi_cdn_record_contributes_to_both(self):
        backend = TelemetryBackend()
        backend.ingest_record(make_record(cdn_names=("A", "B")))
        assert len(backend.combo_rollups()) == 2

    def test_rollup_means_weighted_by_views(self):
        backend = TelemetryBackend()
        backend.ingest_record(
            make_record(weight=1, rebuffer_ratio=0.0)
        )
        backend.ingest_record(
            make_record(weight=3, rebuffer_ratio=0.4)
        )
        rollup = backend.combo_rollups()[0]
        assert rollup.mean_rebuffer_ratio == pytest.approx(0.3)

    def test_worst_combos_sorted_by_rebuffering(self):
        backend = TelemetryBackend()
        backend.ingest_record(
            make_record(cdn_names=("A",), rebuffer_ratio=0.01)
        )
        backend.ingest_record(
            make_record(cdn_names=("B",), rebuffer_ratio=0.30)
        )
        worst = backend.worst_combos(n=1)
        assert worst[0].cdn_name == "B"

    def test_worst_combos_min_views_filter(self):
        backend = TelemetryBackend()
        backend.ingest_record(
            make_record(cdn_names=("A",), weight=1, rebuffer_ratio=0.5)
        )
        backend.ingest_record(
            make_record(cdn_names=("B",), weight=100, rebuffer_ratio=0.1)
        )
        worst = backend.worst_combos(n=5, min_views=10)
        assert [r.cdn_name for r in worst] == ["B"]

    def test_publisher_filter(self):
        backend = TelemetryBackend()
        backend.ingest_record(make_record(publisher_id="pub_001"))
        backend.ingest_record(make_record(publisher_id="pub_002"))
        assert len(backend.combo_rollups(publisher_id="pub_001")) == 1

    def test_zero_view_combo_reports_zeroed_means(self):
        backend = TelemetryBackend()
        # A record whose summed views is zero cannot be constructed
        # through the validated path; forge one the way a corrupted
        # store would, and make sure rollups degrade instead of crash.
        record = make_record()
        forged = object.__new__(type(record))
        for name, value in vars(record).items():
            object.__setattr__(forged, name, value)
        object.__setattr__(forged, "weight", 0.0)
        backend._records.append(forged)
        rollup = backend.combo_rollups()[0]
        assert rollup.views == 0.0
        assert rollup.mean_rebuffer_ratio == 0.0
        assert rollup.mean_bitrate_kbps == 0.0

    def test_event_path_does_not_double_retain_records(self):
        backend = TelemetryBackend()
        backend.ingest_event(_start())
        backend.ingest_event(_beat())
        backend.ingest_event(SessionEnd("s1"))
        assert backend.record_count == 1
        # The inner sessionizer hands records over without keeping them.
        assert backend._sessionizer.records == ()
        assert backend._sessionizer.folded_count == 1

    def test_ingest_events_batch_quarantine(self):
        backend = TelemetryBackend()
        report = backend.ingest_events(
            [_start(), _beat(), SessionEnd("s1"), SessionEnd("ghost")],
            policy="quarantine",
        )
        assert len(report.records) == 1
        assert report.quarantined == 1
        assert backend.record_count == 1

    def test_ingest_events_strict_raises(self):
        backend = TelemetryBackend()
        with pytest.raises(DatasetError):
            backend.ingest_events([SessionEnd("ghost")], policy="strict")


class TestSessionizerStateRecovery:
    def test_failed_fold_leaves_session_recoverable(self):
        """A fold failure must not destroy the session's state."""
        sessionizer = Sessionizer()
        sessionizer.ingest(_start())
        with pytest.raises(DatasetError):
            sessionizer.ingest(SessionEnd("s1"))  # no heartbeats yet
        assert sessionizer.open_sessions == 1
        sessionizer.ingest(_beat())
        record = sessionizer.ingest(SessionEnd("s1"))
        assert record is not None
        assert sessionizer.open_sessions == 0

    def test_retention_can_be_disabled(self):
        sessionizer = Sessionizer(retain_records=False)
        sessionizer.ingest(_start())
        sessionizer.ingest(_beat())
        record = sessionizer.ingest(SessionEnd("s1"))
        assert record is not None
        assert sessionizer.records == ()
        assert sessionizer.folded_count == 1
