"""Seeded true-positive fixture package for the repgraph analyzer.

Each module plants exactly the cross-module determinism hazard one
RPL1xx analysis exists to catch — and plants it so that the per-file
replint rules *cannot* see it (the analysis test suite asserts both
directions).  The package is excluded from the repo-wide replint and
analyze runs; tests point the analyzer at it explicitly.

==========  ======================  ==============================
analysis    module(s)               why per-file linting misses it
==========  ======================  ==============================
RPL101      streams.py              unseeded rng born outside
                                    RPL001's scoped paths
RPL102      streams.py + pool.py    stream is seeded where created;
                                    the fan-out lives elsewhere
RPL103      cli.py + report.py      the clock read sits in an
                                    RPL002-exempt entry point; the
                                    JSON sink is in another module
RPL104      workers.py + pool.py    the mutated global and the pool
                                    submit are in different modules
==========  ======================  ==============================
"""
