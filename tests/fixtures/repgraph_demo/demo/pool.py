"""Fan-out driver for the demo pipeline.

Both hazards here cross module boundaries: the worker that shares an
RNG stream (RPL102) and the worker that mutates a module global
(RPL104) are defined in :mod:`demo.workers`; this module only submits
them.  A per-file rule sees an innocuous pool here and innocuous
functions there.
"""

from concurrent.futures import ProcessPoolExecutor

from demo import workers


def run_draws(jobs, counts):
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(workers.draw_many, counts))


def run_recording(jobs, items):
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(workers.record_result, i) for i in items]
        return [f.result() for f in futures]
