"""Entry point of the demo pipeline.

``build_stamp`` returns a wall-clock read.  Per-file replint exempts
``*/cli.py`` from RPL002 wholesale — timestamping a run is what entry
points do — so no per-file rule can object here.  But
:mod:`demo.report` folds the value into a *persisted* JSON payload,
which only the whole-program clock-taint pass can see (RPL103).
"""

import time


def build_stamp():
    return time.time()
