"""RNG streams for the demo pipeline.

``fresh_stream`` births an *unseeded* generator (RPL101: every RNG
origin must derive from an explicit seed).  ``RNG`` is seeded at
creation — per-file inspection finds nothing wrong with this module —
but it is a single shared stream, and :mod:`demo.pool` fans consumers
of it out across processes (RPL102).
"""

import random

import numpy as np

RNG = random.Random(1234)


def fresh_stream():
    """An unseeded generator: nondeterministic by construction."""
    return np.random.default_rng()


def noisy_value(base):
    return base + fresh_stream().standard_normal()
