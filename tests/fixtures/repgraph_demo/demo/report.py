"""Report writer for the demo pipeline.

``write_report`` persists a payload whose ``generated_at`` field is a
wall-clock value fetched through :mod:`demo.cli` — the interprocedural
clock taint RPL103 exists to catch: the read sits in an RPL002-exempt
entry point and the sink in a different module, so neither file looks
wrong in isolation.
"""

import json

from demo import cli


def write_report(path, rows):
    payload = {
        "generated_at": cli.build_stamp(),
        "rows": list(rows),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    return payload
