"""Worker functions the demo pipeline submits to process pools.

``draw_many`` consumes the shared seeded stream from
:mod:`demo.streams`; inside a fan-out each process forks its own copy
of the stream state, so parallel output diverges from serial (RPL102).
``record_result`` appends to a module global: a side effect invisible
to the parent process under ``spawn`` and order-dependent under
``fork`` (RPL104).
"""

from demo import streams

RESULTS = []


def draw_many(count):
    return [streams.RNG.random() for _ in range(count)]


def record_result(item):
    RESULTS.append(item)
    return len(RESULTS)
