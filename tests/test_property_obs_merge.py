"""Property-based tests for deterministic observability merging.

The :mod:`repro.parallel` layer promises that observability output is
independent of how work was split across workers: counters sum,
histograms add bucket-wise, gauges keep the high-water mark, and span
batches re-number deterministically.  These are algebraic claims —
merge is order-invariant and associative, and merging the pieces of a
split serial run reproduces the unsplit run — so they are stated as
Hypothesis properties.

Observed values are drawn from integers (converted to float) so sums
are exact: float addition is not associative in general, and the
parallel layer sidesteps that by always merging contiguous chunks in
unit order, which these tests mirror.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsError, MetricsRegistry
from repro.obs.tracing import Span, Tracer

pytestmark = pytest.mark.obs

#: Exactly-representable observations: integer-valued floats keep
#: every sum bit-identical no matter the grouping.
exact_values = st.integers(min_value=-1000, max_value=1000).map(float)

#: A histogram bound set shared by every generated registry (merge
#: requires identical bounds; mismatches are tested separately).
BOUNDS = (1.0, 10.0, 100.0)

counter_events = st.lists(
    st.tuples(
        st.sampled_from(["a.count", "b.count", "c.count"]),
        st.integers(min_value=0, max_value=50).map(float),
    ),
    max_size=20,
)
# Gauges merge as high-water marks against an implicit floor of zero
# (a never-set gauge reads 0), so the identity law only holds on the
# non-negative range — which is where every gauge in the codebase
# lives (they are all counts or sizes).
gauge_events = st.lists(
    st.tuples(
        st.sampled_from(["a.gauge", "b.gauge"]),
        st.integers(min_value=0, max_value=1000).map(float),
    ),
    max_size=12,
)
histogram_events = st.lists(
    st.tuples(
        st.sampled_from(["a.hist", "b.hist"]),
        st.integers(min_value=0, max_value=500).map(float),
    ),
    max_size=20,
)
events = st.tuples(counter_events, gauge_events, histogram_events)


def _apply(registry: MetricsRegistry, batch) -> MetricsRegistry:
    counters, gauges, histograms = batch
    for name, amount in counters:
        registry.counter(name).inc(amount)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, value in histograms:
        registry.histogram(name, bounds=BOUNDS).observe(value)
    return registry


def _registry(batch) -> MetricsRegistry:
    return _apply(MetricsRegistry(), batch)


class TestRegistryMergeAlgebra:
    @given(events, events)
    def test_merge_order_invariant(self, batch_a, batch_b):
        left = _registry(batch_a).merge(_registry(batch_b))
        right = _registry(batch_b).merge(_registry(batch_a))
        assert left.snapshot() == right.snapshot()

    @given(events, events, events)
    @settings(max_examples=50)
    def test_merge_associative(self, batch_a, batch_b, batch_c):
        grouped_left = _registry(batch_a).merge(_registry(batch_b))
        grouped_left.merge(_registry(batch_c))
        grouped_right = _registry(batch_b).merge(_registry(batch_c))
        result_right = _registry(batch_a).merge(grouped_right)
        assert grouped_left.snapshot() == result_right.snapshot()

    @given(
        st.lists(
            st.tuples(counter_events, histogram_events),
            min_size=1,
            max_size=5,
        )
    )
    def test_merge_of_split_equals_unsplit(self, batches):
        """Splitting a serial run into contiguous chunks and merging
        them back reproduces the unsplit registry.

        Stated for counters and histograms, whose serial semantics are
        accumulation.  Gauges are deliberately out of scope: serially
        they are last-write-wins while merge keeps the high-water
        mark, so the law only holds for monotone writers (see
        ``test_gauge_merge_is_high_water`` for the semantic that *is*
        promised).
        """
        serial = MetricsRegistry()
        for counters, histograms in batches:
            _apply(serial, (counters, [], histograms))
        merged = MetricsRegistry()
        for counters, histograms in batches:
            merged.merge(_registry((counters, [], histograms)))
        assert merged.snapshot() == serial.snapshot()

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_gauge_merge_is_high_water(self, values):
        merged = MetricsRegistry()
        for value in values:
            worker = MetricsRegistry()
            worker.gauge("g").set(float(value))
            merged.merge(worker)
        assert merged.gauge("g").value == float(max(values))

    @given(events)
    def test_merge_into_empty_is_identity(self, batch):
        assert (
            MetricsRegistry().merge(_registry(batch)).snapshot()
            == _registry(batch).snapshot()
        )

    @given(counter_events, counter_events)
    def test_counter_totals_sum(self, batch_a, batch_b):
        merged = _registry((batch_a, [], [])).merge(
            _registry((batch_b, [], []))
        )
        for name in ("a.count", "b.count", "c.count"):
            expected = sum(
                amount
                for batch in (batch_a, batch_b)
                for event_name, amount in batch
                if event_name == name
            )
            observed = merged.series_values(name)
            assert sum(observed.values()) == expected

    def test_histogram_bounds_mismatch_rejected(self):
        ours = MetricsRegistry()
        ours.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        theirs = MetricsRegistry()
        theirs.histogram("h", bounds=(1.0, 3.0)).observe(1.5)
        with pytest.raises(MetricsError):
            ours.merge(theirs)


def _worker_spans(names) -> list:
    """Finished spans the way a worker tracer would record them."""
    tracer = Tracer()
    for name in names:
        with tracer.span(name):
            with tracer.span(f"{name}.child"):
                pass
    return tracer.finished


class TestSpanAdoption:
    @given(
        st.lists(
            st.lists(
                st.sampled_from(["load", "run", "fold"]),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_adoption_matches_serial_structure(self, batches):
        """Adopting per-worker batches in unit order reproduces the
        serial tracer's (name, parent-name) tree and keeps ids unique
        and sequential."""
        reference = Tracer()
        for names in batches:
            for name in names:
                with reference.span(name):
                    with reference.span(f"{name}.child"):
                        pass
        serial_spans = reference.finished

        parent = Tracer()
        adopted = []
        for names in batches:
            adopted.extend(parent.adopt(_worker_spans(names)))

        def shape(spans):
            by_id = {s.span_id: s for s in spans}
            return [
                (
                    s.name,
                    by_id[s.parent_id].name
                    if s.parent_id in by_id
                    else None,
                )
                for s in spans
            ]

        assert shape(parent.finished) == shape(serial_spans)
        ids = [s.span_id for s in adopted]
        assert len(ids) == len(set(ids))
        assert sorted(ids) == list(range(min(ids), min(ids) + len(ids)))

    def test_batch_roots_reparent_under_ambient_span(self):
        parent = Tracer()
        with parent.span("fanout") as ambient:
            adopted = parent.adopt(_worker_spans(["run"]))
        roots = [s for s in adopted if s.name == "run"]
        assert all(s.parent_id == ambient.span_id for s in roots)
        children = [s for s in adopted if s.name == "run.child"]
        assert all(s.parent_id == roots[0].span_id for s in children)

    def test_adoption_preserves_attrs_and_timings(self):
        worker = Tracer()
        with worker.span("step", rows=7) as span:
            span.set(extra="x")
        parent = Tracer()
        (adopted,) = parent.adopt(worker.finished)
        assert adopted.attrs == {"rows": 7, "extra": "x"}
        assert adopted.start == worker.finished[0].start
        assert adopted.end == worker.finished[0].end
