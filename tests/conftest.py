"""Shared fixtures and seeded test-order randomization.

The ecosystem fixture is session-scoped: generating even a thinned
(6-snapshot) dataset takes a few seconds, and the analyses under test
are read-only.

Collection order is shuffled every run (module blocks are shuffled and
items shuffle within their module, so module-scoped fixtures still
build once).  The seed is printed in the pytest header; reproduce an
ordering with ``PYTEST_SHUFFLE_SEED=<seed>`` or opt out entirely with
``PYTEST_SHUFFLE_SEED=0``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.constants import ContentType
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.synthesis.generator import generate_default_dataset

_SHUFFLE_ENV = "PYTEST_SHUFFLE_SEED"


def _shuffle_seed() -> int:
    """The order seed: from the environment, else freshly drawn."""
    raw = os.environ.get(_SHUFFLE_ENV, "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            raise pytest.UsageError(
                f"{_SHUFFLE_ENV} must be an integer, got {raw!r}"
            ) from None
    return int.from_bytes(os.urandom(4), "big") or 1


def pytest_configure(config):
    if not hasattr(config, "workerinput"):  # xdist workers inherit
        config._shuffle_seed = _shuffle_seed()


def pytest_report_header(config):
    seed = getattr(config, "_shuffle_seed", None)
    if not seed:
        return [f"test order: original ({_SHUFFLE_ENV}=0)"]
    return [
        f"test order: shuffled with seed {seed} "
        f"(reproduce with {_SHUFFLE_ENV}={seed})"
    ]


def pytest_collection_modifyitems(config, items):
    """Shuffle modules, classes within a module, items within a class.

    Module and class blocks stay contiguous so module- and class-scoped
    fixtures still build exactly once, while order coupling between
    tests, classes, and modules is still surfaced.
    """
    seed = getattr(config, "_shuffle_seed", None)
    if not seed:
        return  # PYTEST_SHUFFLE_SEED=0 keeps the original order
    shuffler = random.Random(seed)
    items[:] = _shuffled_blocks(
        items,
        lambda item: getattr(getattr(item, "module", None), "__name__", ""),
        lambda block: _shuffled_blocks(
            block,
            lambda item: getattr(
                getattr(item, "cls", None), "__name__", ""
            ),
            lambda leaf: shuffler.sample(leaf, len(leaf)),
            shuffler,
        ),
        shuffler,
    )


def _shuffled_blocks(items, key_of, shuffle_block, shuffler):
    """Group consecutive-key items, shuffle group order, recurse."""
    keys = []
    groups = {}
    for item in items:
        key = key_of(item)
        if key not in groups:
            groups[key] = []
            keys.append(key)
        groups[key].append(item)
    shuffler.shuffle(keys)
    reordered = []
    for key in keys:
        reordered.extend(shuffle_block(groups[key]))
    return reordered


@pytest.fixture(scope="session")
def eco():
    """A small but fully featured synthetic ecosystem build."""
    return generate_default_dataset(seed=2018, snapshot_limit=6)


@pytest.fixture(scope="session")
def dataset(eco):
    return eco.dataset


@pytest.fixture(scope="session")
def latest(dataset):
    return dataset.latest()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def ladder():
    """A 5-rung h264 ladder following the HLS guidelines."""
    return BitrateLadder.from_bitrates((150, 300, 600, 1200, 2400))


@pytest.fixture
def video():
    return Video(
        video_id="vid_test_00001",
        duration_seconds=600.0,
        content_type=ContentType.VOD,
    )


@pytest.fixture
def catalogue(video):
    extra = Video(video_id="vid_test_00002", duration_seconds=1200.0)
    return Catalogue("test", [video, extra])
