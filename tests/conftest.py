"""Shared fixtures.

The ecosystem fixture is session-scoped: generating even a thinned
(6-snapshot) dataset takes a few seconds, and the analyses under test
are read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import ContentType
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.synthesis.generator import generate_default_dataset


@pytest.fixture(scope="session")
def eco():
    """A small but fully featured synthetic ecosystem build."""
    return generate_default_dataset(seed=2018, snapshot_limit=6)


@pytest.fixture(scope="session")
def dataset(eco):
    return eco.dataset


@pytest.fixture(scope="session")
def latest(dataset):
    return dataset.latest()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def ladder():
    """A 5-rung h264 ladder following the HLS guidelines."""
    return BitrateLadder.from_bitrates((150, 300, 600, 1200, 2400))


@pytest.fixture
def video():
    return Video(
        video_id="vid_test_00001",
        duration_seconds=600.0,
        content_type=ContentType.VOD,
    )


@pytest.fixture
def catalogue(video):
    extra = Video(video_id="vid_test_00002", duration_seconds=1200.0)
    return Catalogue("test", [video, extra])
