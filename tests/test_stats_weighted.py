"""Weighted summary statistics (repro.stats.weighted)."""

import pytest

from repro.stats.weighted import (
    weighted_mean,
    weighted_percentile,
    weighted_share,
)


class TestWeightedMean:
    def test_unweighted_is_plain_mean(self):
        assert weighted_mean([1, 2, 3]) == 2.0

    def test_weights_shift_the_mean(self):
        assert weighted_mean([1, 3], weights=[3, 1]) == 1.5

    def test_zero_weight_values_ignored(self):
        assert weighted_mean([1, 100], weights=[1, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], weights=[1])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], weights=[1, -2])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], weights=[0, 0])


class TestWeightedPercentile:
    def test_median_unweighted(self):
        assert weighted_percentile([1, 2, 3], 50) == 2.0

    def test_weight_as_repetition(self):
        # [1,1,1,10] -> median 1
        assert weighted_percentile([1, 10], 50, weights=[3, 1]) == 1.0

    def test_extremes(self):
        values = [5, 1, 9]
        assert weighted_percentile(values, 100) == 9.0
        assert weighted_percentile(values, 0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentile([1], 101)


class TestWeightedShare:
    def test_unweighted_share(self):
        assert weighted_share([True, False, False, True]) == 0.5

    def test_view_hour_weighting(self):
        # The §4.4 pattern: two small single-protocol publishers, one
        # giant multi-protocol publisher.
        flags = [False, False, True]
        weights = [5.0, 5.0, 90.0]
        assert weighted_share(flags, weights) == 0.9

    def test_all_true(self):
        assert weighted_share([True, True], weights=[1, 2]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_share([])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_share([True], weights=[0])
