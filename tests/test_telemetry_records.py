"""View records and their serialization (repro.telemetry.records)."""

from datetime import date

import pytest

from repro.constants import ConnectionType, ContentType
from repro.errors import DatasetError
from repro.telemetry.records import ViewRecord


def make_record(**overrides):
    kwargs = dict(
        snapshot=date(2018, 3, 12),
        publisher_id="pub_001",
        url="http://a.cdn.example.net/vid_x/master.m3u8",
        device_model="roku-ultra",
        os_name="roku",
        cdn_names=("A",),
        bitrate_ladder_kbps=(150.0, 600.0, 2400.0),
        view_duration_hours=0.4,
        avg_bitrate_kbps=1800.0,
        rebuffer_ratio=0.01,
        content_type=ContentType.VOD,
        video_id="vid_x",
        weight=25.0,
        sdk_name="RokuSDK",
        sdk_version="8.1",
    )
    kwargs.update(overrides)
    return ViewRecord(**kwargs)


class TestDerivedProperties:
    def test_view_hours_is_weight_times_duration(self):
        record = make_record(weight=25.0, view_duration_hours=0.4)
        assert record.view_hours == pytest.approx(10.0)

    def test_views_equals_weight(self):
        assert make_record(weight=7).views == 7.0

    def test_app_view_flag(self):
        assert make_record().is_app_view
        browser = make_record(
            sdk_name=None, sdk_version=None, user_agent="Mozilla/5.0"
        )
        assert not browser.is_app_view


class TestValidation:
    def test_missing_publisher(self):
        with pytest.raises(DatasetError):
            make_record(publisher_id="")

    def test_missing_url(self):
        with pytest.raises(DatasetError):
            make_record(url="")

    def test_missing_cdns(self):
        with pytest.raises(DatasetError):
            make_record(cdn_names=())

    def test_negative_duration(self):
        with pytest.raises(DatasetError):
            make_record(view_duration_hours=-0.1)

    def test_nonpositive_weight(self):
        with pytest.raises(DatasetError):
            make_record(weight=0)

    def test_rebuffer_ratio_bounds(self):
        with pytest.raises(DatasetError):
            make_record(rebuffer_ratio=1.5)
        with pytest.raises(DatasetError):
            make_record(rebuffer_ratio=-0.1)

    def test_negative_bitrate(self):
        with pytest.raises(DatasetError):
            make_record(avg_bitrate_kbps=-1)


class TestSerialization:
    def test_json_roundtrip(self):
        record = make_record(
            is_syndicated=True,
            owner_id="pub_000",
            isp="X",
            geo="CA",
            connection=ConnectionType.CELLULAR_4G,
        )
        assert ViewRecord.from_json(record.to_json()) == record

    def test_json_is_single_line(self):
        assert "\n" not in make_record().to_json()

    def test_enum_fields_serialized_as_values(self):
        data = make_record().to_json_dict()
        assert data["content_type"] == "vod"
        assert data["connection"] == "wifi"
        assert data["snapshot"] == "2018-03-12"

    def test_default_weight_on_load(self):
        data = make_record().to_json_dict()
        del data["weight"]
        assert ViewRecord.from_json_dict(data).weight == 1.0

    def test_malformed_json_rejected(self):
        with pytest.raises(DatasetError):
            ViewRecord.from_json("{not json")

    def test_missing_field_rejected(self):
        data = make_record().to_json_dict()
        del data["url"]
        with pytest.raises(DatasetError):
            ViewRecord.from_json_dict(data)

    def test_bad_enum_value_rejected(self):
        data = make_record().to_json_dict()
        data["content_type"] = "broadcast"
        with pytest.raises(DatasetError):
            ViewRecord.from_json_dict(data)

    def test_ladder_parsed_to_floats(self):
        data = make_record().to_json_dict()
        record = ViewRecord.from_json_dict(data)
        assert record.bitrate_ladder_kbps == (150.0, 600.0, 2400.0)
