"""Network path model (repro.delivery.network)."""

import numpy as np
import pytest

from repro.delivery.network import (
    IspProfile,
    NetworkPath,
    default_isp_profiles,
)
from repro.errors import DeliveryError


def _path(**overrides):
    kwargs = dict(
        isp="X", cdn_name="A", median_kbps=5000.0, sigma=0.5,
        within_session_cv=0.25,
    )
    kwargs.update(overrides)
    return NetworkPath(**kwargs)


class TestSessionMeans:
    def test_median_recovered(self, rng):
        path = _path()
        means = [path.sample_session_mean(rng) for _ in range(4000)]
        assert np.median(means) == pytest.approx(5000, rel=0.08)

    def test_zero_sigma_is_deterministic(self, rng):
        path = _path(sigma=0.0)
        assert path.sample_session_mean(rng) == pytest.approx(5000)

    def test_validation(self):
        with pytest.raises(DeliveryError):
            _path(median_kbps=0)
        with pytest.raises(DeliveryError):
            _path(sigma=-1)


class TestChunkThroughputs:
    def test_mean_preserved(self, rng):
        path = _path()
        chunks = path.sample_chunk_throughputs(4000, 5000, rng)
        assert chunks.mean() == pytest.approx(4000, rel=0.05)

    def test_zero_cv_constant(self, rng):
        path = _path(within_session_cv=0.0)
        chunks = path.sample_chunk_throughputs(4000, 10, rng)
        assert np.allclose(chunks, 4000)

    def test_chunk_count(self, rng):
        assert _path().sample_chunk_throughputs(4000, 17, rng).shape == (17,)

    def test_validation(self, rng):
        with pytest.raises(DeliveryError):
            _path().sample_chunk_throughputs(0, 10, rng)
        with pytest.raises(DeliveryError):
            _path().sample_chunk_throughputs(1000, 0, rng)


class TestOutages:
    def test_outages_reduce_mean(self, rng):
        quiet = _path()
        stormy = _path(outage_prob=0.2, outage_factor=0.1)
        calm_chunks = quiet.sample_chunk_throughputs(4000, 2000, rng)
        storm_chunks = stormy.sample_chunk_throughputs(4000, 2000, rng)
        assert storm_chunks.mean() < calm_chunks.mean()

    def test_outage_chunks_are_collapsed(self, rng):
        path = _path(
            within_session_cv=0.0, outage_prob=0.3, outage_factor=0.1
        )
        chunks = path.sample_chunk_throughputs(4000, 500, rng)
        values = set(np.round(chunks, 3))
        assert values == {400.0, 4000.0}

    def test_episodes_are_bursty(self, rng):
        path = _path(
            within_session_cv=0.0,
            outage_prob=0.02,
            outage_factor=0.1,
            outage_mean_chunks=10.0,
        )
        chunks = path.sample_chunk_throughputs(4000, 5000, rng)
        congested = chunks < 1000
        # Count runs of congestion; mean run length should be well
        # above 1 (iid outages would give ~1).
        runs = []
        current = 0
        for flag in congested:
            if flag:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs and float(np.mean(runs)) > 3.0

    def test_validation(self):
        with pytest.raises(DeliveryError):
            _path(outage_prob=1.0)
        with pytest.raises(DeliveryError):
            _path(outage_factor=0.0)
        with pytest.raises(DeliveryError):
            _path(outage_prob=0.1, outage_mean_chunks=0.5)


class TestIspProfiles:
    def test_default_profiles_cover_qoe_combos(self):
        profiles = default_isp_profiles()
        assert profiles["X"].path_to("A").cdn_name == "A"
        assert profiles["Y"].path_to("B").cdn_name == "B"

    def test_missing_path_raises(self):
        profiles = default_isp_profiles()
        with pytest.raises(DeliveryError):
            profiles["X"].path_to("Z")

    def test_paths_have_congestion_tail(self):
        # The Fig 16 mechanism requires a non-trivial outage process.
        for profile in default_isp_profiles().values():
            for path in profile.paths.values():
                assert path.outage_prob > 0
