"""Property-based tests for the statistical primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bucketing import DecadeBuckets
from repro.stats.cdf import ECDF
from repro.stats.regression import fit_loglog
from repro.stats.weighted import weighted_mean, weighted_percentile

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)
weights = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestEcdfProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_cdf_monotone_and_bounded(self, values):
        cdf = ECDF(values)
        xs = sorted(values)
        evaluations = [cdf(x) for x in xs]
        assert all(0.0 <= f <= 1.0 for f in evaluations)
        assert evaluations == sorted(evaluations)
        assert cdf(xs[-1]) == pytest.approx(1.0)

    @given(st.lists(finite_floats, min_size=1, max_size=40))
    def test_quantile_inverts_cdf(self, values):
        cdf = ECDF(values)
        for q in (0.1, 0.5, 0.9, 1.0):
            assert cdf(cdf.quantile(q)) >= q - 1e-12

    @given(
        st.lists(
            st.tuples(finite_floats, weights), min_size=1, max_size=40
        )
    )
    def test_weighting_equivalent_to_integer_repetition(self, pairs):
        values = [v for v, _ in pairs]
        int_weights = [max(1, int(w) % 7) for _, w in pairs]
        weighted = ECDF(values, weights=int_weights)
        repeated = ECDF(
            [v for v, k in zip(values, int_weights) for _ in range(k)]
        )
        for v in values:
            assert weighted(v) == pytest.approx(repeated(v))

    @given(st.lists(finite_floats, min_size=1, max_size=40), finite_floats)
    def test_survival_complements(self, values, x):
        cdf = ECDF(values)
        assert cdf(x) + cdf.survival(x) == pytest.approx(1.0)


class TestWeightedProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_mean_within_range(self, values):
        mean = weighted_mean(values)
        slack = 1e-9 * max(abs(v) for v in values) + 1e-9
        assert min(values) - slack <= mean <= max(values) + slack

    @given(
        st.lists(
            st.tuples(finite_floats, weights), min_size=1, max_size=50
        )
    )
    def test_weighted_mean_scale_invariant_weights(self, pairs):
        values = [v for v, _ in pairs]
        wts = [w for _, w in pairs]
        scaled = [w * 7.5 for w in wts]
        assert weighted_mean(values, wts) == pytest.approx(
            weighted_mean(values, scaled), rel=1e-9, abs=1e-6
        )

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_percentiles_monotone(self, values):
        qs = [0, 25, 50, 75, 100]
        results = [weighted_percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestRegressionProperties:
    @given(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    def test_exact_power_laws_recovered(self, slope, scale):
        xs = [1.0, 10.0, 100.0, 1e3, 1e4]
        ys = [scale * x**slope for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.per_decade_factor == pytest.approx(10**slope, rel=1e-6)

    @given(st.lists(positive_floats, min_size=3, max_size=30))
    def test_slope_invariant_to_y_scaling(self, ys):
        xs = list(np.logspace(0, 3, len(ys)))
        try:
            base = fit_loglog(xs, ys)
        except ValueError:
            return  # degenerate draw (identical x after rounding)
        scaled = fit_loglog(xs, [y * 123.0 for y in ys])
        assert scaled.slope == pytest.approx(base.slope, abs=1e-9)


class TestBucketProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    def test_every_value_lands_in_exactly_one_bucket(self, values):
        buckets = DecadeBuckets(base=100.0, n_buckets=7)
        for i, value in enumerate(values):
            buckets.add(f"p{i}", 1, value)
        assert sum(buckets.publisher_counts()) == len(values)
        assert sum(buckets.publisher_share()) == pytest.approx(100.0)

    @given(st.floats(min_value=1e-6, max_value=1e12, allow_nan=False))
    def test_bucket_edges_consistent_with_labels(self, value):
        buckets = DecadeBuckets(base=100.0, n_buckets=7)
        idx = buckets.bucket_index(value)
        if idx == 0:
            assert value <= 100.0 * (1 + 1e-9)
        elif idx < 6:
            assert 100.0 * 10 ** (idx - 1) < value * (1 + 1e-9)
            assert value <= 100.0 * 10**idx * (1 + 1e-9)
