"""Manifest writers and parsers for all four protocols."""

import pytest

from repro.constants import ContentType, Protocol
from repro.entities.video import Video
from repro.errors import ManifestError, ManifestParseError
from repro.packaging.manifest import (
    DASHParser,
    DASHWriter,
    HDSParser,
    HDSWriter,
    HLSParser,
    HLSWriter,
    MSSParser,
    MSSWriter,
    manifest_writer_for,
    parser_for,
)

BASE_URL = "http://cdn-a.example.net"


class TestHLS:
    @pytest.fixture
    def writer(self):
        return HLSWriter(chunk_duration_seconds=6.0)

    def test_master_contains_all_variants(self, writer, video, ladder):
        master = writer.render(video, ladder, BASE_URL)
        assert master.startswith("#EXTM3U")
        assert master.count("#EXT-X-STREAM-INF") == len(ladder)

    def test_master_roundtrip_bitrates(self, writer, video, ladder):
        info = HLSParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.protocol is Protocol.HLS
        assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)
        assert info.video_id == video.video_id

    def test_media_playlist_segment_count(self, writer, video, ladder):
        media = writer.render_media(video, ladder[0], BASE_URL)
        info = HLSParser().parse(media)
        # 600 s at 6 s chunks = 100 segments.
        assert len(info.chunk_urls) == 100
        assert info.chunk_duration_seconds == pytest.approx(6.0)

    def test_media_playlist_has_endlist(self, writer, video, ladder):
        media = writer.render_media(video, ladder[0], BASE_URL)
        assert media.rstrip().endswith("#EXT-X-ENDLIST")

    def test_final_segment_truncated(self, writer, ladder):
        video = Video(video_id="v", duration_seconds=9.0)
        media = writer.render_media(video, ladder[0], BASE_URL)
        assert "#EXTINF:3.000," in media

    def test_bundle_merges_master_and_media(self, writer, video, ladder):
        master = writer.render(video, ladder, BASE_URL)
        medias = [
            writer.render_media(video, rendition, BASE_URL)
            for rendition in ladder
        ]
        info = HLSParser().parse_bundle(master, medias)
        assert len(info.chunk_urls) == 100 * len(ladder)
        assert len(info.bitrates_kbps) == len(ladder)

    def test_parse_rejects_non_playlist(self):
        with pytest.raises(ManifestParseError):
            HLSParser().parse("<xml/>")

    def test_parse_rejects_variantless_master(self):
        with pytest.raises(ManifestParseError):
            HLSParser().parse("#EXTM3U\n#EXT-X-VERSION:4\n")

    def test_manifest_url_uses_m3u8(self, writer, video):
        assert writer.manifest_url(video, BASE_URL).endswith("master.m3u8")


class TestDASH:
    @pytest.fixture
    def writer(self):
        return DASHWriter(chunk_duration_seconds=4.0)

    def test_roundtrip(self, writer, video, ladder):
        info = DASHParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.protocol is Protocol.DASH
        assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)
        assert info.video_id == video.video_id
        assert info.chunk_duration_seconds == pytest.approx(4.0)

    def test_audio_adaptation_set(self, writer, video, ladder):
        info = DASHParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.audio_bitrates_kbps == pytest.approx((96.0,))

    def test_chunk_urls_enumerate_segments(self, writer, video, ladder):
        info = DASHParser().parse(writer.render(video, ladder, BASE_URL))
        # 600 s / 4 s = 150 per rendition.
        assert len(info.chunk_urls) == 150 * len(ladder)
        assert all(url.endswith(".m4s") for url in info.chunk_urls)

    def test_parse_rejects_non_xml(self):
        with pytest.raises(ManifestParseError):
            DASHParser().parse("#EXTM3U")

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(ManifestParseError):
            DASHParser().parse("<foo/>")

    def test_manifest_url_uses_mpd(self, writer, video):
        assert writer.manifest_url(video, BASE_URL).endswith("master.mpd")


class TestMSS:
    @pytest.fixture
    def writer(self):
        return MSSWriter(chunk_duration_seconds=2.0)

    def test_roundtrip(self, writer, video, ladder):
        info = MSSParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.protocol is Protocol.MSS
        assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)
        assert info.chunk_duration_seconds == pytest.approx(2.0)

    def test_manifest_url_matches_table1_shape(self, writer, video):
        url = writer.manifest_url(video, BASE_URL)
        assert url.endswith(".ism/manifest")

    def test_live_uses_isml(self, writer):
        live = Video(
            video_id="live1",
            duration_seconds=60,
            content_type=ContentType.LIVE,
        )
        assert ".isml/" in writer.manifest_url(live, BASE_URL)

    def test_fragment_urls_use_quality_levels(self, writer, video, ladder):
        info = MSSParser().parse(writer.render(video, ladder, BASE_URL))
        assert any("QualityLevels(" in url for url in info.chunk_urls)

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(ManifestParseError):
            MSSParser().parse("<MPD/>")


class TestHDS:
    @pytest.fixture
    def writer(self):
        return HDSWriter(chunk_duration_seconds=6.0)

    def test_roundtrip(self, writer, video, ladder):
        info = HDSParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.protocol is Protocol.HDS
        assert info.bitrates_kbps == pytest.approx(ladder.bitrates_kbps)
        assert info.video_id == video.video_id

    def test_bootstrap_carries_chunk_duration(self, writer, video, ladder):
        info = HDSParser().parse(writer.render(video, ladder, BASE_URL))
        assert info.chunk_duration_seconds == pytest.approx(6.0)

    def test_fragment_urls(self, writer, video, ladder):
        info = HDSParser().parse(writer.render(video, ladder, BASE_URL))
        assert len(info.chunk_urls) == 100 * len(ladder)
        assert all("Frag" in url for url in info.chunk_urls)

    def test_manifest_url_uses_f4m(self, writer, video):
        assert writer.manifest_url(video, BASE_URL).endswith("master.f4m")

    def test_parse_rejects_garbled_bootstrap(self, writer, video, ladder):
        text = writer.render(video, ladder, BASE_URL)
        garbled = text.replace("abst", "xxxx", 1)
        # bootstrap payload is base64 of 'abst:...'; replace post-encode
        import base64, re

        payload = base64.b64encode(b"nope").decode()
        garbled = re.sub(
            r'(bootstrapInfoId="bootstrap1" /)',
            r"\1",
            text,
        )
        broken = re.sub(
            r">[A-Za-z0-9+/=]+</",
            f">{payload}</",
            text,
            count=1,
        )
        with pytest.raises(ManifestParseError):
            HDSParser().parse(broken)


class TestFactories:
    @pytest.mark.parametrize(
        "protocol", [Protocol.HLS, Protocol.DASH, Protocol.MSS, Protocol.HDS]
    )
    def test_writer_parser_pairing(self, protocol, video, ladder):
        writer = manifest_writer_for(protocol, chunk_duration_seconds=6.0)
        parser = parser_for(protocol)
        info = parser.parse(writer.render(video, ladder, BASE_URL))
        assert info.protocol is protocol

    def test_rtmp_has_no_manifest(self):
        with pytest.raises(ManifestError):
            manifest_writer_for(Protocol.RTMP)
        with pytest.raises(ManifestError):
            parser_for(Protocol.RTMP)

    def test_bad_chunk_duration(self):
        with pytest.raises(ManifestError):
            manifest_writer_for(Protocol.HLS, chunk_duration_seconds=0)
