"""Serial-vs-parallel parity for the figure suite, testkit matrix,
and the CLI's shared ``--jobs`` flag.

These are the end-to-end halves of the :mod:`repro.parallel`
contract: the unit layer (tests/test_parallel_layer.py) proves the
pool machinery is ordered and deterministic; this module proves the
actual shipped surfaces — ``repro figures --run --jobs N`` and
``repro testkit run --jobs N`` — emit byte-identical artifacts at any
worker count.
"""

import pytest

from repro import figures, obs
from repro.cli import main
from repro.synthesis.calibration import EcosystemConfig
from repro.testkit.report import run_matrix

pytestmark = pytest.mark.perf

SMALL = EcosystemConfig(seed=2018, snapshot_limit=2, n_publishers=20)

#: A representative figure slice: one per backing analysis family,
#: kept small so the suite parity check stays minutes-not-hours.
FIGURE_SLICE = ["T1", "F2a", "F11b", "F17", "S44"]


class TestFigureSuiteParallel:
    def test_suite_parallel_matches_serial(self):
        serial = figures.run_suite(SMALL, ids=FIGURE_SLICE, jobs=1)
        pooled = figures.run_suite(SMALL, ids=FIGURE_SLICE, jobs=2)
        # repr-level comparison: a handful of figure cells are NaN
        # (undefined shares on thinned builds), and NaN breaks dict
        # equality exactly when values cross the pickle boundary.  The
        # shipped artifact is the rendered rows, so compare that form.
        assert repr(serial) == repr(pooled)
        assert list(serial) == FIGURE_SLICE

    def test_suite_defaults_to_all_figures(self):
        suite = figures.run_suite(SMALL, ids=["T1"], jobs=1)
        assert set(suite) == {"T1"}

    def test_unknown_ids_rejected(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            figures.run_suite(SMALL, ids=["T1", "F99"], jobs=1)


@pytest.mark.testkit
class TestMatrixParallel:
    def test_matrix_parallel_report_matches_serial(self):
        serial = run_matrix(scenarios=["tiny"], jobs=1)
        pooled = run_matrix(scenarios=["tiny"], jobs=2)
        assert pooled.to_json() == serial.to_json()
        assert pooled.ok == serial.ok

    @pytest.mark.obs
    def test_matrix_parallel_counters_match_serial(self):
        obs.configure(enabled=True)
        try:
            obs.metrics().reset()
            serial = run_matrix(scenarios=["tiny"], jobs=1)
            serial_snapshot = obs.metrics().snapshot()
            obs.metrics().reset()
            pooled = run_matrix(scenarios=["tiny"], jobs=2)
            pooled_snapshot = obs.metrics().snapshot()
        finally:
            obs.configure(enabled=False)
        assert pooled.to_json() == serial.to_json()
        assert pooled_snapshot["counters"] == serial_snapshot["counters"]


class TestCliJobsFlag:
    @pytest.mark.parametrize(
        "argv",
        [
            ["figures", "--jobs", "0"],
            ["figures", "--jobs", "-2"],
            ["figures", "--jobs", "two"],
            ["generate", "--out", "x.jsonl", "--jobs", "0"],
            ["testkit", "run", "--jobs", "0"],
        ],
    )
    def test_bad_jobs_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "jobs" in capsys.readouterr().err

    def test_figures_listing_still_default(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "F18" in out and "T1" in out
        assert "==" not in out

    def test_figures_run_smoke(self, capsys):
        code = main(
            [
                "figures",
                "--run",
                "--snapshots",
                "2",
                "--publishers",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== T1:" in out and "== F18:" in out

    def test_figures_jobs_implies_run(self, capsys):
        code = main(
            [
                "figures",
                "--jobs",
                "1",
                "--snapshots",
                "2",
                "--publishers",
                "20",
            ]
        )
        assert code == 0
        assert "== T1:" in capsys.readouterr().out
