"""Resilience primitives: retry/backoff, circuit breaker, deadline."""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    RetryExhaustedError,
    TransportError,
)
from repro.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitState,
    Deadline,
    retry_with_backoff,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBackoffPolicy:
    def test_deterministic_schedule_without_jitter(self):
        policy = BackoffPolicy(
            retries=4, base_delay=1.0, multiplier=2.0, max_delay=100.0,
            jitter=0.0,
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0]

    def test_schedule_caps_at_max_delay(self):
        policy = BackoffPolicy(
            retries=6, base_delay=1.0, multiplier=2.0, max_delay=5.0,
            jitter=0.0,
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0]

    def test_jitter_bounds_and_seed_determinism(self):
        policy = BackoffPolicy(
            retries=50, base_delay=1.0, multiplier=1.0, max_delay=1.0,
            jitter=0.5,
        )
        schedule = policy.schedule(seed=7)
        assert schedule == policy.schedule(seed=7)
        assert all(0.5 <= d <= 1.0 for d in schedule)
        assert schedule != policy.schedule(seed=8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ResilienceError):
            BackoffPolicy(retries=-1)
        with pytest.raises(ResilienceError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ResilienceError):
            BackoffPolicy(jitter=1.5)


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransportError("boom")
            return "ok"

        result = retry_with_backoff(
            flaky, retry_on=(TransportError,), seed=0
        )
        assert result == "ok"
        assert len(calls) == 3

    def test_exhaustion_raises_typed_error_with_cause(self):
        def always_fails():
            raise TransportError("down")

        policy = BackoffPolicy(retries=3, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            retry_with_backoff(
                always_fails, policy=policy, retry_on=(TransportError,)
            )
        assert info.value.attempts == 4
        assert isinstance(info.value.last_error, TransportError)
        assert isinstance(info.value.__cause__, TransportError)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong_error():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_with_backoff(wrong_error, retry_on=(TransportError,))
        assert len(calls) == 1

    def test_sleeper_receives_policy_schedule(self):
        waits = []
        attempts = []

        def always_fails():
            attempts.append(1)
            raise TransportError("down")

        policy = BackoffPolicy(
            retries=3, base_delay=1.0, multiplier=2.0, max_delay=10.0,
            jitter=0.0,
        )
        with pytest.raises(RetryExhaustedError):
            retry_with_backoff(
                always_fails, policy=policy, retry_on=(TransportError,),
                sleep=waits.append,
            )
        assert waits == [1.0, 2.0, 4.0]
        assert len(attempts) == 4

    def test_deadline_aborts_retry_loop(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)

        def fails_and_burns_time():
            clock.advance(6.0)
            raise TransportError("slow failure")

        with pytest.raises(DeadlineExceededError):
            retry_with_backoff(
                fails_and_burns_time,
                policy=BackoffPolicy(retries=10, jitter=0.0),
                retry_on=(TransportError,),
                deadline=deadline,
            )


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert breaker.state is CircuitState.CLOSED
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_open_circuit_rejects_calls(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        with pytest.raises(TransportError):
            breaker.call(lambda: (_ for _ in ()).throw(TransportError("x")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.rejected_calls == 1

    def test_half_open_probe_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.advance(31.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.call(lambda: "probe ok") == "probe ok"
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, recovery_timeout=30.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_failure()  # single probe failure re-opens
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(31.0)
        # Inspecting state must not claim the probe slot.
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.state is CircuitState.HALF_OPEN
        # First allow() claims the single probe; concurrent callers in
        # the same half-open window are rejected.
        assert breaker.allow()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.state is CircuitState.HALF_OPEN

    def test_probe_slot_refreshes_each_half_open_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed: back to OPEN
        assert breaker.state is CircuitState.OPEN
        clock.advance(31.0)
        # A fresh half-open window must offer a fresh probe slot.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        # Closed again: allow() is unrestricted.
        assert breaker.allow()
        assert breaker.allow()


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired
        clock.advance(5.1)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("unit test")

    def test_negative_budget_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(-1.0)
