"""The DRM pipeline stage (repro.packaging.drm).

§2: DRM is orthogonal to transport TLS; the dataset had no DRM
analytics, so this stage only has to be *internally* coherent —
encrypt/decrypt as an involution, per-title keys, license scoping.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackagingError
from repro.packaging.drm import DrmLicense, DrmScheme, DrmWrapper

video_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=24
)
payloads = st.binary(min_size=0, max_size=4096)
schemes = st.sampled_from(
    [DrmScheme.FAIRPLAY, DrmScheme.WIDEVINE, DrmScheme.PLAYREADY]
)


class TestWrapperConstruction:
    def test_none_scheme_rejected(self):
        with pytest.raises(PackagingError, match="no wrapper"):
            DrmWrapper(DrmScheme.NONE)

    @given(scheme=schemes)
    @settings(max_examples=10)
    def test_real_schemes_accepted(self, scheme):
        assert DrmWrapper(scheme).scheme is scheme


class TestEncryption:
    @given(scheme=schemes, video_id=video_ids, payload=payloads)
    @settings(max_examples=80)
    def test_decrypt_inverts_encrypt(self, scheme, video_id, payload):
        wrapper = DrmWrapper(scheme)
        ciphertext = wrapper.encrypt(video_id, payload)
        assert len(ciphertext) == len(payload)
        assert wrapper.decrypt(video_id, ciphertext) == payload

    def test_content_key_is_a_sha256_digest(self):
        key = DrmWrapper(DrmScheme.WIDEVINE).content_key("vid_1")
        assert isinstance(key, bytes) and len(key) == 32

    def test_keys_differ_per_title_scheme_and_secret(self):
        # Encrypting 32 zero bytes exposes the keystream directly, so
        # key separation is observable at the payload level.
        zeros = bytes(32)
        widevine = DrmWrapper(DrmScheme.WIDEVINE)
        assert widevine.encrypt("vid_a", zeros) != widevine.encrypt(
            "vid_b", zeros
        )
        assert widevine.encrypt("vid_a", zeros) != DrmWrapper(
            DrmScheme.PLAYREADY
        ).encrypt("vid_a", zeros)
        assert widevine.encrypt("vid_a", zeros) != DrmWrapper(
            DrmScheme.WIDEVINE, secret="rotated"
        ).encrypt("vid_a", zeros)

    def test_decrypting_with_the_wrong_title_garbles(self):
        wrapper = DrmWrapper(DrmScheme.FAIRPLAY)
        ciphertext = wrapper.encrypt("vid_a", b"chunk payload bytes")
        assert wrapper.decrypt("vid_b", ciphertext) != b"chunk payload bytes"

    def test_key_derivation_is_deterministic_across_wrappers(self):
        a = DrmWrapper(DrmScheme.PLAYREADY)
        b = DrmWrapper(DrmScheme.PLAYREADY)
        assert a.content_key("vid_9") == b.content_key("vid_9")


class TestLicensing:
    def test_empty_device_classes_rejected(self):
        with pytest.raises(PackagingError, match="device class"):
            DrmWrapper(DrmScheme.FAIRPLAY).issue_license(
                "vid_1", frozenset()
            )

    @given(scheme=schemes, video_id=video_ids)
    @settings(max_examples=40)
    def test_license_scoped_to_video_and_device(self, scheme, video_id):
        wrapper = DrmWrapper(scheme)
        license_ = wrapper.issue_license(
            video_id, frozenset({"mobile", "tv"})
        )
        assert isinstance(license_, DrmLicense)
        assert license_.scheme is scheme
        assert license_.authorizes(video_id, "mobile")
        assert license_.authorizes(video_id, "tv")
        assert not license_.authorizes(video_id, "desktop")
        assert not license_.authorizes(video_id + "x", "mobile")

    def test_key_id_is_stable_and_short(self):
        wrapper = DrmWrapper(DrmScheme.WIDEVINE)
        first = wrapper.issue_license("vid_1", frozenset({"tv"}))
        again = wrapper.issue_license("vid_1", frozenset({"mobile"}))
        assert first.key_id == again.key_id  # per-title, not per-license
        assert len(first.key_id) == 16
        int(first.key_id, 16)  # hex-encoded
        other = wrapper.issue_license("vid_2", frozenset({"tv"}))
        assert other.key_id != first.key_id
