"""Origin storage and dedup (repro.delivery.origin) — the Fig 18 engine."""

import pytest

from repro.delivery.origin import OriginServer, StoredRendition
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.errors import DeliveryError


@pytest.fixture
def small_catalogue():
    return Catalogue(
        "cat",
        [Video("v1", 1000.0), Video("v2", 2000.0)],
    )


class TestPush:
    def test_push_returns_bytes_added(self, small_catalogue):
        origin = OriginServer("A")
        ladder = BitrateLadder.from_bitrates((800,))
        added = origin.push_catalogue("pub", small_catalogue, ladder)
        # 800 kbps = 1e5 B/s over 3000 s total.
        assert added == pytest.approx(3e8)
        assert origin.total_bytes() == pytest.approx(3e8)

    def test_double_push_rejected(self, small_catalogue):
        origin = OriginServer("A")
        ladder = BitrateLadder.from_bitrates((800,))
        origin.push_catalogue("pub", small_catalogue, ladder)
        with pytest.raises(DeliveryError):
            origin.push_catalogue("pub", small_catalogue, ladder)

    def test_double_push_leaves_origin_unchanged(self, small_catalogue):
        origin = OriginServer("A")
        ladder = BitrateLadder.from_bitrates((800,))
        origin.push_catalogue("pub", small_catalogue, ladder)
        before = origin.total_bytes()
        with pytest.raises(DeliveryError):
            origin.push_catalogue("pub", small_catalogue, ladder)
        assert origin.total_bytes() == before

    def test_multiple_publishers_tracked(self, small_catalogue):
        origin = OriginServer("A")
        origin.push_catalogue(
            "p1", small_catalogue, BitrateLadder.from_bitrates((500,))
        )
        origin.push_catalogue(
            "p2", small_catalogue, BitrateLadder.from_bitrates((520,))
        )
        assert origin.publishers == {"p1", "p2"}

    def test_empty_name_rejected(self):
        with pytest.raises(DeliveryError):
            OriginServer("")


class TestDedup:
    def _origin_with_two_copies(self, small_catalogue, rates_a, rates_b):
        origin = OriginServer("A")
        origin.push_catalogue(
            "p1", small_catalogue, BitrateLadder.from_bitrates(rates_a)
        )
        origin.push_catalogue(
            "p2", small_catalogue, BitrateLadder.from_bitrates(rates_b)
        )
        return origin

    def test_exact_duplicates_merge_at_zero_tolerance(self, small_catalogue):
        origin = self._origin_with_two_copies(
            small_catalogue, (800,), (800.0,)
        )
        total = origin.total_bytes()
        assert origin.deduplicated_bytes(0.0) == pytest.approx(total / 2)

    def test_near_duplicates_merge_within_tolerance(self, small_catalogue):
        origin = self._origin_with_two_copies(small_catalogue, (800,), (830,))
        saved, pct = origin.savings(0.05)
        # min(800, 830) worth of bytes per video is removed.
        assert pct == pytest.approx(100 * 800 / 1630, rel=1e-6)

    def test_no_merge_outside_tolerance(self, small_catalogue):
        origin = self._origin_with_two_copies(small_catalogue, (800,), (900,))
        saved, pct = origin.savings(0.05)
        assert saved == 0.0
        assert pct == 0.0

    def test_dedup_keeps_largest_copy(self, small_catalogue):
        origin = self._origin_with_two_copies(small_catalogue, (800,), (830,))
        kept = origin.deduplicated_bytes(0.05)
        # kept bytes correspond to the 830 kbps copy.
        total = origin.total_bytes()
        assert kept == pytest.approx(total * 830 / 1630)

    def test_tolerance_monotonicity(self, small_catalogue):
        origin = self._origin_with_two_copies(
            small_catalogue, (800, 1600), (860, 1750)
        )
        pcts = [origin.savings(t)[1] for t in (0.0, 0.05, 0.10, 0.20)]
        assert pcts == sorted(pcts)

    def test_different_videos_never_merge(self):
        origin = OriginServer("A")
        origin.push_catalogue(
            "p1",
            Catalogue("c1", [Video("v1", 1000.0)]),
            BitrateLadder.from_bitrates((800,)),
        )
        origin.push_catalogue(
            "p2",
            Catalogue("c2", [Video("v2", 1000.0)]),
            BitrateLadder.from_bitrates((800,)),
        )
        assert origin.savings(0.10)[0] == 0.0

    def test_negative_tolerance_rejected(self, small_catalogue):
        origin = self._origin_with_two_copies(small_catalogue, (800,), (830,))
        with pytest.raises(DeliveryError):
            origin.deduplicated_bytes(-0.1)

    def test_empty_origin_savings_rejected(self):
        with pytest.raises(DeliveryError):
            OriginServer("A").savings(0.05)


class TestIntegrated:
    def test_integrated_keeps_only_owner_copies(self, small_catalogue):
        origin = OriginServer("A")
        owner_ladder = BitrateLadder.from_bitrates((500, 1000))
        syn_ladder = BitrateLadder.from_bitrates((600, 1200, 2400))
        origin.push_catalogue("owner", small_catalogue, owner_ladder)
        origin.push_catalogue("syn", small_catalogue, syn_ladder)
        kept = origin.integrated_bytes("owner")
        owner_bytes = small_catalogue.storage_bytes(owner_ladder)
        assert kept == pytest.approx(owner_bytes)

    def test_integrated_savings_percentage(self, small_catalogue):
        origin = OriginServer("A")
        origin.push_catalogue(
            "owner", small_catalogue, BitrateLadder.from_bitrates((1000,))
        )
        origin.push_catalogue(
            "syn", small_catalogue, BitrateLadder.from_bitrates((2000,))
        )
        _, pct = origin.integrated_savings("owner")
        assert pct == pytest.approx(100 * 2000 / 3000, rel=1e-6)

    def test_videos_without_owner_copy_fall_back_to_dedup(self):
        origin = OriginServer("A")
        origin.push_catalogue(
            "syn1",
            Catalogue("c", [Video("v9", 1000.0)]),
            BitrateLadder.from_bitrates((800,)),
        )
        origin.push_catalogue(
            "syn2",
            Catalogue("c2", [Video("v9", 1000.0)]),
            BitrateLadder.from_bitrates((800.0,)),
        )
        kept = origin.integrated_bytes("owner-not-present")
        assert kept == pytest.approx(origin.total_bytes() / 2)


class TestStoredRendition:
    def test_validation(self):
        with pytest.raises(DeliveryError):
            StoredRendition("p", "v", 0, 10)
        with pytest.raises(DeliveryError):
            StoredRendition("p", "v", 100, -1)
