"""Protocol detection from URLs — the Table 1 logic."""

import pytest

from repro.constants import Protocol
from repro.errors import ProtocolDetectionError
from repro.packaging.manifest.detect import (
    detect_protocol,
    detect_protocol_or_none,
    extension_for,
    sample_manifest_url,
)


class TestTable1Samples:
    """The exact sample URLs printed in Table 1 of the paper."""

    def test_hls_akamai_sample(self):
        url = "http://foo.akamaihd.net/master.m3u8"
        assert detect_protocol(url) is Protocol.HLS

    def test_dash_limelight_sample(self):
        url = "http://bar.llwnd.net//Z53TiGRzq.mpd"
        assert detect_protocol(url) is Protocol.DASH

    def test_mss_level3_sample(self):
        url = "http://baz.level3.net/56.ism/manifest"
        assert detect_protocol(url) is Protocol.MSS

    def test_hds_aws_sample(self):
        url = "http://qux.aws.com/cache/hds.f4m"
        assert detect_protocol(url) is Protocol.HDS


class TestExtensions:
    def test_m3u_variant(self):
        assert detect_protocol("http://x/y.m3u") is Protocol.HLS

    def test_isml_live_variant(self):
        assert detect_protocol("http://x/y.isml/manifest") is Protocol.MSS

    def test_case_insensitive(self):
        assert detect_protocol("http://x/MASTER.M3U8") is Protocol.HLS

    def test_query_string_ignored(self):
        url = "http://x/v.mpd?token=abc.m3u8"
        assert detect_protocol(url) is Protocol.DASH

    def test_progressive_mp4(self):
        assert detect_protocol("http://x/movie.mp4") is Protocol.PROGRESSIVE

    def test_progressive_flv(self):
        assert detect_protocol("http://x/movie.flv") is Protocol.PROGRESSIVE


class TestRtmpScheme:
    """§3 footnote 5: RTMP is detected from the URL scheme."""

    @pytest.mark.parametrize("scheme", ["rtmp", "rtmps", "rtmpe", "rtmpt"])
    def test_rtmp_schemes(self, scheme):
        assert detect_protocol(f"{scheme}://x/live/ch1") is Protocol.RTMP

    def test_rtmp_beats_extension(self):
        # Scheme is checked first, as the paper's rule implies.
        assert detect_protocol("rtmp://x/live/ch1.mp4") is Protocol.RTMP


class TestUnknowns:
    def test_unknown_extension_raises(self):
        with pytest.raises(ProtocolDetectionError):
            detect_protocol("http://x/page.html")

    def test_or_none_returns_none(self):
        assert detect_protocol_or_none("http://x/page.html") is None
        assert detect_protocol_or_none("") is None

    def test_extensionless_path(self):
        assert detect_protocol_or_none("http://x/watch/12345") is None

    def test_dotfile_component_not_an_extension(self):
        assert detect_protocol_or_none("http://x/.m3u8/foo") is None


class TestInverse:
    @pytest.mark.parametrize(
        "protocol,extension",
        [
            (Protocol.HLS, ".m3u8"),
            (Protocol.DASH, ".mpd"),
            (Protocol.MSS, ".ism"),
            (Protocol.HDS, ".f4m"),
            (Protocol.PROGRESSIVE, ".mp4"),
        ],
    )
    def test_extension_for(self, protocol, extension):
        assert extension_for(protocol) == extension

    def test_rtmp_has_no_extension(self):
        with pytest.raises(ProtocolDetectionError):
            extension_for(Protocol.RTMP)

    @pytest.mark.parametrize(
        "protocol",
        [
            Protocol.HLS,
            Protocol.DASH,
            Protocol.MSS,
            Protocol.HDS,
            Protocol.RTMP,
        ],
    )
    def test_minted_urls_detect_back(self, protocol):
        url = sample_manifest_url(protocol, "vid123", "edge.example.net")
        assert detect_protocol(url) is protocol
