"""The anycast route-instability model (repro.delivery.anycast).

§4.3: route changes sever ongoing TCP connections, but measured change
rates are low enough that anycast CDNs work for video.  These tests pin
the Poisson model's closed forms and check the sampler against them.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delivery.anycast import AnycastRouteModel, RouteChangeEvent
from repro.errors import DeliveryError

rates = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=86_400.0, allow_nan=False)


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(DeliveryError):
            AnycastRouteModel(daily_change_rate=-0.1)

    def test_negative_reconnect_delay_rejected(self):
        with pytest.raises(DeliveryError):
            AnycastRouteModel(reconnect_delay_seconds=-1.0)

    def test_negative_view_rejected_everywhere(self):
        model = AnycastRouteModel()
        with pytest.raises(DeliveryError):
            model.disruption_probability(-1.0)
        with pytest.raises(DeliveryError):
            model.sample_events(-1.0, np.random.default_rng(0))


class TestDisruptionProbability:
    def test_closed_form(self):
        model = AnycastRouteModel(daily_change_rate=0.5)
        t = 7_200.0
        expected = 1.0 - math.exp(-0.5 / 86_400.0 * t)
        assert model.disruption_probability(t) == pytest.approx(expected)

    def test_zero_duration_is_riskless(self):
        assert AnycastRouteModel().disruption_probability(0.0) == 0.0

    def test_zero_rate_is_riskless(self):
        model = AnycastRouteModel(daily_change_rate=0.0)
        assert model.disruption_probability(86_400.0) == 0.0

    @given(rate=rates, t=durations)
    @settings(max_examples=60)
    def test_is_a_probability(self, rate, t):
        p = AnycastRouteModel(daily_change_rate=rate).disruption_probability(t)
        # Closed interval: 1 - e^(-lambda) rounds to exactly 1.0 once
        # lambda is large enough for the exponential to underflow.
        assert 0.0 <= p <= 1.0

    @given(rate=rates, t=durations, extra=durations)
    @settings(max_examples=60)
    def test_monotone_in_duration(self, rate, t, extra):
        model = AnycastRouteModel(daily_change_rate=rate)
        assert model.disruption_probability(
            t + extra
        ) >= model.disruption_probability(t)

    def test_long_views_at_high_rates_are_near_certain_to_break(self):
        # A day-long view under 50 changes/day: effectively certain.
        model = AnycastRouteModel(daily_change_rate=50.0)
        assert model.disruption_probability(86_400.0) > 0.999999


class TestSampling:
    def test_zero_rate_yields_no_events(self):
        model = AnycastRouteModel(daily_change_rate=0.0)
        assert model.sample_events(86_400.0, np.random.default_rng(1)) == []

    def test_events_ordered_and_inside_the_view(self):
        model = AnycastRouteModel(
            daily_change_rate=40.0, reconnect_delay_seconds=3.0
        )
        events = model.sample_events(86_400.0, np.random.default_rng(2))
        assert events, "40 changes/day over a day should produce events"
        times = [e.at_seconds for e in events]
        assert times == sorted(times)
        assert all(0.0 < t < 86_400.0 for t in times)
        assert all(e.reconnect_delay_seconds == 3.0 for e in events)
        assert all(isinstance(e, RouteChangeEvent) for e in events)

    def test_sampled_mean_matches_poisson_rate(self):
        # Over many replications the mean event count must approach
        # rate * t (within a few relative percent at n=400).
        model = AnycastRouteModel(daily_change_rate=24.0)
        rng = np.random.default_rng(3)
        t = 43_200.0  # half a day -> lambda = 12
        counts = [len(model.sample_events(t, rng)) for _ in range(400)]
        assert np.mean(counts) == pytest.approx(12.0, rel=0.15)

    def test_sampling_is_reproducible_from_the_seed(self):
        model = AnycastRouteModel(daily_change_rate=10.0)
        a = model.sample_events(86_400.0, np.random.default_rng(7))
        b = model.sample_events(86_400.0, np.random.default_rng(7))
        assert a == b


class TestExpectedStall:
    def test_closed_form(self):
        model = AnycastRouteModel(
            daily_change_rate=2.0, reconnect_delay_seconds=5.0
        )
        assert model.expected_stall_seconds(86_400.0) == pytest.approx(10.0)

    @given(rate=rates, t=durations)
    @settings(max_examples=60)
    def test_linear_in_duration(self, rate, t):
        model = AnycastRouteModel(daily_change_rate=rate)
        doubled = model.expected_stall_seconds(2.0 * t)
        assert doubled == pytest.approx(
            2.0 * model.expected_stall_seconds(t), rel=1e-9, abs=1e-12
        )

    def test_stall_agrees_with_sampled_events(self):
        model = AnycastRouteModel(
            daily_change_rate=24.0, reconnect_delay_seconds=2.0
        )
        rng = np.random.default_rng(11)
        t = 43_200.0
        stalls = [
            sum(e.reconnect_delay_seconds for e in model.sample_events(t, rng))
            for _ in range(400)
        ]
        assert np.mean(stalls) == pytest.approx(
            model.expected_stall_seconds(t), rel=0.15
        )
