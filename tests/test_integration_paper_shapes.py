"""Integration: does the full pipeline reproduce the paper's shapes?

These tests run the real analyses over the session-scoped synthetic
dataset and assert the *qualitative* findings of the paper — trend
directions, who dominates, rough magnitudes — with generous tolerances
(the dataset is a thinned 6-snapshot build).  EXPERIMENTS.md holds the
exact paper-vs-measured numbers for the full 59-snapshot build.
"""

import pytest

from repro.constants import Platform, Protocol
from repro.core.dimensions import (
    CdnDimension,
    FamilyDimension,
    PlatformDimension,
    ProtocolDimension,
)
from repro.core.counts import count_distribution, share_with_count_above
from repro.core.prevalence import (
    first_last,
    publisher_support_series,
    view_hour_share_series,
)


@pytest.fixture(scope="module")
def protocol_support(dataset):
    return publisher_support_series(dataset, ProtocolDimension(http_only=False))


@pytest.fixture(scope="module")
def protocol_vh(dataset):
    return view_hour_share_series(dataset, ProtocolDimension(http_only=False))


class TestFig2Protocols:
    def test_hls_support_near_universal(self, protocol_support):
        _, latest = first_last(protocol_support, Protocol.HLS)
        assert latest > 85.0  # paper: 91%

    def test_dash_support_grows(self, protocol_support):
        start, end = first_last(protocol_support, Protocol.DASH)
        assert start < 25.0  # paper: 10%
        assert end > 35.0  # paper: 43%

    def test_hds_support_declines(self, protocol_support):
        start, end = first_last(protocol_support, Protocol.HDS)
        assert end < start
        assert end < 30.0  # paper: 19%

    def test_mss_support_steady(self, protocol_support):
        start, end = first_last(protocol_support, Protocol.MSS)
        assert abs(start - end) < 12.0  # paper: ~42% -> ~40%

    def test_dash_view_hours_surge(self, protocol_vh):
        start, end = first_last(protocol_vh, Protocol.DASH)
        assert start < 10.0  # paper: 3%
        assert end > 25.0  # paper: 38%

    def test_hls_and_dash_dominate_latest(self, protocol_vh, dataset):
        latest = protocol_vh[dataset.latest_snapshot()]
        assert latest[Protocol.HLS] + latest[Protocol.DASH] > 70.0

    def test_dash_growth_driven_by_large_publishers(self, dataset, eco):
        excluded = view_hour_share_series(
            dataset,
            ProtocolDimension(http_only=False),
            exclude_publishers=eco.dash_driver_ids,
        )
        _, end = first_last(excluded, Protocol.DASH)
        assert end < 12.0  # paper: <5% once drivers removed

    def test_rtmp_negligible_and_declining(self, protocol_vh):
        start, end = first_last(protocol_vh, Protocol.RTMP)
        assert end < start
        assert end < 0.5  # paper: 0.1%


class TestFig3ProtocolCounts:
    def test_single_protocol_publishers_small_share_of_vh(self, latest):
        rows = count_distribution(latest, ProtocolDimension())
        single = next(r for r in rows if r.count == 1)
        assert single.percent_publishers > 20.0  # paper: 38%
        assert single.percent_view_hours < 15.0  # paper: <10%

    def test_two_protocols_dominate_view_hours(self, latest):
        rows = count_distribution(latest, ProtocolDimension())
        two = next(r for r in rows if r.count == 2)
        assert two.percent_view_hours > 40.0  # paper: ~60%

    def test_multi_protocol_vh_over_90pct(self, latest):
        rows = count_distribution(latest, ProtocolDimension())
        assert share_with_count_above(rows, 1)["percent_view_hours"] > 85.0


class TestFig6and7Platforms:
    def test_browser_view_hours_decline(self, dataset):
        series = view_hour_share_series(dataset, PlatformDimension())
        start, end = first_last(series, Platform.BROWSER)
        assert start > 45.0  # paper: ~60%
        assert end < 35.0  # paper: <25%

    def test_set_top_takes_the_lead(self, dataset):
        series = view_hour_share_series(dataset, PlatformDimension())
        latest = series[dataset.latest_snapshot()]
        assert latest[Platform.SET_TOP] == max(latest.values())

    def test_smart_tv_vh_stays_small(self, dataset):
        series = view_hour_share_series(dataset, PlatformDimension())
        _, end = first_last(series, Platform.SMART_TV)
        assert end < 10.0  # paper: <5%

    def test_set_top_views_lag_view_hours(self, dataset):
        vh = view_hour_share_series(dataset, PlatformDimension())
        views = view_hour_share_series(
            dataset, PlatformDimension(), by_views=True
        )
        latest = dataset.latest_snapshot()
        # Fig 6a vs 6c: ~40% of view-hours but only ~20% of views.
        assert views[latest][Platform.SET_TOP] < 0.75 * vh[latest][
            Platform.SET_TOP
        ]

    def test_mobile_leads_without_top3(self, dataset, eco):
        series = view_hour_share_series(
            dataset, PlatformDimension(), exclude_publishers=eco.top3_ids
        )
        latest = series[dataset.latest_snapshot()]
        # Fig 6b: mobile apps surpass every other platform.
        others = [
            v for k, v in latest.items() if k is not Platform.MOBILE
        ]
        assert latest[Platform.MOBILE] >= max(others) - 6.0

    def test_set_top_and_smart_tv_support_grow(self, dataset):
        series = publisher_support_series(dataset, PlatformDimension())
        for platform in (Platform.SET_TOP, Platform.SMART_TV):
            start, end = first_last(series, platform)
            assert end > start + 20.0  # paper: <20% -> >50%/60%


class TestFig10WithinPlatform:
    def test_html5_overtakes_flash(self, dataset):
        series = view_hour_share_series(
            dataset, FamilyDimension(Platform.BROWSER)
        )
        flash_start, flash_end = first_last(series, "flash")
        html5_start, html5_end = first_last(series, "html5")
        assert flash_end < flash_start  # modest decline (paper: 60->40)
        assert html5_end > html5_start  # rise (paper: 25->60)
        assert html5_end > flash_end

    def test_flash_decline_is_modest(self, dataset):
        # §4.4: unlike the Chromium report's 96% drop, view-hours show
        # a modest decline with Flash still carrying a large share.
        series = view_hour_share_series(
            dataset, FamilyDimension(Platform.BROWSER)
        )
        _, flash_end = first_last(series, "flash")
        assert flash_end > 25.0

    def test_android_reaches_parity(self, dataset):
        series = view_hour_share_series(
            dataset, FamilyDimension(Platform.MOBILE)
        )
        android_start, android_end = first_last(series, "android")
        ios_start, ios_end = first_last(series, "ios")
        assert android_end > android_start
        assert abs(android_end - ios_end) < 20.0  # comparable viewership

    def test_roku_dominates_set_tops(self, dataset):
        series = view_hour_share_series(
            dataset, FamilyDimension(Platform.SET_TOP)
        )
        latest = series[dataset.latest_snapshot()]
        assert latest["roku"] == max(latest.values())
        assert latest.get("appletv", 0) > 5.0
        assert latest.get("firetv", 0) > 5.0


class TestFig11and12Cdns:
    def test_cdn_a_most_popular_with_publishers(self, dataset):
        series = publisher_support_series(dataset, CdnDimension())
        latest = series[dataset.latest_snapshot()]
        assert latest["A"] > 70.0  # paper: ~80%
        assert latest["A"] > latest.get("B", 0)
        assert latest["A"] > latest.get("C", 0)

    def test_a_loses_vh_dominance(self, dataset):
        series = view_hour_share_series(dataset, CdnDimension())
        a_start, a_end = first_last(series, "A")
        assert a_end < a_start
        latest = series[dataset.latest_snapshot()]
        # Three CDNs with comparable view-hours by the end (20-35% each).
        comparable = [
            latest.get(name, 0) for name in ("A", "B", "C")
        ]
        assert all(15.0 < share < 45.0 for share in comparable)

    def test_d_and_e_stay_small(self, dataset):
        series = view_hour_share_series(dataset, CdnDimension())
        latest = series[dataset.latest_snapshot()]
        assert latest.get("D", 0) < 10.0
        assert latest.get("E", 0) < 10.0

    def test_single_cdn_publishers_hold_tiny_vh(self, latest):
        rows = count_distribution(latest, CdnDimension())
        single = next(r for r in rows if r.count == 1)
        assert single.percent_publishers > 25.0  # paper: >40%
        assert single.percent_view_hours < 5.0

    def test_4_or_5_cdn_publishers_hold_most_vh(self, latest):
        rows = count_distribution(latest, CdnDimension())
        heavy = sum(
            r.percent_view_hours for r in rows if r.count >= 4
        )
        assert heavy > 65.0  # paper: ~80%

    def test_max_five_cdns(self, latest):
        rows = count_distribution(latest, CdnDimension())
        assert max(r.count for r in rows) <= 5
