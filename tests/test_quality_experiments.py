"""Dataset QA (telemetry.quality) and the verification report
(repro.experiments)."""

from datetime import date

import pytest

from repro.errors import DatasetError
from repro.experiments import (
    Comparison,
    build_report,
    fraction_within_band,
    report_rows,
)
from repro.telemetry.dataset import Dataset
from repro.telemetry.quality import audit
from tests.test_telemetry_records import make_record


class TestAudit:
    def test_generated_dataset_is_clean(self, dataset):
        report = audit(dataset)
        assert report.ok
        assert report.classifiable_url_fraction == 1.0
        assert report.known_device_fraction == 1.0
        assert report.app_views_with_sdk_fraction == 1.0

    def test_summary_renders(self, dataset):
        text = audit(dataset).summary()
        assert "status: OK" in text

    def test_unclassifiable_urls_flagged(self):
        d = date(2018, 3, 12)
        records = [make_record(snapshot=d) for _ in range(5)]
        records += [
            make_record(snapshot=d, url="http://x/watch/1")
            for _ in range(5)
        ]
        report = audit(Dataset(records))
        assert not report.ok
        assert any(i.code == "E-URL" for i in report.issues)

    def test_unknown_devices_flagged(self):
        d = date(2018, 3, 12)
        records = [
            make_record(snapshot=d, device_model="fridge", sdk_name=None)
            for _ in range(10)
        ]
        report = audit(Dataset(records))
        assert any(i.code == "E-DEVICE" for i in report.issues)

    def test_missing_sdk_flagged(self):
        d = date(2018, 3, 12)
        record = make_record(snapshot=d, sdk_name=None, sdk_version=None)
        report = audit(Dataset([record]))
        assert any(i.code == "E-SDK" for i in report.issues)

    def test_dangling_syndication_flagged(self):
        d = date(2018, 3, 12)
        record = make_record(
            snapshot=d, is_syndicated=True, owner_id="ghost_pub"
        )
        report = audit(Dataset([record]))
        assert any(i.code == "E-SYND" for i in report.issues)

    def test_small_unknown_fraction_is_warning_only(self):
        d = date(2018, 3, 12)
        records = [make_record(snapshot=d) for _ in range(99)]
        records.append(
            make_record(snapshot=d, device_model="fridge", sdk_name=None)
        )
        report = audit(Dataset(records))
        assert report.ok
        assert any(i.code == "W-DEVICE" for i in report.issues)

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            audit(Dataset([]))


class TestComparison:
    def test_relative_band(self):
        comparison = Comparison("X", "q", paper=2.0, measured=2.3,
                                tolerance=0.2)
        assert comparison.within
        assert not Comparison(
            "X", "q", paper=2.0, measured=2.5, tolerance=0.2
        ).within

    def test_absolute_band(self):
        comparison = Comparison(
            "X", "q", paper=40.0, measured=45.0, tolerance=6.0,
            absolute=True,
        )
        assert comparison.within

    def test_row_shape(self):
        row = Comparison("X", "q", 1.0, 1.1, 0.2).row()
        assert row["within_band"] == "yes"
        assert row["experiment"] == "X"


class TestReport:
    def test_report_covers_every_section(self, eco):
        experiments = {c.experiment for c in build_report(eco)}
        assert {
            "F2a", "F2b", "F2c", "F3a", "F4", "F6a", "F6c", "F8",
            "F9a", "F11a", "F12a", "F13", "F14", "F15", "F16", "F18",
            "S43L", "S44", "top5",
        } <= experiments

    def test_most_comparisons_within_band(self, eco):
        comparisons = build_report(eco)
        assert fraction_within_band(comparisons) > 0.85

    def test_rows_printable(self, eco):
        rows = report_rows(eco)
        assert all(
            set(row) == {
                "experiment", "quantity", "paper", "measured",
                "within_band",
            }
            for row in rows
        )

    def test_empty_report_rejected(self):
        with pytest.raises(Exception):
            fraction_within_band([])


class TestCliExperiments:
    def test_experiments_command(self, capsys):
        from repro.cli import main

        code = main(
            ["experiments", "--snapshots", "4", "--publishers", "60"]
        )
        out = capsys.readouterr().out
        assert "comparisons inside" in out
        assert code in (0, 1)  # small builds may fall outside some bands
