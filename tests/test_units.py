"""Unit conversions (repro.units)."""

from datetime import date

import pytest

from repro import units


class TestBitrateConversions:
    def test_kbps_to_bytes_per_second(self):
        # 8000 kbps = 1 MB/s
        assert units.kbps_to_bytes_per_second(8000) == pytest.approx(1e6)

    def test_zero_bitrate_is_zero_bytes(self):
        assert units.kbps_to_bytes_per_second(0) == 0.0

    def test_negative_bitrate_rejected(self):
        with pytest.raises(ValueError):
            units.kbps_to_bytes_per_second(-1)

    def test_rendition_bytes_is_rate_times_duration(self):
        # 800 kbps for 10 s = 1 MB
        assert units.rendition_bytes(800, 10) == pytest.approx(1e6)

    def test_rendition_bytes_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.rendition_bytes(800, -1)


class TestStorageUnits:
    def test_bytes_to_tb_decimal(self):
        assert units.bytes_to_tb(1e12) == 1.0

    def test_tb_roundtrip(self):
        assert units.bytes_to_tb(units.tb_to_bytes(3.5)) == pytest.approx(3.5)


class TestTimeUnits:
    def test_hours_seconds_roundtrip(self):
        assert units.seconds_to_hours(units.hours_to_seconds(2.5)) == 2.5

    def test_one_hour(self):
        assert units.hours_to_seconds(1) == 3600.0


class TestSnapshotDates:
    def test_biweekly_count_over_27_months(self):
        dates = list(
            units.biweekly_snapshot_dates(date(2016, 1, 4), date(2018, 3, 26))
        )
        # Jan 2016 .. Mar 2018 at 14-day cadence: 59 snapshots.
        assert len(dates) == 59

    def test_includes_start(self):
        dates = list(
            units.biweekly_snapshot_dates(date(2016, 1, 4), date(2016, 2, 1))
        )
        assert dates[0] == date(2016, 1, 4)

    def test_step_is_fourteen_days(self):
        dates = list(
            units.biweekly_snapshot_dates(date(2016, 1, 4), date(2016, 3, 1))
        )
        gaps = {(b - a).days for a, b in zip(dates, dates[1:])}
        assert gaps == {14}

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            list(
                units.biweekly_snapshot_dates(
                    date(2018, 1, 1), date(2016, 1, 1)
                )
            )

    def test_single_snapshot_when_start_equals_end(self):
        dates = list(
            units.biweekly_snapshot_dates(date(2016, 1, 4), date(2016, 1, 4))
        )
        assert dates == [date(2016, 1, 4)]

    def test_months_between_is_about_27(self):
        months = units.months_between(date(2016, 1, 4), date(2018, 3, 26))
        assert 26 < months < 28
