"""Syndication analyses (Figs 14-17) and storage models (Fig 18)."""

from datetime import date

import pytest

from repro.core.storage import (
    build_case_origins,
    figure18,
    savings_for_cdn,
    tolerance_sweep,
)
from repro.core.syndication import (
    ladder_divergence,
    ladders_for_video,
    prevalence_summary,
    qoe_comparison,
    syndication_cdf,
    syndicator_fraction_per_owner,
)
from repro.delivery.origin import OriginServer
from repro.errors import AnalysisError
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import case_video_id
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record


class TestSyndicationPrevalence:
    def _dataset(self):
        d = date(2018, 3, 12)
        return Dataset(
            [
                # Owner o1's own content.
                make_record(
                    snapshot=d, publisher_id="o1", owner_id="o1",
                    video_id="vid_o1_1",
                ),
                # o1 syndicated by s1 and s2.
                make_record(
                    snapshot=d, publisher_id="s1", owner_id="o1",
                    is_syndicated=True, video_id="vid_o1_1",
                ),
                make_record(
                    snapshot=d, publisher_id="s2", owner_id="o1",
                    is_syndicated=True, video_id="vid_o1_1",
                ),
                # Owner o2: never syndicated.
                make_record(
                    snapshot=d, publisher_id="o2", owner_id="o2",
                    video_id="vid_o2_1",
                ),
            ]
        )

    def test_fraction_per_owner(self):
        fractions = syndicator_fraction_per_owner(self._dataset())
        assert fractions["o1"] == pytest.approx(100.0)  # 2 of 2 syndicators
        assert fractions["o2"] == 0.0

    def test_prevalence_summary(self):
        summary = prevalence_summary(self._dataset())
        assert summary["pct_owners_with_syndicator"] == 50.0

    def test_cdf_support(self):
        cdf = syndication_cdf(self._dataset())
        assert cdf.support == (0.0, 100.0)

    def test_no_syndication_rejected(self):
        d = date(2018, 3, 12)
        data = Dataset([make_record(snapshot=d)])
        with pytest.raises(AnalysisError):
            syndicator_fraction_per_owner(data)

    def test_fig14_shape_on_synthetic_data(self, dataset):
        summary = prevalence_summary(dataset)
        # §6: >80% of owners use at least one syndicator; ~20% reach a
        # third of all syndicators.
        assert summary["pct_owners_with_syndicator"] > 70.0
        assert 8.0 < summary["pct_owners_third_of_syndicators"] < 45.0


class TestLadderDivergence:
    def test_ladders_for_case_video(self, dataset, eco):
        ladders = ladders_for_video(dataset, case_video_id())
        assert len(ladders) == 11  # owner + 10 syndicators

    def test_divergence_stats(self, dataset, eco):
        divergence = ladder_divergence(
            dataset, case_video_id(), eco.case_study.owner_id
        )
        low, high = divergence.size_range
        assert low == 3 and high == 14  # S2 vs S9 (Fig 17)
        assert 6.5 < divergence.owner_to_weakest_ratio() < 8.5

    def test_missing_video_rejected(self, dataset):
        with pytest.raises(AnalysisError):
            ladders_for_video(dataset, "vid_none")

    def test_missing_owner_rejected(self, dataset):
        with pytest.raises(AnalysisError):
            ladder_divergence(dataset, case_video_id(), "ghost")


class TestQoeComparison:
    @pytest.mark.parametrize("isp,cdn", [("X", "A"), ("Y", "B")])
    def test_owner_wins_on_both_combos(self, dataset, eco, isp, cdn):
        study = eco.case_study
        comparison = qoe_comparison(
            dataset,
            study.owner_id,
            study.publisher_id("S7"),
            case_video_id(),
            isp,
            cdn,
        )
        # Fig 15: ~2.5x median bitrate advantage for the owner.
        assert 1.8 < comparison.median_bitrate_gain() < 3.5
        # Fig 16: lower rebuffering for owner clients at the 90th pct.
        assert comparison.p90_rebuffer_reduction() > 0.15

    def test_missing_combo_rejected(self, dataset, eco):
        study = eco.case_study
        with pytest.raises(AnalysisError):
            qoe_comparison(
                dataset,
                study.owner_id,
                study.publisher_id("S7"),
                case_video_id(),
                "X",
                "E",
            )


class TestStorage:
    def test_origins_built_per_cdn(self, eco):
        origins = build_case_origins(eco.case_study)
        assert {"A", "B", "C", "D"} <= set(origins)
        # Common CDNs hold all three participants.
        assert len(origins["A"].publishers) == 3
        # Extra CDNs hold only their syndicator.
        assert len(origins["C"].publishers) == 1

    def test_fig18_matches_paper(self, eco):
        rows = figure18(eco.case_study)
        assert len(rows) == 2
        for row in rows:
            assert row.total_tb == pytest.approx(1916, rel=0.05)
            assert row.saved_pct_5pct == pytest.approx(16.5, abs=1.5)
            assert row.saved_pct_10pct == pytest.approx(45.2, abs=1.5)
            assert row.saved_pct_integrated == pytest.approx(65.6, abs=1.0)

    def test_both_common_cdns_identical(self, eco):
        rows = figure18(eco.case_study)
        assert rows[0].total_tb == pytest.approx(rows[1].total_tb)

    def test_tolerance_sweep_broadly_increasing(self, eco):
        # Greedy grouping anchors each group at its lowest rate, so a
        # larger tolerance can occasionally re-partition and save
        # slightly less; the sweep must still rise overall.
        sweep = tolerance_sweep(eco.case_study)
        percentages = [pct for _, pct in sweep]
        assert percentages[0] == pytest.approx(0.0, abs=0.1)
        assert percentages[-1] > percentages[0]
        assert max(percentages) == pytest.approx(
            max(percentages[-2:]), abs=3.0
        )
        for previous, current in zip(percentages, percentages[1:]):
            assert current > previous - 3.0

    def test_savings_for_empty_origin_rejected(self):
        with pytest.raises(AnalysisError):
            savings_for_cdn(OriginServer("Z"), "owner")
