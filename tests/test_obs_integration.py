"""Observability across the pipeline: counters, spans, CLI, determinism.

Three claims are under test here:

1. single source of truth — the counts an :class:`IngestReport` prints
   and the counters a metrics snapshot exports are the same instrument
   objects, so they cannot disagree, fault injection or not;
2. instrumentation is live — retries, breaker transitions, CDN
   failovers, generator stages and figure runs all leave the declared
   metric/span trail when obs is enabled;
3. obs is invisible — with obs disabled (the default) the figure
   pipeline emits byte-identical output to an obs-enabled run, because
   recorded data never feeds an analysis.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, figures, obs
from repro.constants import ContentType
from repro.core.report import format_table
from repro.delivery.multicdn import CdnBroker, ResilientFetcher
from repro.entities.cdn import CDN, CdnAssignment
from repro.errors import CircuitOpenError, DeliveryError, RetryExhaustedError
from repro.obs import FakeClock, MetricsRegistry
from repro.resilience import BackoffPolicy, CircuitBreaker, retry_with_backoff
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator
from repro.telemetry.faults import FaultInjector, FaultMix
from repro.telemetry.ingest import IngestPipeline, events_from_records

pytestmark = pytest.mark.obs

# Small enough to regenerate twice in one test, large enough to hit
# every synthesis stage (case study included).
FAST_CONFIG = dict(
    seed=11, snapshot_limit=2, n_publishers=24, records_scale=0.2,
    qoe_sessions=10,
)


@pytest.fixture
def global_obs():
    """Enable the process-global obs context; restore defaults after."""
    ctx = obs.configure(enabled=True, clock=FakeClock())
    yield ctx
    ctx.configure(enabled=False)
    ctx.reset()
    ctx.seed = None


def _faulted_events(eco, rate: float = 0.3, sessions: int = 40):
    records = [
        r
        for r in eco.dataset.records
        if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
    ][:sessions]
    events = list(events_from_records(records))
    injector = FaultInjector(FaultMix.uniform(rate), seed=5)
    return injector.apply(events)


# ---------------------------------------------------------------------------
# Single source of truth: report counts ARE the metrics counters
# ---------------------------------------------------------------------------


class TestIngestSingleSource:
    def test_snapshot_counters_match_report_exactly(self, eco):
        registry = MetricsRegistry()
        pipeline = IngestPipeline("quarantine", metrics=registry)
        report = pipeline.run(_faulted_events(eco))
        counters = registry.snapshot()["counters"]

        assert counters["ingest.events"] == report.total_events
        assert counters["ingest.accepted"] == report.accepted
        assert counters["ingest.repaired"] == report.repaired
        assert counters["ingest.deduped"] == report.deduped
        assert counters["ingest.reaped"] == report.reaped
        assert counters["ingest.records"] == len(report.records)
        per_reason = {
            key: int(value)
            for key, value in registry.series_values(
                "ingest.quarantined"
            ).items()
            if value
        }
        assert per_reason == report.reason_counts()
        assert sum(per_reason.values()) == report.quarantined
        assert report.quarantined > 0  # the fault mix actually bit

    def test_report_conservation_invariant_still_holds(self, eco):
        report = IngestPipeline("quarantine").run(_faulted_events(eco))
        assert (
            report.accepted + report.deduped + report.event_quarantined
            == report.total_events
        )

    def test_private_registries_isolate_pipelines(self, eco):
        events = _faulted_events(eco, sessions=10)
        first = IngestPipeline("quarantine").run(list(events))
        second = IngestPipeline("quarantine").run(list(events))
        assert first.total_events == second.total_events
        assert first.summary() == second.summary()

    def test_shared_registry_accumulates_across_batches(self, eco):
        registry = MetricsRegistry()
        events = list(_faulted_events(eco, sessions=10))
        solo = IngestPipeline("quarantine").run(list(events))
        IngestPipeline("quarantine", metrics=registry).run(list(events))
        shared = IngestPipeline("quarantine", metrics=registry).run(
            list(events)
        )
        total = registry.snapshot()["counters"]["ingest.events"]
        assert total == 2 * solo.total_events
        # A shared-registry report aliases the cumulative instruments —
        # single source of truth means it cannot diverge from them.
        assert shared.total_events == total

    def test_repair_policy_counts_repairs(self, eco):
        registry = MetricsRegistry()
        report = IngestPipeline("repair", metrics=registry).run(
            _faulted_events(eco)
        )
        assert (
            registry.snapshot()["counters"]["ingest.repaired"]
            == report.repaired
        )

    def test_batch_span_recorded_when_enabled(self, eco, global_obs):
        IngestPipeline("quarantine").run(_faulted_events(eco, sessions=5))
        spans = [
            s for s in global_obs.tracer.finished if s.name == "ingest.batch"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["policy"] == "quarantine"
        assert spans[0].attrs["events"] > 0


# ---------------------------------------------------------------------------
# Resilience primitives leave their metric trail
# ---------------------------------------------------------------------------


class TestResilienceInstrumentation:
    def test_retry_attempts_histogram(self, global_obs):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeliveryError("transient")
            return "ok"

        policy = BackoffPolicy(retries=3, base_delay=0.0, jitter=0.0)
        assert (
            retry_with_backoff(
                flaky, policy=policy, retry_on=(DeliveryError,)
            )
            == "ok"
        )
        hist = global_obs.registry.histogram("retry.attempts")
        assert hist.count == 1
        assert hist.sum == 3.0

    def test_retry_exhaustion_counted(self, global_obs):
        def doomed():
            raise DeliveryError("hard down")

        policy = BackoffPolicy(retries=1, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            retry_with_backoff(
                doomed, policy=policy, retry_on=(DeliveryError,)
            )
        assert global_obs.registry.counter("retry.exhausted").count == 1
        assert global_obs.registry.histogram("retry.attempts").sum == 2.0

    def test_breaker_transition_edges_and_rejections(self, global_obs):
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout=30.0, name="cdn:A"
        )

        def fail():
            raise DeliveryError("down")

        for _ in range(2):
            with pytest.raises(DeliveryError):
                breaker.call(fail)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

        values = global_obs.registry.series_values("breaker.transitions")
        assert values == {"cdn:A,closed,open": 1.0}
        rejected = global_obs.registry.series_values("breaker.rejected")
        assert rejected == {"cdn:A": 1.0}

    def test_multicdn_failover_counters(self, global_obs):
        broker = CdnBroker(explore=0.0)
        broker.observe("A", 5000.0)
        broker.observe("B", 2000.0)
        fetcher = ResilientFetcher(
            broker,
            policy=BackoffPolicy(retries=1, base_delay=0.0, jitter=0.0),
            failure_threshold=2,
            recovery_timeout=30.0,
        )
        assignments = tuple(
            CdnAssignment(cdn=CDN(name=name), content_types=frozenset(ContentType))
            for name in ("A", "B")
        )

        def fetch(name):
            if name == "A":
                raise DeliveryError("A is down")
            return f"chunk-from-{name}"

        outcome = fetcher.fetch(assignments, ContentType.VOD, fetch)
        assert outcome.cdn_name == "B"
        registry = global_obs.registry
        assert registry.series_values("multicdn.failover") == {"A": 1.0}
        assert registry.series_values("multicdn.served") == {"B": 1.0}


# ---------------------------------------------------------------------------
# Generator and figure spans
# ---------------------------------------------------------------------------


class TestPipelineSpans:
    def test_generator_emits_stage_spans_and_counts(self, global_obs):
        result = EcosystemGenerator(
            EcosystemConfig(**FAST_CONFIG)
        ).generate()
        names = [s.name for s in global_obs.tracer.finished]
        assert names.count("synthesis.snapshot") == 2
        assert "synthesis.population" in names
        assert "synthesis.case_study" in names
        root = next(
            s
            for s in global_obs.tracer.finished
            if s.name == "synthesis.generate"
        )
        assert root.attrs["records"] == len(result.dataset)
        assert root.attrs["seed"] == FAST_CONFIG["seed"]
        counters = global_obs.registry.snapshot()["counters"]
        assert counters["synthesis.records"] == len(result.dataset)
        assert counters["synthesis.snapshots"] == 2

    def test_figure_run_span_and_counter(self, eco, global_obs):
        rows = figures.run_figure("F2a", eco)
        span = next(
            s for s in global_obs.tracer.finished if s.name == "figure.run"
        )
        assert span.attrs == {"figure": "F2a", "rows": len(rows)}
        # reset() zeroes values but keeps previously registered series,
        # so only assert on the series this test owns plus emptiness of
        # the rest — robust to any prior figure run in the process.
        series = global_obs.registry.series_values("figure.runs")
        assert series["F2a"] == 1.0
        assert all(v == 0.0 for k, v in series.items() if k != "F2a")


# ---------------------------------------------------------------------------
# Obs must be invisible: byte-identical output on vs off
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_figure_output_identical_obs_on_vs_off(self):
        def build_tables() -> str:
            result = EcosystemGenerator(
                EcosystemConfig(**FAST_CONFIG)
            ).generate()
            return "\n\n".join(
                format_table(figures.run_figure(fid, result))
                for fid in ("F2a", "F13", "S44")
            )

        assert not obs.enabled()
        off = build_tables()
        obs.configure(enabled=True, clock=FakeClock())
        try:
            on = build_tables()
        finally:
            obs.get_context().configure(enabled=False)
            obs.reset()
        assert on == off

    def test_disabled_run_records_nothing(self):
        assert not obs.enabled()
        before = len(obs.tracer().finished)
        EcosystemGenerator(EcosystemConfig(**FAST_CONFIG)).generate()
        assert len(obs.tracer().finished) == before


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliObs:
    def test_ingest_metrics_out_matches_printed_report(
        self, tmp_path, capsys, global_obs
    ):
        out = tmp_path / "m.json"
        exit_code = cli.main(
            [
                "ingest",
                "--policy",
                "quarantine",
                "--fault-rate",
                "0.2",
                "--sessions",
                "30",
                "--publishers",
                "24",
                "--metrics-out",
                str(out),
            ]
        )
        assert exit_code == 0
        summary = capsys.readouterr().out
        counters = json.loads(out.read_text())["metrics"]["counters"]
        # The printed summary and the snapshot share instruments; parse
        # the summary line back and compare every count.
        line = next(
            l for l in summary.splitlines() if l.startswith("policy=")
        )
        printed = dict(
            part.split("=")
            for part in line.split(" [")[0].split()
            if "=" in part
        )
        assert counters["ingest.events"] == float(printed["events"])
        assert counters["ingest.accepted"] == float(printed["accepted"])
        assert counters["ingest.deduped"] == float(printed["deduped"])
        quarantined = sum(
            value
            for key, value in counters.items()
            if key.startswith("ingest.quarantined{")
        )
        assert quarantined == float(printed["quarantined"])

    def test_figure_trace_prints_span_tree(self, capsys, global_obs):
        exit_code = cli.main(
            [
                "figure",
                "F13",
                "--trace",
                "--snapshots",
                "2",
                "--publishers",
                "24",
            ]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "synthesis.generate" in err
        assert "  synthesis.snapshot" in err  # indented: nested span
        assert "figure.run" in err

    def test_metrics_subcommand_lists_catalog(self, capsys, global_obs):
        assert cli.main(["metrics"]) == 0
        out = capsys.readouterr().out
        for name in ("ingest.quarantined", "retry.attempts", "figure.runs"):
            assert name in out

    def test_metrics_subcommand_json_shape(self, capsys, global_obs):
        assert cli.main(["metrics", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {spec["name"] for spec in payload["catalog"]}
        assert "multicdn.failover" in names
        assert set(payload["snapshot"]) == {
            "counters",
            "gauges",
            "histograms",
        }

    def test_trace_flag_rejected_without_subcommand_support(self, capsys):
        # lint deliberately has no obs flags: it never runs the pipeline.
        with pytest.raises(SystemExit):
            cli.main(["lint", "--trace"])
