"""Edge caches, multi-CDN policies, broker, anycast (repro.delivery)."""

import numpy as np
import pytest

from repro.constants import ContentType
from repro.delivery.anycast import AnycastRouteModel
from repro.delivery.edge import EdgeCache
from repro.delivery.multicdn import (
    CdnBroker,
    ContentTypeSplitPolicy,
    ResilientFetcher,
    RoundRobinPolicy,
    WeightedPolicy,
)
from repro.entities.cdn import CDN, CdnAssignment
from repro.errors import AllCdnsFailedError, DeliveryError, TransportError


def _assignments(*names, vod_only=(), live_only=()):
    result = []
    for name in names:
        if name in vod_only:
            types = frozenset({ContentType.VOD})
        elif name in live_only:
            types = frozenset({ContentType.LIVE})
        else:
            types = frozenset(ContentType)
        result.append(CdnAssignment(cdn=CDN(name=name), content_types=types))
    return tuple(result)


class TestEdgeCache:
    def test_miss_then_hit(self):
        cache = EdgeCache(capacity_bytes=100)
        assert not cache.request("k1", 10)
        assert cache.request("k1", 10)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = EdgeCache(capacity_bytes=20)
        cache.request("a", 10)
        cache.request("b", 10)
        cache.request("a", 10)  # refresh a
        cache.request("c", 10)  # evicts b (LRU)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_oversized_object_not_admitted(self):
        cache = EdgeCache(capacity_bytes=5)
        assert not cache.request("big", 10)
        assert "big" not in cache
        assert cache.used_bytes == 0

    def test_bytes_accounting(self):
        cache = EdgeCache(capacity_bytes=100)
        cache.request("a", 30)
        cache.request("a", 30)
        assert cache.stats.bytes_served == 60
        assert cache.stats.bytes_from_origin == 30

    def test_hit_ratio(self):
        cache = EdgeCache(capacity_bytes=100)
        assert cache.stats.hit_ratio == 0.0
        cache.request("a", 1)
        cache.request("a", 1)
        assert cache.stats.hit_ratio == 0.5

    def test_purge_keeps_stats(self):
        cache = EdgeCache(capacity_bytes=100)
        cache.request("a", 10)
        cache.purge()
        assert cache.entry_count == 0
        assert cache.stats.misses == 1

    def test_syndication_duplicates_occupy_twice(self):
        # Same content under two publishers = two cache entries (§6).
        cache = EdgeCache(capacity_bytes=100)
        cache.request(("owner", "v1", 800, 0), 10)
        cache.request(("syn", "v1", 800, 0), 10)
        assert cache.entry_count == 2

    def test_capacity_validation(self):
        with pytest.raises(DeliveryError):
            EdgeCache(capacity_bytes=0)

    def test_negative_size_rejected(self):
        cache = EdgeCache(capacity_bytes=10)
        with pytest.raises(DeliveryError):
            cache.request("a", -1)


class TestRoundRobin:
    def test_cycles_through_cdns(self, rng):
        policy = RoundRobinPolicy()
        assignments = _assignments("A", "B", "C")
        picks = [
            policy.select(assignments, ContentType.VOD, rng)
            for _ in range(6)
        ]
        assert picks == ["A", "B", "C", "A", "B", "C"]

    def test_respects_content_type(self, rng):
        policy = RoundRobinPolicy()
        assignments = _assignments("A", "B", live_only=("B",))
        picks = {
            policy.select(assignments, ContentType.VOD, rng)
            for _ in range(4)
        }
        assert picks == {"A"}

    def test_no_eligible_cdn_raises(self, rng):
        assignments = _assignments("A", vod_only=("A",))
        with pytest.raises(DeliveryError):
            RoundRobinPolicy().select(assignments, ContentType.LIVE, rng)


class TestWeighted:
    def test_weights_respected_statistically(self, rng):
        policy = WeightedPolicy({"A": 0.9, "B": 0.1})
        assignments = _assignments("A", "B")
        picks = [
            policy.select(assignments, ContentType.VOD, rng)
            for _ in range(500)
        ]
        share_a = picks.count("A") / len(picks)
        assert 0.82 < share_a < 0.97

    def test_zero_weight_never_chosen(self, rng):
        policy = WeightedPolicy({"A": 1.0, "B": 0.0})
        assignments = _assignments("A", "B")
        picks = {
            policy.select(assignments, ContentType.VOD, rng)
            for _ in range(50)
        }
        assert picks == {"A"}

    def test_validation(self):
        with pytest.raises(DeliveryError):
            WeightedPolicy({})
        with pytest.raises(DeliveryError):
            WeightedPolicy({"A": -1})
        with pytest.raises(DeliveryError):
            WeightedPolicy({"A": 0.0})

    def test_no_positive_weight_among_eligible(self, rng):
        policy = WeightedPolicy({"A": 1.0})
        assignments = _assignments("B")
        with pytest.raises(DeliveryError):
            policy.select(assignments, ContentType.VOD, rng)


class TestContentSplit:
    def test_prefers_exclusive_cdn(self, rng):
        policy = ContentTypeSplitPolicy()
        assignments = _assignments("A", "B", "C", live_only=("C",))
        picks = {
            policy.select(assignments, ContentType.LIVE, rng)
            for _ in range(20)
        }
        assert picks == {"C"}

    def test_falls_back_to_shared(self, rng):
        policy = ContentTypeSplitPolicy()
        assignments = _assignments("A", "B")
        picks = {
            policy.select(assignments, ContentType.VOD, rng)
            for _ in range(50)
        }
        assert picks == {"A", "B"}


class TestBroker:
    def test_probes_unmeasured_cdns_first(self, rng):
        broker = CdnBroker(explore=0.0)
        broker.observe("A", 5000)
        decision = broker.select(
            _assignments("A", "B"), ContentType.VOD, rng
        )
        assert decision.cdn_name == "B"  # unmeasured scores infinity

    def test_picks_best_ewma(self, rng):
        broker = CdnBroker(explore=0.0)
        broker.observe("A", 2000)
        broker.observe("B", 8000)
        decision = broker.select(
            _assignments("A", "B"), ContentType.VOD, rng
        )
        assert decision.cdn_name == "B"
        assert decision.predicted_kbps == pytest.approx(8000)

    def test_ewma_update(self):
        broker = CdnBroker(alpha=0.5)
        broker.observe("A", 1000)
        broker.observe("A", 3000)
        assert broker.estimate("A") == pytest.approx(2000)

    def test_exploration_occasionally_deviates(self, rng):
        broker = CdnBroker(explore=0.5)
        broker.observe("A", 1000)
        broker.observe("B", 9000)
        picks = {
            broker.select(
                _assignments("A", "B"), ContentType.VOD, rng
            ).cdn_name
            for _ in range(100)
        }
        assert picks == {"A", "B"}

    def test_validation(self):
        with pytest.raises(DeliveryError):
            CdnBroker(explore=1.0)
        with pytest.raises(DeliveryError):
            CdnBroker(alpha=0.0)
        with pytest.raises(DeliveryError):
            CdnBroker().observe("A", -1)


class TestAnycast:
    def test_disruption_probability_grows_with_duration(self):
        model = AnycastRouteModel(daily_change_rate=1.0)
        assert model.disruption_probability(60) < model.disruption_probability(
            3600
        )

    def test_zero_rate_never_disrupts(self, rng):
        model = AnycastRouteModel(daily_change_rate=0.0)
        assert model.disruption_probability(86_400) == 0.0
        assert model.sample_events(86_400, rng) == []

    def test_event_sampling_rate(self, rng):
        model = AnycastRouteModel(daily_change_rate=86_400.0)  # 1/s
        events = model.sample_events(1000, rng)
        assert 850 < len(events) < 1150  # Poisson(1000)

    def test_events_within_view(self, rng):
        model = AnycastRouteModel(daily_change_rate=86_400.0)
        for event in model.sample_events(100, rng):
            assert 0 <= event.at_seconds < 100

    def test_expected_stall(self):
        model = AnycastRouteModel(
            daily_change_rate=86_400.0, reconnect_delay_seconds=2.0
        )
        assert model.expected_stall_seconds(10) == pytest.approx(20.0)

    def test_long_video_views_rarely_disrupted_at_realistic_rates(self):
        # §4.3: anycast instability is not blocking for video.
        model = AnycastRouteModel(daily_change_rate=0.2)
        one_hour = model.disruption_probability(3600)
        assert one_hour < 0.01

    def test_validation(self):
        with pytest.raises(DeliveryError):
            AnycastRouteModel(daily_change_rate=-1)
        with pytest.raises(DeliveryError):
            AnycastRouteModel().disruption_probability(-1)


class TestResilientFetcher:
    def _fetcher(self, clock=None, **kwargs):
        from repro.resilience import BackoffPolicy

        broker = CdnBroker(explore=0.0)
        broker.observe("A", 5000.0)
        broker.observe("B", 2000.0)
        broker.observe("C", 500.0)
        defaults = dict(
            policy=BackoffPolicy(retries=1, base_delay=0.0, jitter=0.0),
            failure_threshold=2,
            recovery_timeout=30.0,
        )
        defaults.update(kwargs)
        if clock is not None:
            defaults["clock"] = clock
        return ResilientFetcher(broker, **defaults), broker

    def test_fetches_from_best_cdn_when_healthy(self):
        fetcher, _ = self._fetcher()
        outcome = fetcher.fetch(
            _assignments("A", "B", "C"),
            ContentType.VOD,
            lambda name: f"chunk-from-{name}",
        )
        assert outcome.cdn_name == "A"
        assert outcome.value == "chunk-from-A"
        assert outcome.failed_cdns == ()

    def test_fails_over_to_next_cdn_after_retries(self):
        fetcher, _ = self._fetcher()
        attempts = []

        def fetch(name):
            attempts.append(name)
            if name == "A":
                raise DeliveryError("A is down")
            return f"chunk-from-{name}"

        outcome = fetcher.fetch(
            _assignments("A", "B", "C"), ContentType.VOD, fetch
        )
        assert outcome.cdn_name == "B"
        assert outcome.failed_cdns == ("A",)
        # retries=1 means two attempts against A before failing over.
        assert attempts == ["A", "A", "B"]

    def test_circuit_opens_and_skips_failing_cdn(self):
        now = [0.0]
        fetcher, _ = self._fetcher(clock=lambda: now[0])

        def fetch(name):
            if name == "A":
                raise DeliveryError("A is down")
            return f"chunk-from-{name}"

        # Two failed fetch() calls (threshold=2) open A's circuit.
        fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        calls = []

        def counting_fetch(name):
            calls.append(name)
            return fetch(name)

        outcome = fetcher.fetch(
            _assignments("A", "B"), ContentType.VOD, counting_fetch
        )
        assert outcome.skipped_open_circuits == ("A",)
        assert calls == ["B"]  # A never even attempted

    def test_circuit_recovers_after_timeout(self):
        now = [0.0]
        fetcher, _ = self._fetcher(clock=lambda: now[0])
        down = {"A"}

        def fetch(name):
            if name in down:
                raise DeliveryError(f"{name} is down")
            return f"chunk-from-{name}"

        fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        down.clear()
        now[0] = 31.0  # past the recovery window: half-open probe allowed
        outcome = fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        assert outcome.cdn_name == "A"
        assert outcome.skipped_open_circuits == ()

    def test_all_cdns_down_raises_delivery_error(self):
        fetcher, _ = self._fetcher()

        def fetch(name):
            raise DeliveryError(f"{name} is down")

        with pytest.raises(DeliveryError):
            fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)

    def test_all_cdns_down_attributes_every_cdn(self):
        now = [0.0]

        def clock():
            now[0] += 0.25  # every clock read advances injected time
            return now[0]

        fetcher, _ = self._fetcher(clock=clock)

        def fetch(name):
            raise TransportError(f"{name} unreachable")

        with pytest.raises(AllCdnsFailedError) as info:
            fetcher.fetch(
                _assignments("A", "B", "C"), ContentType.VOD, fetch
            )
        attribution = info.value.attribution
        # One attempt entry per eligible CDN, in ranked (EWMA) order.
        assert [a.cdn_name for a in attribution] == ["A", "B", "C"]
        for attempt in attribution:
            assert attempt.outcome == "failed"
            # retries=1 means two tries against each CDN.
            assert attempt.attempts == 2
            assert attempt.elapsed > 0.0
            assert "unreachable" in attempt.error
        # The typed error is still a DeliveryError for legacy callers.
        assert isinstance(info.value, DeliveryError)

    def test_all_cdns_down_attributes_open_circuits(self):
        now = [0.0]
        fetcher, _ = self._fetcher(clock=lambda: now[0])

        def fetch(name):
            raise TransportError(f"{name} down")

        # Two failing calls (threshold=2) open every breaker.
        for _ in range(2):
            with pytest.raises(AllCdnsFailedError):
                fetcher.fetch(
                    _assignments("A", "B"), ContentType.VOD, fetch
                )
        with pytest.raises(AllCdnsFailedError) as info:
            fetcher.fetch(_assignments("A", "B"), ContentType.VOD, fetch)
        attribution = info.value.attribution
        assert [a.outcome for a in attribution] == (
            ["circuit-open", "circuit-open"]
        )
        for attempt in attribution:
            assert attempt.attempts == 0
            assert attempt.elapsed == 0.0
            assert "circuit open" in attempt.error

    def test_ranked_orders_by_ewma(self):
        _, broker = self._fetcher()
        ranked = broker.ranked(_assignments("A", "B", "C"), ContentType.VOD)
        assert ranked == ["A", "B", "C"]
