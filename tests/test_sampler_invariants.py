"""Generator/sampler invariants over the session ecosystem build.

These pin down the contract between the synthesis layer and the
analyses: exact view-hour accounting, complete dimension coverage, and
well-formed case-study telemetry.
"""

from collections import defaultdict

import pytest

from repro.constants import Protocol
from repro.core.dimensions import record_protocol
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import case_video_id


class TestViewHourAccounting:
    def test_publisher_view_hours_match_assignment(self, eco):
        """Realized window view-hours ≈ 2 x daily assignment.

        Exact up to the RTMP cells dropped on non-browser platforms and
        the case-study extra records.
        """
        latest = eco.dataset.latest()
        realized = latest.publisher_view_hours()
        case_ids = set(eco.case_study.labels.values())
        checked = 0
        for publisher in eco.publishers:
            pid = publisher.publisher_id
            if pid in case_ids:
                continue  # extra QoE records perturb these slightly
            target = publisher.daily_view_hours * 2.0
            assert realized[pid] == pytest.approx(target, rel=0.15), pid
            checked += 1
        assert checked > 80

    def test_every_record_weight_positive(self, dataset):
        for record in dataset.records[:5000]:
            assert record.weight > 0
            assert record.view_duration_hours > 0

    def test_record_vh_is_weight_times_duration(self, dataset):
        for record in dataset.records[:2000]:
            assert record.view_hours == pytest.approx(
                record.weight * record.view_duration_hours
            )


class TestDimensionCoverage:
    def test_every_publisher_in_every_snapshot(self, eco):
        for snapshot in eco.dataset.snapshots():
            snap = eco.dataset.for_snapshot(snapshot)
            assert len(snap.publishers()) == len(eco.publishers)

    def test_every_publisher_has_http_protocol_each_snapshot(self, eco):
        for snapshot in eco.dataset.snapshots():
            by_publisher = defaultdict(set)
            for record in eco.dataset.for_snapshot(snapshot):
                protocol = record_protocol(record)
                if protocol and protocol.is_http_adaptive:
                    by_publisher[record.publisher_id].add(protocol)
            for publisher in eco.publishers:
                assert by_publisher[publisher.publisher_id], (
                    publisher.publisher_id,
                    snapshot,
                )

    def test_ladders_on_records_sorted(self, dataset):
        for record in dataset.records[:2000]:
            rates = record.bitrate_ladder_kbps
            assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_cdn_names_unique_per_record(self, dataset):
        for record in dataset.records[:5000]:
            assert len(set(record.cdn_names)) == len(record.cdn_names)


class TestDashDrivers:
    def test_drivers_lean_on_dash_at_the_end(self, eco):
        latest = eco.dataset.latest()
        for driver in eco.dash_driver_ids:
            dash_vh = 0.0
            total = 0.0
            for record in latest:
                if record.publisher_id != driver:
                    continue
                protocol = record_protocol(record)
                if protocol is None or not protocol.is_http_adaptive:
                    continue
                total += record.view_hours
                if protocol is Protocol.DASH:
                    dash_vh += record.view_hours
            assert total > 0
            assert dash_vh / total > 0.5, driver

    def test_drivers_use_only_two_protocols_at_the_end(self, eco):
        latest = eco.dataset.latest()
        for driver in eco.dash_driver_ids:
            protocols = {
                record_protocol(record)
                for record in latest
                if record.publisher_id == driver
            }
            http = {p for p in protocols if p and p.is_http_adaptive}
            assert http == {Protocol.HLS, Protocol.DASH}


class TestCaseStudyRecords:
    def test_qoe_sessions_per_combo(self, eco):
        study = eco.case_study
        expected = eco.config.qoe_sessions
        counts = defaultdict(int)
        for record in eco.dataset:
            if record.video_id != case_video_id():
                continue
            if record.isp in ("X", "Y"):
                counts[(record.publisher_id, record.isp)] += 1
        for label in ("O",) + study.syndicator_labels:
            pid = study.publisher_id(label)
            assert counts[(pid, "X")] == expected
            assert counts[(pid, "Y")] == expected

    def test_qoe_records_are_california_ipads(self, eco):
        for record in eco.dataset:
            if record.video_id == case_video_id() and record.isp in (
                "X",
                "Y",
            ):
                assert record.device_model == "ipad"
                assert record.geo == "CA"
                assert record.connection.value == "wifi"

    def test_case_ladders_match_calibration(self, eco):
        study = eco.case_study
        for record in eco.dataset:
            if record.video_id != case_video_id():
                continue
            label = next(
                (
                    lbl
                    for lbl, pid in study.labels.items()
                    if pid == record.publisher_id
                ),
                None,
            )
            if label is None:
                continue
            assert record.bitrate_ladder_kbps == pytest.approx(
                cal.CASE_STUDY_LADDERS[label]
            )
