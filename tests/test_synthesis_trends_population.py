"""Trend curves and population generation (repro.synthesis)."""

import numpy as np
import pytest

from repro.constants import SyndicationRole
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.population import (
    catalogue_size,
    draw_view_hours,
    generate_publishers,
    size_decade,
    size_rank_percentile,
)
from repro.synthesis.trends import AdoptionCurve, LinearDrift, supports


class TestAdoptionCurve:
    def test_endpoints_exact(self):
        curve = AdoptionCurve(start=0.1, end=0.43)
        assert curve.level(0.0) == pytest.approx(0.1)
        assert curve.level(1.0) == pytest.approx(0.43)

    def test_monotone_rising(self):
        curve = AdoptionCurve(start=0.1, end=0.9)
        levels = [curve.level(t) for t in np.linspace(0, 1, 20)]
        assert levels == sorted(levels)
        assert curve.is_rising

    def test_monotone_declining(self):
        curve = AdoptionCurve(start=0.35, end=0.19)
        levels = [curve.level(t) for t in np.linspace(0, 1, 20)]
        assert levels == sorted(levels, reverse=True)
        assert not curve.is_rising

    def test_flat_curve(self):
        curve = AdoptionCurve(start=0.4, end=0.4)
        assert curve.level(0.5) == pytest.approx(0.4)

    def test_bounds_validation(self):
        with pytest.raises(CalibrationError):
            AdoptionCurve(start=-0.1, end=0.5)
        with pytest.raises(CalibrationError):
            AdoptionCurve(start=0.5, end=1.5)
        with pytest.raises(CalibrationError):
            AdoptionCurve(start=0.1, end=0.5, midpoint=1.0)
        with pytest.raises(CalibrationError):
            AdoptionCurve(start=0.1, end=0.5, steepness=0)

    def test_progress_bounds(self):
        curve = AdoptionCurve(start=0.1, end=0.9)
        with pytest.raises(CalibrationError):
            curve.level(-0.1)
        with pytest.raises(CalibrationError):
            curve.level(1.1)


class TestThresholdAdoption:
    def test_adoption_is_monotone_in_time(self):
        curve = AdoptionCurve(start=0.1, end=0.9)
        threshold = 0.5
        states = [
            supports(curve, threshold, t) for t in np.linspace(0, 1, 30)
        ]
        # Once adopted, never abandoned (single flip).
        flips = sum(1 for a, b in zip(states, states[1:]) if a != b)
        assert flips <= 1

    def test_population_fraction_matches_level(self, rng):
        curve = AdoptionCurve(start=0.2, end=0.8)
        thresholds = rng.uniform(size=20_000)
        for t in (0.0, 0.5, 1.0):
            fraction = np.mean(
                [supports(curve, u, t) for u in thresholds]
            )
            assert fraction == pytest.approx(curve.level(t), abs=0.02)

    def test_threshold_validation(self):
        with pytest.raises(CalibrationError):
            supports(AdoptionCurve(start=0.1, end=0.9), 1.5, 0.5)


class TestLinearDrift:
    def test_interpolation(self):
        drift = LinearDrift(start=1.0, end=3.0)
        assert drift.level(0.5) == 2.0

    def test_negative_rejected(self):
        with pytest.raises(CalibrationError):
            LinearDrift(start=-1, end=0)


class TestSizes:
    def test_decade_boundaries(self):
        x = cal.VIEW_HOUR_BASE_X
        assert size_decade(x) == 0
        assert size_decade(x * 10) == 1
        assert size_decade(x * 10 + 1) == 2
        assert size_decade(x * 1e9) == len(cal.SIZE_BUCKET_FRACTIONS) - 1

    def test_rank_percentile_range(self):
        assert size_rank_percentile(1.0) == 0.0
        assert size_rank_percentile(1e20) == 1.0
        mid = size_rank_percentile(cal.VIEW_HOUR_BASE_X * 1000)
        assert 0.3 < mid < 0.8

    def test_draw_respects_bucket_fractions(self, rng):
        draws = draw_view_hours(rng, 8000)
        decades = np.array([size_decade(v) for v in draws])
        for decade, expected in enumerate(cal.SIZE_BUCKET_FRACTIONS):
            observed = float(np.mean(decades == decade))
            assert observed == pytest.approx(expected, abs=0.02)

    def test_catalogue_size_sublinear(self, rng):
        small = np.median(
            [catalogue_size(cal.VIEW_HOUR_BASE_X * 10, rng) for _ in range(200)]
        )
        large = np.median(
            [
                catalogue_size(cal.VIEW_HOUR_BASE_X * 1e4, rng)
                for _ in range(200)
            ]
        )
        ratio = large / small
        assert 1 < ratio < 1000  # grows, but far less than the 1000x size gap


class TestPublishers:
    def test_population_shape(self, rng):
        publishers = generate_publishers(rng, 110)
        assert len(publishers) == 110
        assert len({p.publisher_id for p in publishers}) == 110

    def test_sorted_by_size(self, rng):
        publishers = generate_publishers(rng, 50)
        sizes = [p.daily_view_hours for p in publishers]
        assert sizes == sorted(sizes, reverse=True)

    def test_roles_present(self, rng):
        publishers = generate_publishers(rng, 110)
        roles = {p.role for p in publishers}
        assert SyndicationRole.OWNER in roles
        assert SyndicationRole.FULL_SYNDICATOR in roles

    def test_every_publisher_serves_content(self, rng):
        for publisher in generate_publishers(rng, 60):
            assert publisher.serves_live or publisher.serves_vod
            assert publisher.catalogue_size >= 3
