"""CDNs, assignments, publishers and profiles (repro.entities)."""

import pytest

from repro.constants import ContentType, Platform, Protocol, SyndicationRole
from repro.entities.cdn import CDN, CdnAssignment
from repro.entities.device import SDK
from repro.entities.publisher import Publisher, PublisherProfile


class TestCdn:
    def test_edge_hostname_default(self):
        assert CDN(name="A").edge_hostname == "cdn-a.example.net"

    def test_edge_hostname_override(self):
        cdn = CDN(name="A", hostname_suffix="akamaihd.net")
        assert cdn.edge_hostname == "akamaihd.net"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CDN(name="")


class TestCdnAssignment:
    def test_defaults_to_both_content_types(self):
        assignment = CdnAssignment(cdn=CDN(name="A"))
        assert assignment.serves(ContentType.LIVE)
        assert assignment.serves(ContentType.VOD)
        assert not assignment.vod_only
        assert not assignment.live_only

    def test_vod_only(self):
        assignment = CdnAssignment(
            cdn=CDN(name="A"), content_types=frozenset({ContentType.VOD})
        )
        assert assignment.vod_only
        assert not assignment.serves(ContentType.LIVE)

    def test_empty_content_types_rejected(self):
        with pytest.raises(ValueError):
            CdnAssignment(cdn=CDN(name="A"), content_types=frozenset())


def _publisher(**overrides):
    kwargs = dict(
        publisher_id="pub_x",
        daily_view_hours=1e4,
        role=SyndicationRole.NONE,
        serves_live=True,
        serves_vod=True,
        catalogue_size=100,
    )
    kwargs.update(overrides)
    return Publisher(**kwargs)


class TestPublisher:
    def test_content_types(self):
        assert _publisher().content_types == (
            ContentType.LIVE,
            ContentType.VOD,
        )
        assert _publisher(serves_live=False).content_types == (
            ContentType.VOD,
        )

    def test_must_serve_something(self):
        with pytest.raises(ValueError):
            _publisher(serves_live=False, serves_vod=False)

    def test_positive_view_hours(self):
        with pytest.raises(ValueError):
            _publisher(daily_view_hours=0)

    def test_catalogue_at_least_one(self):
        with pytest.raises(ValueError):
            _publisher(catalogue_size=0)


def _profile(**overrides):
    kwargs = dict(
        publisher=_publisher(),
        protocols=frozenset({Protocol.HLS, Protocol.DASH}),
        platforms=frozenset({Platform.BROWSER, Platform.MOBILE}),
        cdn_assignments=(
            CdnAssignment(cdn=CDN(name="A")),
            CdnAssignment(
                cdn=CDN(name="B"),
                content_types=frozenset({ContentType.VOD}),
            ),
        ),
        sdks=frozenset({SDK("ExoPlayer", "2.9"), SDK("ExoPlayer", "2.10")}),
        device_models=frozenset({"iphone", "android-phone", "chrome-html5"}),
    )
    kwargs.update(overrides)
    return PublisherProfile(**kwargs)


class TestPublisherProfile:
    def test_counts(self):
        profile = _profile()
        assert profile.protocol_count == 2
        assert profile.platform_count == 2
        assert profile.cdn_count == 2

    def test_cdns_for_content_type(self):
        profile = _profile()
        assert profile.cdns_for(ContentType.LIVE) == ("A",)
        assert set(profile.cdns_for(ContentType.VOD)) == {"A", "B"}

    def test_exclusive_cdn_detection(self):
        profile = _profile()
        assert profile.has_content_type_exclusive_cdn(ContentType.VOD)
        assert not profile.has_content_type_exclusive_cdn(ContentType.LIVE)

    def test_combinations_metric(self):
        profile = _profile()
        # 2 CDNs x 2 protocols x 3 device models
        assert profile.management_plane_combinations() == 12

    def test_protocol_titles_metric(self):
        assert _profile().protocol_titles() == 2 * 100

    def test_unique_sdks_counts_browsers(self):
        profile = _profile()
        # 2 SDK versions + 1 browser model (chrome-html5).
        assert profile.unique_sdk_count() == 3

    def test_requires_nonempty_dimensions(self):
        with pytest.raises(ValueError):
            _profile(protocols=frozenset())
        with pytest.raises(ValueError):
            _profile(platforms=frozenset())
        with pytest.raises(ValueError):
            _profile(cdn_assignments=())

    def test_duplicate_cdn_rejected(self):
        with pytest.raises(ValueError):
            _profile(
                cdn_assignments=(
                    CdnAssignment(cdn=CDN(name="A")),
                    CdnAssignment(cdn=CDN(name="A")),
                )
            )
