"""Performance suite: columnar/row parity and parallel determinism.

Three guarantees back the columnar backend (DESIGN.md §8):

* **mask views** — ``filter``/``for_snapshot``/``exclude_publishers``
  return zero-copy views sharing the parent's column store, and views
  compose arbitrarily;
* **parity** — every figure and every dataset aggregation returns the
  same answer on the vectorized path as on the row-at-a-time path
  (floats compared with ``isclose``: summation order differs);
* **determinism** — a parallel (``jobs=N``) synthesis is byte-identical
  to the serial build.
"""

from __future__ import annotations

import dataclasses
import json
import math
from datetime import date, timedelta
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import figures, obs
from repro.constants import ContentType
from repro.core.dimensions import PROTOCOL_COLUMN
from repro.synthesis.generator import generate_default_dataset
from repro.telemetry.dataset import Dataset
from tests.test_telemetry_records import make_record

pytestmark = pytest.mark.perf

GOLDEN_PATH = Path(__file__).parent / "golden" / "figures_seed2018_s6.json"

#: Figures captured in the golden file: deterministic rows without NaN
#: cells (NaN is not valid JSON).
GOLDEN_FIGURES = (
    "T1", "F2a", "F2b", "F2c", "F3a", "F3c", "F6a", "F7",
    "F9a", "F11a", "F11b", "F12a", "S41R",
)


def _rows_close(actual, expected, rel=1e-9):
    """Row-list equality with isclose on floats (NaN equals NaN)."""
    assert len(actual) == len(expected), (
        f"{len(actual)} rows != {len(expected)} rows"
    )
    for row_a, row_b in zip(actual, expected):
        assert set(row_a) == set(row_b)
        for column in row_a:
            value_a, value_b = row_a[column], row_b[column]
            if isinstance(value_a, float) or isinstance(value_b, float):
                both_nan = (
                    isinstance(value_a, float)
                    and isinstance(value_b, float)
                    and math.isnan(value_a)
                    and math.isnan(value_b)
                )
                assert both_nan or value_a == pytest.approx(
                    value_b, rel=rel, abs=1e-12
                ), f"{column}: {value_a} != {value_b}"
            else:
                assert value_a == value_b, (
                    f"{column}: {value_a!r} != {value_b!r}"
                )


def _dicts_close(a, b, rel=1e-9):
    assert set(a) == set(b)
    for key in a:
        assert a[key] == pytest.approx(b[key], rel=rel, abs=1e-12), (
            f"{key}: {a[key]} != {b[key]}"
        )


def _row_backed(result):
    """The same ecosystem with the dataset on the row backend."""
    return dataclasses.replace(
        result,
        dataset=Dataset(result.dataset.records, columnar=False),
    )


# ---------------------------------------------------------------------------
# Mask-view composition
# ---------------------------------------------------------------------------


class TestMaskViews:
    def _records(self):
        records = []
        for day, publisher, video, kind in (
            (0, "p1", "vid_a", ContentType.VOD),
            (0, "p1", "vid_b", ContentType.LIVE),
            (0, "p2", "vid_a", ContentType.VOD),
            (14, "p1", "vid_c", ContentType.VOD),
            (14, "p2", "vid_a", ContentType.LIVE),
            (14, "p3", "vid_d", ContentType.VOD),
        ):
            records.append(
                make_record(
                    snapshot=date(2016, 1, 4) + timedelta(days=day),
                    publisher_id=publisher,
                    video_id=video,
                    content_type=kind,
                )
            )
        return tuple(records)

    def test_views_share_the_parent_store(self):
        dataset = Dataset(self._records())
        snap = dataset.for_snapshot(date(2016, 1, 4))
        live = snap.filter(lambda r: r.content_type is ContentType.LIVE)
        assert snap._store is dataset._store
        assert live._store is dataset._store
        assert len(snap) == 3 and len(live) == 1

    def test_filter_of_filter_composes(self):
        dataset = Dataset(self._records())
        p1 = dataset.filter(lambda r: r.publisher_id == "p1")
        vod = p1.filter(lambda r: r.content_type is ContentType.VOD)
        assert {r.video_id for r in vod} == {"vid_a", "vid_c"}
        assert vod._store is dataset._store

    def test_exclude_then_snapshot(self):
        dataset = Dataset(self._records())
        rest = dataset.exclude_publishers(["p1"])
        snap = rest.for_snapshot(date(2016, 1, 18))
        assert snap.publishers() == {"p2", "p3"}
        assert snap._store is dataset._store

    def test_snapshot_then_exclude_matches_reverse_order(self):
        dataset = Dataset(self._records())
        a = dataset.for_snapshot(date(2016, 1, 4)).exclude_publishers(
            ["p2"]
        )
        b = dataset.exclude_publishers(["p2"]).for_snapshot(
            date(2016, 1, 4)
        )
        assert a.records == b.records

    def test_views_do_not_mutate_the_parent(self):
        dataset = Dataset(self._records())
        dataset.filter(lambda r: False)
        dataset.exclude_publishers(["p1", "p2", "p3"])
        assert len(dataset) == 6
        assert dataset.total_views() == pytest.approx(6 * 25.0)

    def test_view_aggregations_match_rebuilt_dataset(self):
        dataset = Dataset(self._records())
        view = dataset.exclude_publishers(["p3"]).filter(
            lambda r: r.content_type is ContentType.VOD
        )
        rebuilt = Dataset(view.records)
        _dicts_close(
            view.view_hours_by("publisher_id"),
            rebuilt.view_hours_by("publisher_id"),
        )
        assert view.distinct_video_ids() == rebuilt.distinct_video_ids()

    def test_view_caches_are_per_view(self):
        dataset = Dataset(self._records())
        snap = dataset.for_snapshot(date(2016, 1, 4))
        assert dataset.for_snapshot(date(2016, 1, 4)) is snap
        assert snap.snapshots() == [date(2016, 1, 4)]
        assert sorted(dataset.snapshots()) == [
            date(2016, 1, 4),
            date(2016, 1, 18),
        ]

    def test_obs_counters_track_dispatch(self):
        ctx = obs.configure(enabled=True)
        ctx.reset()
        try:
            dataset = Dataset(self._records())
            dataset.view_hours_by("publisher_id")
            dataset.filter(lambda r: True)
            hits = obs.metrics().counter("dataset.columnar_hits").value
            fallbacks = obs.metrics().counter(
                "dataset.row_fallbacks"
            ).value
            assert hits >= 1
            assert fallbacks >= 1
        finally:
            ctx.configure(enabled=False)
            ctx.reset()


# ---------------------------------------------------------------------------
# Row/columnar aggregation parity (property-based)
# ---------------------------------------------------------------------------

_SNAPSHOTS = (date(2016, 1, 4), date(2017, 1, 2), date(2018, 3, 12))

_record_st = st.builds(
    make_record,
    snapshot=st.sampled_from(_SNAPSHOTS),
    publisher_id=st.sampled_from(("p1", "p2", "p3", "p4")),
    video_id=st.sampled_from(("vid_a", "vid_b", "vid_c")),
    weight=st.integers(min_value=1, max_value=5).map(float),
    view_duration_hours=st.floats(
        min_value=0.01, max_value=4.0, allow_nan=False
    ),
    content_type=st.sampled_from(ContentType),
    sdk_name=st.sampled_from(("RokuSDK", "WebSDK", None)),
)


class TestAggregationParity:
    @given(records=st.lists(_record_st, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_aggregations_agree(self, records):
        columnar = Dataset(records)
        row = Dataset(records, columnar=False)
        assert columnar.snapshots() == row.snapshots()
        assert columnar.publishers() == row.publishers()
        assert columnar.total_view_hours() == pytest.approx(
            row.total_view_hours()
        )
        for key in ("publisher_id", "snapshot", "sdk_name",
                    PROTOCOL_COLUMN):
            _dicts_close(
                columnar.view_hours_by(key), row.view_hours_by(key)
            )
            _dicts_close(columnar.views_by(key), row.views_by(key))
        _dicts_close(
            columnar.publisher_view_hours(), row.publisher_view_hours()
        )
        assert columnar.distinct_video_ids() == row.distinct_video_ids()
        for publisher in columnar.publishers():
            assert columnar.distinct_video_ids(
                publisher
            ) == row.distinct_video_ids(publisher)
        assert columnar.publishers_per_value(
            "video_id"
        ) == row.publishers_per_value("video_id")
        assert columnar.values_per_publisher(
            "video_id"
        ) == row.values_per_publisher("video_id")

    @given(records=st.lists(_record_st, min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_explode_preserves_aggregations(self, records):
        weighted = Dataset(records)
        exploded = weighted.explode()
        assert exploded.columnar
        assert len(exploded) == int(
            sum(r.weight for r in records)
        )
        assert exploded.total_views() == pytest.approx(
            weighted.total_views()
        )
        _dicts_close(
            exploded.view_hours_by("publisher_id"),
            weighted.view_hours_by("publisher_id"),
            rel=1e-7,
        )
        assert exploded.distinct_video_ids() == (
            weighted.distinct_video_ids()
        )

    @given(records=st.lists(_record_st, min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_callable_keys_fall_back_identically(self, records):
        columnar = Dataset(records)
        row = Dataset(records, columnar=False)
        key = lambda r: (r.publisher_id, r.content_type)  # noqa: E731
        _dicts_close(columnar.view_hours_by(key), row.view_hours_by(key))


# ---------------------------------------------------------------------------
# Figure parity across seeds (row backend vs columnar backend)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def eco_alt():
    """A second, differently seeded small build (parity across seeds)."""
    return generate_default_dataset(seed=7, snapshot_limit=3)


class TestFigureParity:
    def test_every_figure_matches_row_backend_seed2018(self, eco):
        row_backed = _row_backed(eco)
        for figure_id in figures.figure_ids():
            _rows_close(
                figures.run_figure(figure_id, eco),
                figures.run_figure(figure_id, row_backed),
            )

    def test_every_figure_matches_row_backend_alt_seed(self, eco_alt):
        row_backed = _row_backed(eco_alt)
        for figure_id in figures.figure_ids():
            _rows_close(
                figures.run_figure(figure_id, eco_alt),
                figures.run_figure(figure_id, row_backed),
            )


# ---------------------------------------------------------------------------
# Parallel synthesis determinism
# ---------------------------------------------------------------------------


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def builds(self):
        serial = generate_default_dataset(seed=99, snapshot_limit=3)
        parallel = generate_default_dataset(
            seed=99, snapshot_limit=3, jobs=2
        )
        return serial, parallel

    def test_records_identical(self, builds):
        serial, parallel = builds
        assert serial.dataset.records == parallel.dataset.records

    def test_saved_bytes_identical(self, builds, tmp_path):
        serial, parallel = builds
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial.dataset.save(serial_path)
        parallel.dataset.save(parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_figure_rows_identical(self, builds):
        serial, parallel = builds
        for figure_id in ("F2a", "F6a", "F12a", "S44"):
            _rows_close(
                figures.run_figure(figure_id, serial),
                figures.run_figure(figure_id, parallel),
                rel=0,
            )


# ---------------------------------------------------------------------------
# Golden figures (seed 2018, 6 snapshots)
# ---------------------------------------------------------------------------


class TestGoldenFigures:
    def test_figures_match_golden_rows(self, eco):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert sorted(golden) == sorted(GOLDEN_FIGURES)
        for figure_id in GOLDEN_FIGURES:
            _rows_close(
                figures.run_figure(figure_id, eco), golden[figure_id]
            )
