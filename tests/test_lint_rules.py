"""replint: rule pack, engine, config, baseline, and CLI.

Every rule code has a paired bad/good fixture: the bad source must
produce the code, the good source must stay silent, both linted *at a
path inside the rule's scope* so the pairing exercises detection, not
scoping.  Scoping gets its own tests.  The suite ends with the
acceptance check: the real ``src/`` tree lints clean with no baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import cli
from repro.lint import (
    LintConfig,
    lint_source,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.baseline import assign_occurrences, split_by_baseline
from repro.lint.config import _parse_toml_subset
from repro.lint.engine import PARSE_ERROR_CODE
from repro.lint.findings import Severity
from repro.lint.registry import LintRuleError, all_rules, get_rule

pytestmark = pytest.mark.lint

ROOT = Path(__file__).resolve().parent.parent


def codes(source: str, path: str) -> list:
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# Paired fixtures: (path, bad source, good source) per rule code
# ---------------------------------------------------------------------------

FIXTURES = {
    "RPL001": (
        "src/repro/synthesis/sampler.py",
        """
        import random
        import numpy as np

        def jitter(values):
            rng = random.Random()
            shuffled = np.random.permutation(values)
            gen = np.random.default_rng()
            return rng.random() + random.random() + gen.random() + shuffled[0]
        """,
        """
        import random
        import numpy as np

        def jitter(values, seed):
            rng = random.Random(seed)
            gen = np.random.default_rng(seed)
            return rng.random() + gen.permutation(values)[0]
        """,
    ),
    "RPL002": (
        "src/repro/stats/windows.py",
        """
        import time
        from datetime import date, datetime

        def stamp_rows(rows):
            started = time.time()
            today = date.today()
            now = datetime.now()
            return [(started, today, now, row) for row in rows]
        """,
        """
        import time

        def measure(fn, clock=time.monotonic):
            before = clock()
            fn()
            return clock() - before
        """,
    ),
    "RPL003": (
        "src/repro/telemetry/rollup.py",
        """
        def fold(records):
            total = 0
            for record in records:
                try:
                    total += record.view_hours
                except Exception:
                    continue
            return total
        """,
        """
        from repro.errors import DatasetError

        def fold(records, metrics):
            total = 0
            for record in records:
                try:
                    total += record.view_hours
                except DatasetError:
                    continue
                except Exception:
                    metrics.count("fold_crash")
                    raise
            return total
        """,
    ),
    "RPL004": (
        "src/repro/stats/spread.py",
        """
        def variance_ratio(ss_num, ss_den):
            if ss_den == 0.0:
                return 1.0
            if ss_num != 0.0:
                return ss_num / ss_den
            return 0.0
        """,
        """
        import math

        def variance_ratio(ss_num, ss_den, n):
            if n == 0:
                return 1.0
            if math.isclose(ss_den, 0.0, abs_tol=1e-12):
                return 1.0
            return ss_num / ss_den
        """,
    ),
    "RPL005": (
        "src/repro/delivery/budget.py",
        """
        def total_stall(startup_ms, rebuffer_s):
            return startup_ms + rebuffer_s

        def headroom(link_kbps, overhead_bps):
            link_kbps -= overhead_bps
            return link_kbps
        """,
        """
        from repro import units

        def total_stall(startup_ms, rebuffer_s):
            return startup_ms / 1000.0 + rebuffer_s

        def storage(bitrate_kbps, duration_seconds, base_seconds):
            padded_seconds = duration_seconds + base_seconds
            return units.rendition_bytes(bitrate_kbps, padded_seconds)
        """,
    ),
    "RPL006": (
        "src/repro/figures.py",
        """
        def protocol_rows(records):
            names = set(r.protocol for r in records)
            rows = []
            for name in names | {"rtmp"}:
                pass
            for name in set(records):
                rows.append({"protocol": name})
            rows.extend({"p": n} for n in {"hls", "dash"})
            return rows, ",".join({r.cdn for r in records})
        """,
        """
        def protocol_rows(records):
            names = sorted(set(r.protocol for r in records))
            rows = [{"protocol": name} for name in names]
            rows.extend({"p": n} for n in sorted({"hls", "dash"}))
            return rows, ",".join(sorted({r.cdn for r in records}))
        """,
    ),
    "RPL007": (
        "src/repro/telemetry/ingest.py",
        """
        import time

        def fold(events, deadline):
            started = time.monotonic()
            print("folding", len(events))
            return [e for e in events if started < deadline]
        """,
        """
        import time

        from repro import obs

        def fold(events, clock=time.monotonic):
            with obs.span("ingest.fold", events=len(events)) as span:
                span.set(started=clock())
            obs.emit("ingest.fold.done", events=len(events))
            return list(events)
        """,
    ),
    "RPL008": (
        "src/repro/core/status.py",
        """
        def announce(step, total):
            print(f"step {step}/{total}")
            print("done")
            return step
        """,
        """
        from repro import obs

        def announce(step, total):
            obs.emit("core.step", step=step, total=total)
            return step
        """,
    ),
}


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_bad_fixture_fires(code):
    path, bad, _ = FIXTURES[code]
    found = codes(bad, path)
    assert code in found, f"{code} did not fire on its bad fixture"
    assert set(found) == {code}, (
        f"bad fixture for {code} tripped unrelated rules: {sorted(set(found))}"
    )


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_good_fixture_silent(code):
    path, _, good = FIXTURES[code]
    assert codes(good, path) == [], f"{code} fired on its good fixture"


def test_every_registered_rule_has_a_fixture_pair():
    assert sorted(cls.code for cls in all_rules()) == sorted(FIXTURES)


# ---------------------------------------------------------------------------
# Rule-specific details
# ---------------------------------------------------------------------------


class TestRuleDetails:
    def test_rpl001_counts_each_unseeded_site(self):
        path, bad, _ = FIXTURES["RPL001"]
        assert codes(bad, path).count("RPL001") == 4

    def test_rpl001_out_of_scope_path_silent(self):
        _, bad, _ = FIXTURES["RPL001"]
        assert codes(bad, "src/repro/core/counts.py") == []

    def test_rpl001_seeded_constructor_keyword(self):
        src = """
        import random
        rng = random.Random(x=3)
        """
        assert codes(src, "src/repro/playback/abr.py") == []

    def test_rpl002_exempt_in_cli(self):
        _, bad, _ = FIXTURES["RPL002"]
        assert codes(bad, "src/repro/cli.py") == []

    def test_rpl002_exempt_in_benchmarks(self):
        _, bad, _ = FIXTURES["RPL002"]
        assert codes(bad, "benchmarks/bench_lint.py") == []

    def test_rpl003_bare_except_flagged(self):
        src = """
        try:
            risky()
        except:
            pass
        """
        assert codes(src, "src/repro/anything.py") == ["RPL003"]

    def test_rpl003_reraise_is_clean(self):
        src = """
        try:
            risky()
        except Exception:
            log()
            raise
        """
        assert codes(src, "src/repro/anything.py") == []

    def test_rpl003_tuple_containing_exception_flagged(self):
        src = """
        try:
            risky()
        except (ValueError, Exception):
            pass
        """
        assert codes(src, "src/repro/anything.py") == ["RPL003"]

    def test_rpl004_integer_equality_allowed(self):
        assert codes("ok = n == 0", "src/repro/stats/a.py") == []

    def test_rpl004_only_in_stats(self):
        assert codes("bad = x == 0.0", "src/repro/core/a.py") == []
        assert codes("bad = x == 0.0", "src/repro/stats/a.py") == ["RPL004"]

    def test_rpl005_same_unit_aliases_allowed(self):
        src = "total = duration_s + extra_seconds"
        assert codes(src, "src/repro/delivery/a.py") == []

    def test_rpl005_multiplication_converts_units(self):
        src = "footprint = bitrate_kbps * duration_seconds"
        assert codes(src, "src/repro/delivery/a.py") == []

    def test_rpl005_hours_vs_seconds(self):
        src = "oops = view_hours + startup_seconds"
        assert codes(src, "src/repro/core/a.py") == ["RPL005"]

    def test_rpl006_sorted_wrapping_silences(self):
        src = """
        rows = [p for p in sorted({"a", "b"})]
        """
        assert codes(src, "src/repro/figures.py") == []

    def test_rpl006_only_in_figure_modules(self):
        src = "rows = list({1, 2, 3})"
        assert codes(src, "src/repro/core/a.py") == []
        assert codes(src, "src/repro/experiments.py") == ["RPL006"]

    def test_rpl007_counts_each_bypass_site(self):
        path, bad, _ = FIXTURES["RPL007"]
        assert codes(bad, path).count("RPL007") == 2

    def test_rpl007_clock_module_is_the_exemption(self):
        src = "import time\nnow = time.monotonic()\n"
        assert codes(src, "src/repro/obs/clock.py") == []
        assert codes(src, "src/repro/obs/tracing.py") == ["RPL007"]

    def test_rpl007_out_of_scope_path_silent(self):
        _, bad, _ = FIXTURES["RPL007"]
        found = codes(bad, "src/repro/core/counts.py")
        # The print() hands over to RPL008 outside instrumented
        # modules; the clock read is RPL007-only and must not leak.
        assert "RPL007" not in found
        assert found == ["RPL008"]

    def test_rpl007_clock_reference_is_not_a_call(self):
        src = "import time\ndef f(clock=time.monotonic):\n    return clock\n"
        assert codes(src, "src/repro/resilience.py") == []

    def test_rpl008_counts_each_print_site(self):
        path, bad, _ = FIXTURES["RPL008"]
        assert codes(bad, path).count("RPL008") == 2

    def test_rpl008_cli_is_exempt(self):
        _, bad, _ = FIXTURES["RPL008"]
        assert codes(bad, "src/repro/cli.py") == []

    def test_rpl008_defers_to_rpl007_in_instrumented_modules(self):
        _, bad, _ = FIXTURES["RPL008"]
        found = codes(bad, "src/repro/telemetry/ingest.py")
        assert "RPL008" not in found
        assert found.count("RPL007") == 2

    def test_rpl008_out_of_tree_path_silent(self):
        _, bad, _ = FIXTURES["RPL008"]
        assert codes(bad, "tests/test_whatever.py") == []
        assert codes(bad, "benchmarks/bench_x.py") == []


# ---------------------------------------------------------------------------
# Engine mechanics: pragmas, parse errors, fingerprints, baseline
# ---------------------------------------------------------------------------


class TestEngine:
    def test_pragma_suppresses_named_code(self):
        src = "bad = x == 0.0  # replint: disable=RPL004"
        assert codes(src, "src/repro/stats/a.py") == []

    def test_pragma_without_codes_suppresses_line(self):
        src = "bad = x == 0.0  # replint: disable"
        assert codes(src, "src/repro/stats/a.py") == []

    def test_pragma_leaves_other_lines_alone(self):
        src = """
        a = x == 0.0  # replint: disable=RPL004
        b = y != 1.5
        """
        findings = lint_source(textwrap.dedent(src), "src/repro/stats/a.py")
        assert [f.code for f in findings] == ["RPL004"]
        assert findings[0].line == 3

    def test_syntax_error_reported_as_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/stats/a.py")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]
        assert findings[0].severity is Severity.ERROR

    def test_parser_resource_exhaustion_reported_not_raised(self):
        """Pathological nesting must become RPL000, not kill the run."""
        hostile = "-" * 100000 + "x"
        findings = lint_source(hostile, "src/repro/stats/a.py")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]
        assert findings[0].severity is Severity.ERROR

    def test_null_byte_source_reported_not_raised(self):
        findings = lint_source("x = 1\0\n", "src/repro/stats/a.py")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_overlapping_paths_lint_each_file_once(self, tmp_path):
        """`repro lint src src/pkg` must not double-report findings."""
        pkg = tmp_path / "src" / "stats"
        pkg.mkdir(parents=True)
        (pkg / "guard.py").write_text("flag = value == 0.0\n")
        config = LintConfig(root=str(tmp_path))
        result = run_lint(
            ["src", "src/stats", "src/stats/guard.py"],
            config=config,
            use_baseline=False,
        )
        assert result.files_checked == 1
        assert [f.code for f in result.findings] == ["RPL004"]

    def test_symlink_alias_lints_each_file_once(self, tmp_path):
        """A symlinked alias of a tree is the same tree, not a copy."""
        pkg = tmp_path / "src" / "stats"
        pkg.mkdir(parents=True)
        (pkg / "guard.py").write_text("flag = value == 0.0\n")
        alias = tmp_path / "alias"
        try:
            alias.symlink_to(tmp_path / "src", target_is_directory=True)
        except OSError:
            pytest.skip("platform does not allow symlinks")
        config = LintConfig(root=str(tmp_path))
        result = run_lint(
            ["src", "alias"], config=config, use_baseline=False
        )
        assert result.files_checked == 1
        assert [f.code for f in result.findings] == ["RPL004"]

    def test_fingerprint_survives_line_moves(self):
        src_a = "bad = x == 0.0"
        src_b = "# a new leading comment\n\nbad = x == 0.0"
        (fa,) = lint_source(src_a, "src/repro/stats/a.py")
        (fb,) = lint_source(src_b, "src/repro/stats/a.py")
        assert fa.line != fb.line
        assert fa.fingerprint() == fb.fingerprint()

    def test_identical_lines_get_distinct_fingerprints(self):
        src = "a = x == 0.0\nb = y == 1.0\n"
        findings = assign_occurrences(
            lint_source(src, "src/repro/stats/a.py")
        )
        prints = {f.fingerprint() for f in findings}
        assert len(prints) == 2

    def test_baseline_roundtrip(self, tmp_path):
        findings = lint_source("bad = x == 0.0", "src/repro/stats/a.py")
        baseline_file = tmp_path / "baseline.json"
        assert write_baseline(str(baseline_file), findings) == 1
        suppressions = load_baseline(str(baseline_file))
        fresh, suppressed = split_by_baseline(findings, suppressions)
        assert fresh == []
        assert len(suppressed) == 1

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        old = lint_source("bad = x == 0.0", "src/repro/stats/a.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), old)
        both = lint_source(
            "bad = x == 0.0\nworse = y != 2.5\n", "src/repro/stats/a.py"
        )
        fresh, suppressed = split_by_baseline(
            both, load_baseline(str(baseline_file))
        )
        assert [f.source_line for f in fresh] == ["worse = y != 2.5"]
        assert len(suppressed) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"not": "a baseline"}')
        with pytest.raises(LintRuleError):
            load_baseline(str(bad))


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


class TestConfig:
    def _write_project(self, tmp_path, body):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(body))

    def test_defaults_without_pyproject(self, tmp_path):
        config = LintConfig.load(str(tmp_path))
        assert config.paths == ["src"]
        assert config.baseline_path == ".replint-baseline.json"

    def test_loads_replint_section(self, tmp_path):
        self._write_project(
            tmp_path,
            """
            [tool.replint]
            paths = ["pkg"]
            baseline = "custom-baseline.json"
            disable = ["RPL005"]

            [tool.replint.rules.RPL004]
            scope = ["pkg/math/*"]
            severity = "warning"
            """,
        )
        config = LintConfig.load(str(tmp_path))
        assert config.paths == ["pkg"]
        assert config.baseline_path == "custom-baseline.json"
        assert not config.rule_enabled("RPL005")
        override = config.override_for("RPL004")
        assert override.scope == ["pkg/math/*"]
        assert override.severity is Severity.WARNING

    def test_disabled_rule_does_not_run(self, tmp_path):
        self._write_project(
            tmp_path,
            """
            [tool.replint]
            disable = ["RPL004"]
            """,
        )
        config = LintConfig.load(str(tmp_path))
        assert lint_source("x = y == 0.0", "src/repro/stats/a.py", config) == []

    def test_scope_override_replaces_default(self, tmp_path):
        self._write_project(
            tmp_path,
            """
            [tool.replint.rules.RPL004]
            scope = ["pkg/math/*"]
            """,
        )
        config = LintConfig.load(str(tmp_path))
        assert lint_source("x = y == 0.0", "src/repro/stats/a.py", config) == []
        hits = lint_source("x = y == 0.0", "pkg/math/a.py", config)
        assert [f.code for f in hits] == ["RPL004"]

    def test_fallback_parser_matches_tomllib(self):
        sample = textwrap.dedent(
            """
            [tool.replint]
            paths = ["src", "tools"]
            disable = []
            baseline = ".replint-baseline.json"

            [tool.replint.rules.RPL002]
            exempt = ["*/cli.py", "benchmarks/*"]
            """
        )
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_subset(sample) == tomllib.loads(sample)

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(LintRuleError):
            get_rule("RPL999")


# ---------------------------------------------------------------------------
# CLI and whole-tree acceptance
# ---------------------------------------------------------------------------


class TestCli:
    def _seed_project(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.replint]\npaths = ["pkg"]\n'
        )
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "stats").mkdir()
        (pkg / "stats" / "guard.py").write_text("flag = value == 0.0\n")
        return tmp_path

    def test_lint_reports_finding_and_fails(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        exit_code = cli.main(["lint", "--root", str(root)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "RPL004" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        exit_code = cli.main(
            ["lint", "--root", str(root), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["summary"]["new_errors"] == 1
        assert payload["findings"][0]["code"] == "RPL004"

    def test_baseline_flag_snapshots_then_passes(self, tmp_path, capsys):
        root = self._seed_project(tmp_path)
        assert cli.main(["lint", "--root", str(root), "--baseline"]) == 0
        assert (root / ".replint-baseline.json").is_file()
        capsys.readouterr()
        assert cli.main(["lint", "--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_overrides_suppressions(self, tmp_path):
        root = self._seed_project(tmp_path)
        assert cli.main(["lint", "--root", str(root), "--baseline"]) == 0
        assert cli.main(["lint", "--root", str(root), "--no-baseline"]) == 1


class TestAcceptance:
    def test_src_tree_is_clean_with_empty_baseline(self):
        """The headline invariant: `repro lint src/` exits 0, no baseline."""
        config = LintConfig.load(str(ROOT))
        result = run_lint(
            [str(ROOT / "src")], config=config, use_baseline=False
        )
        assert result.files_checked > 80
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )
        assert result.exit_code == 0

    def test_cli_src_tree_clean(self, capsys):
        exit_code = cli.main(
            ["lint", str(ROOT / "src"), "--root", str(ROOT)]
        )
        assert exit_code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_repo_baseline_is_absent_or_empty(self):
        baseline = ROOT / ".replint-baseline.json"
        if baseline.is_file():
            assert load_baseline(str(baseline)) == {}
