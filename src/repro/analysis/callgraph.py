"""Project-wide call graph with lightweight method binding.

Layer two of repgraph.  For every function (plus a ``<module>``
pseudo-function per file for import-time code) the builder records the
calls it can resolve statically:

* dotted references through each module's symbol table
  (``cal.validate()`` with ``import ...calibration as cal``),
* ``self.method()`` / ``cls.method()`` bound through the class
  hierarchy, **plus** edges to every override in project-local
  subclasses (conservative dynamic dispatch),
* ``obj.method()`` where ``obj`` is a local constructed from a known
  class (``sampler = SessionSampler(...)``) — a one-level local type
  inference, which is enough for the pipeline's builder style,
* constructor calls, which edge into ``__init__`` when it exists.

The builder also records every **fan-out site**: a call that ships a
callable to a process/thread pool (``pool.map``, ``executor.submit``,
``multiprocessing.Pool`` methods, or any ``parallel_map``-style
helper), with ``functools.partial`` unwrapped.  The RNG-stream and
purity analyses hang off these sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    normalize_dotted,
)

MODULE_FN = "<module>"

#: Pool constructors recognized for fan-out tracking.
POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Pool methods that take a callable as their first argument.
POOL_METHODS = frozenset(
    {"map", "submit", "imap", "imap_unordered", "starmap", "apply",
     "apply_async", "map_async", "starmap_async"}
)

#: Free functions that fan a callable out over units of work.
FANOUT_HELPERS = ("parallel_map",)

_PARTIAL = frozenset({"functools.partial", "partial"})


@dataclass(frozen=True)
class Edge:
    """One resolved call: caller -> callee at a source line."""

    caller: str
    callee: str
    line: int


@dataclass
class FanoutSite:
    """A callable crossing a parallel fan-out boundary."""

    caller: str
    path: str
    line: int
    pool: str  # resolved pool kind or helper name
    worker: Optional[str]  # function qualname, "<lambda>", or None
    lambda_node: Optional[ast.Lambda] = None


class CallGraph:
    """Adjacency over function qualnames, with deterministic iteration."""

    def __init__(self) -> None:
        self._edges: Dict[str, Set[Tuple[str, int]]] = {}
        self._reverse: Dict[str, Set[str]] = {}
        self.fanouts: List[FanoutSite] = []
        self.unresolved_calls: int = 0
        self.resolved_calls: int = 0

    def add_edge(self, caller: str, callee: str, line: int) -> None:
        self._edges.setdefault(caller, set()).add((callee, line))
        self._reverse.setdefault(callee, set()).add(caller)
        self.resolved_calls += 1

    def callees(self, qualname: str) -> List[str]:
        return sorted({c for c, _ in self._edges.get(qualname, ())})

    def callers(self, qualname: str) -> List[str]:
        return sorted(self._reverse.get(qualname, ()))

    def edges(self) -> List[Edge]:
        out = [
            Edge(caller, callee, line)
            for caller, targets in self._edges.items()
            for callee, line in targets
        ]
        return sorted(out, key=lambda e: (e.caller, e.callee, e.line))

    def nodes(self) -> List[str]:
        names = set(self._edges)
        names.update(self._reverse)
        return sorted(names)

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Every function transitively called from ``roots``."""
        seen: Set[str] = set()
        stack = sorted(set(roots))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(c for c in self.callees(current) if c not in seen)
        return seen

    def shortest_path(
        self, root: str, target: str
    ) -> Optional[List[str]]:
        """Deterministic BFS path ``root -> ... -> target``."""
        if root == target:
            return [root]
        parents: Dict[str, str] = {}
        queue = [root]
        seen = {root}
        while queue:
            current = queue.pop(0)
            for callee in self.callees(current):
                if callee in seen:
                    continue
                parents[callee] = current
                if callee == target:
                    path = [callee]
                    while path[-1] != root:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(callee)
                queue.append(callee)
        return None

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready shape for ``--graph-out``."""
        return {
            "nodes": self.nodes(),
            "edges": [
                {"caller": e.caller, "callee": e.callee, "line": e.line}
                for e in self.edges()
            ],
            "fanouts": [
                {
                    "caller": site.caller,
                    "path": site.path,
                    "line": site.line,
                    "pool": site.pool,
                    "worker": site.worker,
                }
                for site in sorted(
                    self.fanouts,
                    key=lambda s: (s.path, s.line, s.pool, s.worker or ""),
                )
            ],
            "stats": {
                "resolved_calls": self.resolved_calls,
                "unresolved_calls": self.unresolved_calls,
            },
        }


@dataclass
class _FunctionScope:
    """Per-function context while collecting calls."""

    info: Optional[FunctionInfo]
    module: ModuleInfo
    qualname: str
    local_types: Dict[str, str] = field(default_factory=dict)
    pool_vars: Dict[str, str] = field(default_factory=dict)


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call and fan-out site in the project."""
    graph = CallGraph()
    for name in sorted(project.modules):
        module = project.modules[name]
        if module.tree is None:
            continue
        scope = _FunctionScope(
            info=None, module=module, qualname=f"{name}.{MODULE_FN}"
        )
        _collect(project, graph, scope, module.tree)
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        module = project.modules[info.module]
        scope = _FunctionScope(info=info, module=module, qualname=qualname)
        _infer_param_types(project, scope)
        _collect(project, graph, scope, info.node)
    return graph


def _infer_param_types(project: Project, scope: _FunctionScope) -> None:
    info = scope.info
    if info is None or not isinstance(
        info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        return
    args = info.node.args
    if info.cls is not None and args.args:
        scope.local_types[args.args[0].arg] = info.cls
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        dotted = _dotted_name(arg.annotation)
        if dotted is None:
            continue
        resolved = normalize_dotted(project.resolve(scope.module, dotted))
        if resolved in project.classes:
            scope.local_types.setdefault(arg.arg, resolved)


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _collect(
    project: Project,
    graph: CallGraph,
    scope: _FunctionScope,
    root: ast.AST,
) -> None:
    """Walk one function body (not descending into nested defs)."""
    for node in _body_walk(root):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            _track_assignment(project, scope, node)
        elif isinstance(node, ast.withitem):
            _track_withitem(project, scope, node)
        elif isinstance(node, ast.Call):
            _handle_call(project, graph, scope, node)


def _body_walk(root: ast.AST):
    """``ast.walk`` that stops at nested function/class boundaries."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _value_type(
    project: Project, scope: _FunctionScope, value: ast.AST
) -> Tuple[Optional[str], Optional[str]]:
    """(class qualname, pool kind) a value expression constructs."""
    if not isinstance(value, ast.Call):
        return None, None
    dotted = _dotted_name(value.func)
    if dotted is None:
        return None, None
    resolved = normalize_dotted(project.resolve(scope.module, dotted))
    if resolved in POOL_CONSTRUCTORS:
        return None, resolved
    if resolved in project.classes:
        return resolved, None
    return None, None


def _track_assignment(
    project: Project, scope: _FunctionScope, node: ast.AST
) -> None:
    targets: List[ast.expr]
    if isinstance(node, ast.Assign):
        targets = node.targets
        value = node.value
    else:
        targets = [node.target]
        value = node.value
    if value is None:
        return
    cls, pool = _value_type(project, scope, value)
    for target in targets:
        if not isinstance(target, ast.Name):
            continue
        if cls is not None:
            scope.local_types[target.id] = cls
        elif pool is not None:
            scope.pool_vars[target.id] = pool
        else:
            scope.local_types.pop(target.id, None)
            scope.pool_vars.pop(target.id, None)


def _track_withitem(
    project: Project, scope: _FunctionScope, node: ast.withitem
) -> None:
    if node.optional_vars is None or not isinstance(
        node.optional_vars, ast.Name
    ):
        return
    cls, pool = _value_type(project, scope, node.context_expr)
    if cls is not None:
        scope.local_types[node.optional_vars.id] = cls
    elif pool is not None:
        scope.pool_vars[node.optional_vars.id] = pool


def _handle_call(
    project: Project,
    graph: CallGraph,
    scope: _FunctionScope,
    node: ast.Call,
) -> None:
    fanout = _fanout_for(project, scope, node)
    if fanout is not None:
        graph.fanouts.append(fanout)
        if fanout.worker and fanout.worker != "<lambda>":
            graph.add_edge(scope.qualname, fanout.worker, node.lineno)
        return
    targets = _resolve_callable(project, scope, node.func)
    if not targets:
        graph.unresolved_calls += 1
        return
    for target in targets:
        graph.add_edge(scope.qualname, target, node.lineno)


def _resolve_callable(
    project: Project, scope: _FunctionScope, func: ast.AST
) -> List[str]:
    """Possible project-local targets of a call expression."""
    dotted = _dotted_name(func)
    if dotted is None:
        return []
    # obj.method() through the one-level local type environment
    # (includes self/cls via the seeded parameter types).
    head, _, rest = dotted.partition(".")
    if rest and head in scope.local_types and "." not in rest:
        return _bind_method(project, scope.local_types[head], rest)
    resolved = normalize_dotted(project.resolve(scope.module, dotted))
    if resolved in project.functions:
        return [resolved]
    if resolved in project.classes:
        init = project.lookup_method(resolved, "__init__")
        return [init] if init else []
    # Attribute call whose base is a project class (Class.method(...)).
    base, _, attr = resolved.rpartition(".")
    if base in project.classes:
        return _bind_method(project, base, attr)
    return []


def _bind_method(
    project: Project, cls: str, method: str
) -> List[str]:
    """Bind through the MRO, then add subclass overrides."""
    targets: List[str] = []
    bound = project.lookup_method(cls, method)
    if bound is not None:
        targets.append(bound)
    for sub in project.subclasses(cls):
        info = project.classes.get(sub)
        if info is None:
            continue
        own = info.methods.get(method)
        if own is not None and own not in targets:
            # Only true overrides defined on the subclass itself.
            if own.startswith(sub + "."):
                targets.append(own)
    return sorted(targets)


def _fanout_for(
    project: Project, scope: _FunctionScope, node: ast.Call
) -> Optional[FanoutSite]:
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    pool: Optional[str] = None
    callable_expr: Optional[ast.AST] = None
    head, _, rest = dotted.partition(".")
    if rest and head in scope.pool_vars and rest in POOL_METHODS:
        pool = scope.pool_vars[head]
        if node.args:
            callable_expr = node.args[0]
    else:
        resolved = normalize_dotted(project.resolve(scope.module, dotted))
        if resolved.rpartition(".")[2] in FANOUT_HELPERS or any(
            resolved.endswith(h) for h in FANOUT_HELPERS
        ):
            pool = resolved
            if node.args:
                callable_expr = node.args[0]
    if pool is None:
        return None
    worker, lambda_node = _worker_target(project, scope, callable_expr)
    return FanoutSite(
        caller=scope.qualname,
        path=scope.module.path,
        line=node.lineno,
        pool=pool,
        worker=worker,
        lambda_node=lambda_node,
    )


def _worker_target(
    project: Project, scope: _FunctionScope, expr: Optional[ast.AST]
) -> Tuple[Optional[str], Optional[ast.Lambda]]:
    if expr is None:
        return None, None
    if isinstance(expr, ast.Lambda):
        return "<lambda>", expr
    if isinstance(expr, ast.Call):
        dotted = _dotted_name(expr.func)
        if dotted is not None:
            resolved = normalize_dotted(project.resolve(scope.module, dotted))
            if resolved in _PARTIAL or dotted in _PARTIAL:
                if expr.args:
                    return _worker_target(project, scope, expr.args[0])
        return None, None
    targets = _resolve_callable(project, scope, expr)
    if targets:
        return targets[0], None
    return None, None
