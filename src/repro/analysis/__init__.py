"""repgraph: whole-program determinism analysis (``repro analyze``).

Where :mod:`repro.lint` proves per-file, per-AST-node invariants,
this package proves the *cross-module* ones that gate parallelizing
the pipeline: it parses all analyzed sources once, builds a
project-wide symbol table and call graph (imports resolved, methods
bound through a class-hierarchy pass), runs effect/taint fixpoints
over the graph, and reports through the same findings / pragma /
baseline machinery as replint under the RPL1xx family:

=========  =======================================================
RPL101     unseeded RNG origin (whole-program provenance)
RPL102     RNG stream shared across a parallel fan-out boundary
RPL103     wall-clock value reaches figure/report output
           (interprocedural clock taint)
RPL104     impure worker / mutated capture crosses a pool boundary
=========  =======================================================

Public API::

    from repro.analysis import run_analysis

    result = run_analysis(["src"])   # AnalysisResult
    print(result.ok, result.stats["call_edges"])

``repro analyze`` exposes the same run on the CLI with ``--format
json|text``, ``--baseline``, ``--graph-out`` and exit code 1 on any
non-baselined violation.
"""

from __future__ import annotations

from repro.analysis.analyses import ANALYSES
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.effects import EffectAnalysis, Effects
from repro.analysis.engine import (
    ANALYSIS_VERSION,
    AnalysisResult,
    run_analysis,
)
from repro.analysis.project import Project, load_project
from repro.analysis.report import format_json, format_text, graph_json

__all__ = [
    "ANALYSES",
    "ANALYSIS_VERSION",
    "AnalysisResult",
    "CallGraph",
    "EffectAnalysis",
    "Effects",
    "Project",
    "build_call_graph",
    "format_json",
    "format_text",
    "graph_json",
    "load_project",
    "run_analysis",
]
