"""repgraph reporters: human text, versioned JSON, graph artifact.

The JSON report is the CI contract: ``version`` pins the shape,
``summary.new_errors`` is the gate, and the whole document is a
deterministic function of the analyzed sources — every collection is
sorted and nothing derives from the wall clock, so two runs over the
same tree are byte-identical (the golden tests pin exactly that).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.analyses import ANALYSES
from repro.analysis.engine import ANALYSIS_VERSION, AnalysisResult
from repro.lint.findings import Severity


def format_text(result: AnalysisResult) -> str:
    lines = [f.format() for f in result.findings]
    stats = result.stats
    summary = (
        f"{stats.get('files', 0)} files analyzed: "
        f"{stats.get('modules', 0)} modules, "
        f"{stats.get('functions', 0)} functions, "
        f"{stats.get('call_edges', 0)} call edges, "
        f"{stats.get('fanout_sites', 0)} fan-out sites; "
        f"{len(result.errors)} error(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if not result.findings and not result.baselined:
        summary += " — determinism proven clean"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: AnalysisResult) -> str:
    by_code: Dict[str, int] = {}
    for f in result.findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    payload = {
        "version": ANALYSIS_VERSION,
        "analyses": {
            code: ANALYSES[code][0] for code in sorted(ANALYSES)
        },
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": {
            **{k: result.stats[k] for k in sorted(result.stats)},
            "findings_by_code": by_code,
            "new_errors": sum(
                1
                for f in result.findings
                if f.severity is Severity.ERROR
            ),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def graph_json(result: AnalysisResult) -> str:
    """The ``--graph-out`` artifact: the resolved call graph."""
    payload = {"version": ANALYSIS_VERSION}
    if result.graph is not None:
        payload.update(result.graph.to_dict())
    return json.dumps(payload, indent=2, sort_keys=True)
