"""repgraph orchestration: parse once, build graph, run analyses.

``run_analysis`` is the whole-program sibling of
:func:`repro.lint.engine.run_lint` and reuses the same machinery on
the reporting side — :class:`~repro.lint.findings.Finding` objects,
inline ``# replint: disable=RPL10x`` pragmas, and a baseline file
(``[tool.replint] analysis_baseline``, default
``.repgraph-baseline.json``) — so the RPL1xx family drops into the
existing suppression workflow unchanged.

The pass order is fixed and each stage is wrapped in an obs span:
``analysis.parse`` (project + symbol tables), ``analysis.callgraph``,
``analysis.effects`` (fixpoints), ``analysis.rules`` (RPL101-104).
Output is a deterministic function of the analyzed sources: findings
sort by location, every collection in the report is sorted, and no
wall-clock or RNG is consumed anywhere in the analyzer itself.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.analysis.analyses import ANALYSES, clock, purity, rng
from repro.analysis.callgraph import CallGraph, MODULE_FN, build_call_graph
from repro.analysis.effects import EffectAnalysis
from repro.analysis.project import Project, load_project
from repro.lint.baseline import load_baseline, split_by_baseline
from repro.lint.config import LintConfig
from repro.lint.engine import apply_pragmas, pragma_map
from repro.lint.findings import Finding, Severity

ANALYSIS_VERSION = 1

_ANALYSIS_PASSES = (rng, clock, purity)


@dataclass
class AnalysisResult:
    """Outcome of one whole-program analysis run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    graph: Optional[CallGraph] = None
    project: Optional[Project] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


class _RuleContext:
    """What each analysis pass needs to mint findings."""

    def __init__(self, project: Project) -> None:
        self.project = project

    def path_of(self, qualname: str) -> Optional[str]:
        if qualname.endswith(f".{MODULE_FN}"):
            module = self.project.modules.get(
                qualname[: -len(f".{MODULE_FN}")]
            )
            return module.path if module else None
        info = self.project.functions.get(qualname)
        if info is not None:
            return info.path
        module = self.project.modules.get(qualname)
        return module.path if module else None

    def finding(
        self, code: str, path: str, line: int, message: str
    ) -> Finding:
        module = self.project.modules_by_path.get(path)
        text = ""
        if module is not None and 1 <= line <= len(module.lines):
            text = module.lines[line - 1].strip()
        return Finding(
            path=path,
            line=line,
            col=0,
            code=code,
            severity=Severity.ERROR,
            message=message,
            source_line=text,
        )


def _apply_exemptions(findings: Sequence[Finding]) -> List[Finding]:
    kept: List[Finding] = []
    for f in findings:
        exempt = ANALYSES.get(f.code, ("", ()))[1]
        if any(fnmatch.fnmatch(f.path, pat) for pat in exempt):
            continue
        kept.append(f)
    return kept


def _apply_file_pragmas(
    project: Project, findings: Sequence[Finding]
) -> List[Finding]:
    by_path: Dict[str, List[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: List[Finding] = []
    for path in sorted(by_path):
        module = project.modules_by_path.get(path)
        pragmas = pragma_map(module.lines) if module is not None else {}
        kept.extend(apply_pragmas(by_path[path], pragmas))
    return kept


def run_analysis(
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
    baseline: Optional[Union[str, Dict[str, dict]]] = None,
) -> AnalysisResult:
    """Analyze ``paths`` (default: the configured analysis paths)."""
    cfg = config or LintConfig()
    targets = list(paths) if paths else list(cfg.analysis_paths)
    with obs.span("analysis.run", paths=",".join(targets)):
        with obs.span("analysis.parse"):
            project = load_project(
                cfg.root, targets, exclude=cfg.exclude
            )
        with obs.span("analysis.callgraph"):
            graph = build_call_graph(project)
        with obs.span("analysis.effects"):
            effects = EffectAnalysis(project, graph)
        ctx = _RuleContext(project)
        findings: List[Finding] = list(project.parse_findings)
        with obs.span("analysis.rules"):
            for analysis_pass in _ANALYSIS_PASSES:
                findings.extend(
                    analysis_pass.run(project, graph, effects, ctx)
                )
        findings = _apply_exemptions(findings)
        findings = _apply_file_pragmas(project, findings)
        findings.sort(key=lambda f: f.sort_key())

        suppressions: Dict[str, dict] = {}
        if isinstance(baseline, dict):
            suppressions = baseline
        elif isinstance(baseline, str):
            suppressions = load_baseline(baseline)
        elif use_baseline:
            baseline_file = os.path.join(
                cfg.root, cfg.analysis_baseline_path
            )
            suppressions = load_baseline(baseline_file)
        fresh, suppressed = split_by_baseline(findings, suppressions)

        result = AnalysisResult(
            findings=fresh,
            baselined=suppressed,
            graph=graph,
            project=project,
            stats=_stats(project, graph, fresh, suppressed),
        )
        obs.gauge("analysis.modules").set(result.stats["modules"])
        obs.gauge("analysis.functions").set(result.stats["functions"])
        obs.gauge("analysis.call_edges").set(result.stats["call_edges"])
        for code in sorted({f.code for f in fresh}):
            obs.counter("analysis.findings", code=code).inc(
                sum(1 for f in fresh if f.code == code)
            )
        return result


def _stats(
    project: Project,
    graph: CallGraph,
    fresh: Sequence[Finding],
    suppressed: Sequence[Finding],
) -> Dict[str, int]:
    return {
        "files": len(project.modules_by_path),
        "modules": len(project.modules),
        "functions": len(project.functions),
        "classes": len(project.classes),
        "call_edges": len(graph.edges()),
        "fanout_sites": len(graph.fanouts),
        "resolved_calls": graph.resolved_calls,
        "unresolved_calls": graph.unresolved_calls,
        "new_findings": len(fresh),
        "baselined": len(suppressed),
    }
