"""Effect and taint inference over the call graph.

Layer three of repgraph.  Two passes run over every function (and over
each module's import-time ``<module>`` pseudo-function):

1. **Direct effects** — a single AST walk per function records
   * writes to module globals (``global`` rebinding, attribute or
     subscript stores, and mutating method calls like ``.append`` on a
     module-level name),
   * mutation of closure-captured state (``nonlocal`` or mutating
     calls on names bound in an enclosing function),
   * wall-clock reads (``time.time``, ``datetime.now`` &c., resolved
     through the symbol table so ``from time import time as _t`` still
     counts),
   * uses of module-global RNG streams, and RNG constructions with
     their seededness.

2. **Summaries** — a fixpoint over the call graph unions callee
   effects into callers, so "does this worker touch shared state?"
   is answerable at any fan-out site.  Calls into :mod:`repro.obs`
   and :mod:`logging` are *not* propagated: the obs layer is
   determinism-neutral by construction (output is byte-identical with
   observability on or off), which keeps instrumented code from being
   flagged for its instrumentation.

A separate fixpoint computes **clock return-taint**: whether a
function's return value derives from a wall-clock read, directly or
through calls to other clock-tainted functions, plus any flows of
tainted values into ``json.dump``/``json.dumps`` arguments.
Every recorded site is a ``(path, line, detail)`` triple so analyses
can report at the offending source line with a provenance chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, MODULE_FN
from repro.analysis.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    RNG_CONSTRUCTORS,
    normalize_dotted,
)

#: Wall-clock reads (monotonic clocks are interval-only and stay legal).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "date.today",
    }
)

#: Callees whose effects are never propagated to callers.
NEUTRAL_PREFIXES: Tuple[str, ...] = ("repro.obs", "logging")

_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "sort",
        "reverse", "appendleft", "extendleft",
    }
)

_JSON_SINKS = frozenset({"json.dump", "json.dumps"})

Site = Tuple[str, int, str]  # (function qualname, line, detail)


@dataclass
class Effects:
    """Effect set of one function (direct or summarized)."""

    writes_global: Set[Tuple[str, str]] = field(default_factory=set)
    mutates_capture: Set[Tuple[str, str]] = field(default_factory=set)
    clock_sites: Set[Site] = field(default_factory=set)
    rng_uses: Set[Tuple[str, str]] = field(default_factory=set)
    rng_origins: List[Tuple[int, str, bool]] = field(default_factory=list)

    def merge_propagated(self, other: "Effects") -> bool:
        """Union the propagatable parts of ``other``; True if grown."""
        before = (
            len(self.writes_global),
            len(self.mutates_capture),
            len(self.clock_sites),
            len(self.rng_uses),
        )
        self.writes_global |= other.writes_global
        self.mutates_capture |= other.mutates_capture
        self.clock_sites |= other.clock_sites
        self.rng_uses |= other.rng_uses
        return before != (
            len(self.writes_global),
            len(self.mutates_capture),
            len(self.clock_sites),
            len(self.rng_uses),
        )

    @property
    def impure(self) -> bool:
        return bool(self.writes_global or self.mutates_capture)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _body_nodes(root: ast.AST):
    """Walk a function body without entering nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _bound_names(root: ast.AST) -> Set[str]:
    """Names bound locally inside one function body."""
    bound: Set[str] = set()
    if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = root.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in _body_nodes(root):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for name_node in ast.walk(node.optional_vars):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.comprehension):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


class EffectAnalysis:
    """Direct + summarized effects, and clock return-taint."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.direct: Dict[str, Effects] = {}
        self.summary: Dict[str, Effects] = {}
        self.returns_clock: Dict[str, bool] = {}
        self.json_sink_sites: List[Site] = []
        self._capture_env: Dict[str, Set[str]] = {}
        self._rng_symbols = project.rng_symbols()
        self.run()

    # -- entry ----------------------------------------------------------

    def run(self) -> None:
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            if module.tree is None:
                continue
            qualname = f"{name}.{MODULE_FN}"
            self.direct[qualname] = self._direct_effects(
                module, module.tree, qualname, enclosing_bound=set()
            )
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            module = self.project.modules[info.module]
            enclosing = self._enclosing_bound(info)
            self.direct[qualname] = self._direct_effects(
                module, info.node, qualname, enclosing_bound=enclosing
            )
        self._fixpoint_summaries()
        self._fixpoint_clock_taint()

    def effects_of(self, qualname: str) -> Effects:
        """Summarized effects; empty for unknown functions."""
        return self.summary.get(qualname, Effects())

    # -- direct pass ----------------------------------------------------

    def _enclosing_bound(self, info: FunctionInfo) -> Set[str]:
        """Names bound in enclosing function scopes (capture sources)."""
        bound: Set[str] = set()
        parent = info.parent
        while parent is not None:
            parent_info = self.project.functions.get(parent)
            if parent_info is None:
                break
            bound |= _bound_names(parent_info.node)
            parent = parent_info.parent
        return bound

    def _direct_effects(
        self,
        module: ModuleInfo,
        root: ast.AST,
        qualname: str,
        enclosing_bound: Set[str],
    ) -> Effects:
        effects = Effects()
        local = _bound_names(root)
        declared_global: Set[str] = set()
        declared_nonlocal: Set[str] = set()
        module_names = (
            set(module.global_names)
            | set(module.mutable_globals)
            | set(module.rng_globals)
        )

        def is_module_global(name: str) -> bool:
            if name in declared_global:
                return True
            if qualname.endswith(f".{MODULE_FN}"):
                return name in module_names
            return name in module_names and name not in local

        def is_capture(name: str) -> bool:
            if name in declared_nonlocal:
                return True
            return (
                name in enclosing_bound
                and name not in local
                and name not in module_names
            )

        for node in _body_nodes(root):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                declared_nonlocal.update(node.names)

        for node in _body_nodes(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._record_store(
                        module, qualname, effects, target,
                        is_module_global, is_capture,
                    )
            elif isinstance(node, ast.Call):
                self._record_call(
                    module, qualname, effects, node,
                    is_module_global, is_capture,
                )
            elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                node.ctx, ast.Load
            ):
                self._record_rng_use(
                    module, qualname, effects, node, local
                )
        return effects

    def _record_rng_use(
        self,
        module: ModuleInfo,
        qualname: str,
        effects: Effects,
        node: ast.AST,
        local: Set[str],
    ) -> None:
        """Record loads of module-global RNG streams.

        Covers the stream's home module (bare ``RNG``) and every
        import shape — ``streams.RNG``, ``from .streams import RNG``
        — by resolving the dotted chain through the symbol table, so
        a worker defined two modules away from the stream still
        carries the use in its summary.
        """
        base = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        if base.id in local and not qualname.endswith(f".{MODULE_FN}"):
            return
        dotted = _dotted(node)
        if dotted is None:
            return
        resolved = normalize_dotted(self.project.resolve(module, dotted))
        rng = self._rng_symbols.get(resolved)
        if rng is None and isinstance(node, ast.Name):
            rng = module.rng_globals.get(node.id)
        if rng is not None:
            effects.rng_uses.add((rng.symbol, qualname))

    def _record_store(
        self,
        module: ModuleInfo,
        qualname: str,
        effects: Effects,
        target: ast.AST,
        is_module_global,
        is_capture,
    ) -> None:
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        name = base.id
        if isinstance(target, ast.Name):
            # A plain rebinding only writes shared state with an
            # explicit ``global`` declaration (otherwise it creates a
            # local); module-level rebinding is definition, not
            # mutation.
            if not qualname.endswith(f".{MODULE_FN}") and is_module_global(
                name
            ):
                effects.writes_global.add(
                    (f"{module.name}.{name}", qualname)
                )
            return
        # Attribute/subscript store through a shared or captured base.
        if is_module_global(name):
            effects.writes_global.add((f"{module.name}.{name}", qualname))
        elif is_capture(name):
            effects.mutates_capture.add((name, qualname))

    def _record_call(
        self,
        module: ModuleInfo,
        qualname: str,
        effects: Effects,
        node: ast.Call,
        is_module_global,
        is_capture,
    ) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        if rest and "." not in rest and rest in _MUTATING_METHODS:
            if is_module_global(head):
                effects.writes_global.add((f"{module.name}.{head}", qualname))
            elif is_capture(head):
                effects.mutates_capture.add((head, qualname))
        resolved = normalize_dotted(self.project.resolve(module, dotted))
        if resolved in WALL_CLOCK_CALLS or dotted in WALL_CLOCK_CALLS:
            effects.clock_sites.add((qualname, node.lineno, resolved))
        if resolved in RNG_CONSTRUCTORS:
            effects.rng_origins.append(
                (node.lineno, resolved, bool(node.args or node.keywords))
            )

    # -- summaries ------------------------------------------------------

    def _neutral(self, qualname: str) -> bool:
        return any(
            qualname == p or qualname.startswith(p + ".")
            for p in NEUTRAL_PREFIXES
        )

    def _fixpoint_summaries(self) -> None:
        self.summary = {}
        for qualname, eff in self.direct.items():
            copy = Effects()
            copy.merge_propagated(eff)
            copy.rng_origins = list(eff.rng_origins)
            self.summary[qualname] = copy
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.summary):
                mine = self.summary[qualname]
                for callee in self.graph.callees(qualname):
                    if self._neutral(callee):
                        continue
                    other = self.summary.get(callee)
                    if other is None:
                        continue
                    if mine.merge_propagated(other):
                        changed = True

    # -- clock return-taint ---------------------------------------------

    def _fixpoint_clock_taint(self) -> None:
        self.returns_clock = {q: False for q in self.direct}
        sink_sites: Set[Site] = set()
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.direct):
                info = self.project.functions.get(qualname)
                module = self.project.modules.get(
                    qualname.rsplit(".", 1)[0]
                    if qualname.endswith(f".{MODULE_FN}")
                    else (info.module if info else "")
                )
                if module is None:
                    continue
                root = (
                    module.tree
                    if qualname.endswith(f".{MODULE_FN}")
                    else info.node
                )
                if root is None:
                    continue
                returns, sinks = self._taint_function(module, qualname, root)
                if returns and not self.returns_clock[qualname]:
                    self.returns_clock[qualname] = True
                    changed = True
                new_sinks = sinks - sink_sites
                if new_sinks:
                    sink_sites |= new_sinks
                    changed = True
        self.json_sink_sites = sorted(sink_sites)

    def _taint_function(
        self, module: ModuleInfo, qualname: str, root: ast.AST
    ) -> Tuple[bool, Set[Site]]:
        tainted: Set[str] = set()
        sinks: Set[Site] = set()
        returns = False

        def expr_tainted(node: ast.AST) -> bool:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    if sub.id in tainted:
                        return True
                elif isinstance(sub, ast.Call):
                    dotted = _dotted(sub.func)
                    if dotted is None:
                        continue
                    resolved = normalize_dotted(
                        self.project.resolve(module, dotted)
                    )
                    if (
                        resolved in WALL_CLOCK_CALLS
                        or dotted in WALL_CLOCK_CALLS
                    ):
                        return True
                    if self.returns_clock.get(resolved):
                        return True
            return False

        for node in _body_nodes(root):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None or not expr_tainted(value):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            tainted.add(name_node.id)
            elif isinstance(node, ast.Return):
                if node.value is not None and expr_tainted(node.value):
                    returns = True
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                resolved = normalize_dotted(
                    self.project.resolve(module, dotted)
                )
                if resolved in _JSON_SINKS or dotted in _JSON_SINKS:
                    args = list(node.args) + [
                        kw.value for kw in node.keywords
                    ]
                    if any(expr_tainted(a) for a in args):
                        sinks.add(
                            (qualname, node.lineno, "json payload")
                        )
        return returns, sinks
