"""RPL104: impure workers crossing process-pool boundaries.

Purity/effect inference marks every function with the shared state it
(transitively) writes: module globals rebound or mutated in place,
and closure captures mutated through ``nonlocal`` or mutating method
calls.  A callable with a non-empty write set submitted to a pool is a
static race-to-nondeterminism: under threads the writes interleave,
under processes they silently diverge per worker, and either way the
result depends on scheduling.  Workers must be pure functions of their
arguments (per-process memo caches built from pure functions of the
arguments — ``functools.lru_cache`` — are recognized as safe).

Lambdas submitted to a pool are checked for captured-state mutation
directly; a lambda that only closes over read-only values passes.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import EffectAnalysis, _MUTATING_METHODS
from repro.analysis.project import Project


def _lambda_mutations(node: ast.Lambda) -> List[str]:
    """Captured names a lambda body mutates via method calls."""
    params = {a.arg for a in node.args.args + node.args.kwonlyargs}
    if node.args.vararg:
        params.add(node.args.vararg.arg)
    if node.args.kwarg:
        params.add(node.args.kwarg.arg)
    out = []
    for sub in ast.walk(node.body):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id not in params
        ):
            out.append(func.value.id)
    return sorted(set(out))


def run(project: Project, graph: CallGraph, effects: EffectAnalysis, ctx):
    findings: List = []
    for site in sorted(
        graph.fanouts, key=lambda s: (s.path, s.line, s.worker or "")
    ):
        if site.worker is None:
            continue
        if site.worker == "<lambda>":
            if site.lambda_node is None:
                continue
            for name in _lambda_mutations(site.lambda_node):
                findings.append(
                    ctx.finding(
                        "RPL104",
                        site.path,
                        site.line,
                        f"lambda submitted to {site.pool} mutates "
                        f"captured {name!r}; worker results now depend "
                        "on scheduling order — pass state in, return "
                        "results out, merge deterministically",
                    )
                )
            continue
        summary = effects.effects_of(site.worker)
        for symbol, writer in sorted(summary.writes_global):
            where = f" (in {writer})" if writer != site.worker else ""
            findings.append(
                ctx.finding(
                    "RPL104",
                    site.path,
                    site.line,
                    f"worker {site.worker} submitted to {site.pool} "
                    f"writes shared module state {symbol}{where}; "
                    "execution order leaks into results — make the "
                    "worker a pure function of its arguments (a "
                    "functools.lru_cache over a pure builder is the "
                    "sanctioned per-process cache)",
                )
            )
        for name, writer in sorted(summary.mutates_capture):
            where = f" (in {writer})" if writer != site.worker else ""
            findings.append(
                ctx.finding(
                    "RPL104",
                    site.path,
                    site.line,
                    f"worker {site.worker} submitted to {site.pool} "
                    f"mutates captured {name!r}{where}; shared closure "
                    "state across workers is a scheduling-order race",
                )
            )
    return findings
