"""RNG-stream tracking: RPL101 (unseeded origins) and RPL102 (shared
streams across fan-out boundaries).

Every ``random.Random`` / ``numpy`` generator construction gets a
provenance (which function built it, seeded or not).  Module-global
streams are tracked by symbol; if any function transitively reachable
from a pool-submitted worker touches one, the stream is consumed on
the far side of a ``--jobs`` fan-out without a per-unit
``SeedSequence.spawn`` — the exact cross-module sharing bug the
per-file RPL001 rule cannot see (the construction site is seeded and
lives in a different file from the pool).
"""

from __future__ import annotations

from typing import List

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import EffectAnalysis
from repro.analysis.project import Project


def run(project: Project, graph: CallGraph, effects: EffectAnalysis, ctx):
    findings: List = []
    # -- RPL101: unseeded origins, whole tree ---------------------------
    for qualname in sorted(effects.direct):
        direct = effects.direct[qualname]
        path = ctx.path_of(qualname)
        if path is None:
            continue
        for line, ctor, seeded in sorted(direct.rng_origins):
            if seeded:
                continue
            findings.append(
                ctx.finding(
                    "RPL101",
                    path,
                    line,
                    f"{ctor}() constructed without an explicit seed in "
                    f"{qualname}; every stream must derive from the run "
                    "seed (thread a seed or SeedSequence child through "
                    "the call chain)",
                )
            )
    # -- RPL102: streams crossing fan-out boundaries --------------------
    for site in sorted(
        graph.fanouts, key=lambda s: (s.path, s.line, s.worker or "")
    ):
        if not site.worker or site.worker == "<lambda>":
            continue
        summary = effects.effects_of(site.worker)
        for symbol, user in sorted(summary.rng_uses):
            origin = project.rng_symbols().get(symbol)
            seeded = " (seeded at construction)" if origin and origin.seeded else ""
            via = (
                f" via {user}" if user != site.worker else ""
            )
            findings.append(
                ctx.finding(
                    "RPL102",
                    site.path,
                    site.line,
                    f"worker {site.worker} submitted to {site.pool} "
                    f"consumes shared RNG stream {symbol}{seeded}{via}; "
                    "draws depend on scheduling order — spawn one "
                    "SeedSequence child per unit of work instead",
                )
            )
    return findings
