"""The RPL1xx whole-program analyses.

Each module exposes ``run(project, graph, effects, ctx) -> findings``.
The family starts at RPL101 so per-file replint rules (RPL001-RPL0xx)
and whole-program repgraph analyses never collide:

=========  ========================================================
RPL101     unseeded RNG origin, anywhere in the analyzed tree
RPL102     RNG stream crosses a parallel fan-out boundary
RPL103     wall-clock value reaches figure/report/JSON output
RPL104     impure worker or mutated capture crosses a pool boundary
=========  ========================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

#: code -> (one-line description, exempt path globs)
ANALYSES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "RPL101": (
        "unseeded RNG origin (whole-program provenance)",
        (),
    ),
    "RPL102": (
        "RNG stream shared across a parallel fan-out boundary",
        (),
    ),
    "RPL103": (
        "wall-clock value flows into figure/report output "
        "(interprocedural clock taint; subsumes RPL002 across calls)",
        ("*/obs/clock.py",),
    ),
    "RPL104": (
        "impure function or shared-mutable capture submitted to a "
        "process pool (static race-to-nondeterminism)",
        (),
    ),
}
