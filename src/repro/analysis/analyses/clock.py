"""RPL103: interprocedural clock taint into persisted output.

Two detectors, both reported under one code:

* **Reachability** — every function transitively called while
  computing a figure, a report payload, or a ``save``/``write_*``/
  ``to_json`` output is part of the pipeline's deterministic surface;
  a wall-clock read anywhere in that set leaks the run time into the
  output.  This subsumes the per-file RPL002 rule across call and
  module boundaries — including files RPL002 structurally exempts
  (``cli.py``, benchmarks) when their values flow back into payloads.
* **Flow** — a value derived from a wall-clock read (through any
  number of returns) that lands in a ``json.dump``/``json.dumps``
  argument is flagged at the sink call.

Findings are reported at the offending source line with a
deterministic shortest witness path from the nearest output root.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Optional

from repro.analysis.analyses import ANALYSES
from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import EffectAnalysis
from repro.analysis.project import Project

#: Decorators that mark a function as a figure/table producer.
FIGURE_DECORATORS = ("repro.figures.figure",)

#: Bare function names treated as output roots.
SINK_NAMES = frozenset(
    {"save", "to_json", "to_dict", "snapshot_payload", "build_report"}
)
SINK_PREFIXES = ("write_", "export_")


def sink_roots(project: Project) -> List[str]:
    """Functions whose output is part of the deterministic surface."""
    roots: List[str] = []
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if any(
            d in FIGURE_DECORATORS or d.endswith(".figure")
            for d in info.decorators
        ):
            roots.append(qualname)
            continue
        if info.name in SINK_NAMES or info.name.startswith(SINK_PREFIXES):
            roots.append(qualname)
    return roots


def run(project: Project, graph: CallGraph, effects: EffectAnalysis, ctx):
    findings: List = []
    exempt = ANALYSES["RPL103"][1]
    roots = sink_roots(project)
    reachable = graph.reachable_from(roots)
    # Deterministic nearest-root witness: roots in sorted order, first
    # root with a path wins.
    witness_cache: Dict[str, Optional[str]] = {}

    def witness(target: str) -> str:
        if target in witness_cache:
            return witness_cache[target] or ""
        for root in roots:
            path = graph.shortest_path(root, target)
            if path is not None:
                rendered = " -> ".join(path)
                witness_cache[target] = rendered
                return rendered
        witness_cache[target] = None
        return ""

    seen = set()
    for qualname in sorted(reachable):
        direct = effects.direct.get(qualname)
        if direct is None or not direct.clock_sites:
            continue
        path = ctx.path_of(qualname)
        if path is None or any(
            fnmatch.fnmatch(path, pat) for pat in exempt
        ):
            continue
        for _, line, call in sorted(direct.clock_sites):
            key = (path, line)
            if key in seen:
                continue
            seen.add(key)
            chain = witness(qualname)
            via = f" (reached via {chain})" if chain else ""
            findings.append(
                ctx.finding(
                    "RPL103",
                    path,
                    line,
                    f"{call}() is reachable from figure/report output"
                    f"{via}; the run's wall-clock leaks into persisted "
                    "results — derive times from snapshot dates or an "
                    "injected clock",
                )
            )
    for qualname, line, detail in effects.json_sink_sites:
        path = ctx.path_of(qualname)
        if path is None or any(
            fnmatch.fnmatch(path, pat) for pat in exempt
        ):
            continue
        key = (path, line)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            ctx.finding(
                "RPL103",
                path,
                line,
                f"wall-clock-derived value flows into a {detail} in "
                f"{qualname}; persisted output now depends on when the "
                "run happened",
            )
        )
    return findings
