"""Whole-program model: modules, symbols, functions, classes.

This is the first of repgraph's three layers (project -> call graph ->
effect/taint analyses).  ``Project.load`` parses every ``.py`` file
under the configured paths exactly once and builds:

* a **module table** mapping dotted module names to parsed ASTs,
* a per-module **symbol table** resolving local names through
  ``import`` / ``from ... import`` (including aliases and relative
  imports) to fully-qualified dotted targets,
* a **function index** over every ``def`` (module-level, methods, and
  named nested functions), and
* a **class index** with resolved base classes, feeding the
  class-hierarchy pass that binds ``self.method()`` calls.

Everything downstream keys on *qualnames*: ``repro.figures.fig2a``,
``repro.synthesis.sessions.SessionSampler.snapshot_records``.  Files
that do not parse become structured RPL000 findings rather than
aborting the run, mirroring the per-file lint engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Severity

#: Path components stripped from the front of a relative file path
#: before it is turned into a dotted module name (``src/repro/x.py``
#: -> ``repro.x``).
DEFAULT_SOURCE_ROOTS: Tuple[str, ...] = ("src",)

PARSE_ERROR_CODE = "RPL000"


def module_name_for(path: str, source_roots: Sequence[str]) -> str:
    """Dotted module name for a relative posix ``.py`` path."""
    parts = path.split("/")
    if parts and parts[0] in source_roots:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One ``def`` anywhere in the project."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.AST
    cls: Optional[str] = None  # enclosing class qualname, if a method
    parent: Optional[str] = None  # enclosing function qualname, if nested
    decorators: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One ``class`` statement plus its resolved bases and methods."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class RngGlobal:
    """A module-level name bound to an RNG object at import time."""

    symbol: str  # module-qualified, e.g. demo.rng_pool.RNG
    ctor: str  # resolved constructor, e.g. random.Random
    lineno: int
    seeded: bool


@dataclass
class ModuleInfo:
    """One parsed source file and its name-resolution context."""

    name: str
    path: str
    tree: Optional[ast.Module]
    lines: List[str]
    symbols: Dict[str, str] = field(default_factory=dict)
    global_names: Dict[str, int] = field(default_factory=dict)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    rng_globals: Dict[str, RngGlobal] = field(default_factory=dict)
    parse_finding: Optional[Finding] = None


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "collections.defaultdict", "defaultdict",
     "collections.OrderedDict", "OrderedDict", "collections.deque", "deque"}
)

#: Constructors producing RNG stream objects (resolved dotted names).
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
    }
)

#: Import aliases normalized before constructor lookup.
_MODULE_ALIASES = {"np": "numpy"}


def normalize_dotted(dotted: str) -> str:
    """Rewrite conventional aliases (``np.`` -> ``numpy.``)."""
    head, _, rest = dotted.partition(".")
    alias = _MODULE_ALIASES.get(head)
    if alias is not None:
        return f"{alias}.{rest}" if rest else alias
    return dotted


class Project:
    """All analyzed modules plus whole-program indexes."""

    def __init__(self, source_roots: Sequence[str] = DEFAULT_SOURCE_ROOTS):
        self.source_roots: Tuple[str, ...] = tuple(source_roots)
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.parse_findings: List[Finding] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: Sequence[Tuple[str, str]],
        source_roots: Sequence[str] = DEFAULT_SOURCE_ROOTS,
    ) -> "Project":
        """Build a project from ``(relative_path, source_text)`` pairs.

        Used directly by tests; :func:`load_project` feeds it from disk.
        """
        project = cls(source_roots)
        for path, text in sorted(sources):
            project._add_file(path, text)
        for module in project.modules.values():
            if module.tree is not None:
                project._index_module(module)
        project._bind_class_methods()
        return project

    def _add_file(self, path: str, text: str) -> None:
        norm = path.replace("\\", "/")
        name = module_name_for(norm, self.source_roots)
        lines = text.splitlines()
        try:
            tree: Optional[ast.Module] = ast.parse(text, filename=norm)
            finding = None
        except (SyntaxError, ValueError, RecursionError, MemoryError) as exc:
            tree = None
            lineno = getattr(exc, "lineno", None) or 1
            offset = getattr(exc, "offset", None) or 1
            msg = getattr(exc, "msg", None) or str(exc) or type(exc).__name__
            finding = Finding(
                path=norm,
                line=lineno,
                col=offset - 1,
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"file does not parse: {msg}",
                source_line=(lines[lineno - 1].strip()
                             if 0 < lineno <= len(lines) else ""),
            )
            self.parse_findings.append(finding)
        module = ModuleInfo(
            name=name, path=norm, tree=tree, lines=lines,
            parse_finding=finding,
        )
        self.modules[name] = module
        self.modules_by_path[norm] = module

    # -- per-module indexing --------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        package = module.name.rpartition(".")[0]
        for node in module.tree.body:
            self._index_statement(module, node, package)
        # Walk the whole tree for defs (methods, nested functions).
        self._index_defs(module, module.tree, prefix=module.name, cls=None,
                         parent=None)

    def _index_statement(
        self, module: ModuleInfo, node: ast.stmt, package: str
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.symbols[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from_base(module, node, package)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.symbols[bound] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                module.global_names[target.id] = node.lineno
                if value is None:
                    continue
                self._classify_global(module, target.id, value, node.lineno)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports (tomllib fallbacks and the like).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_statement(module, child, package)

    def _classify_global(
        self, module: ModuleInfo, name: str, value: ast.AST, lineno: int
    ) -> None:
        symbol = f"{module.name}.{name}"
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            module.mutable_globals[name] = lineno
            return
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is None:
                return
            resolved = normalize_dotted(self.resolve(module, dotted))
            if resolved in _MUTABLE_CTORS or dotted in _MUTABLE_CTORS:
                module.mutable_globals[name] = lineno
            elif resolved in RNG_CONSTRUCTORS:
                module.rng_globals[name] = RngGlobal(
                    symbol=symbol,
                    ctor=resolved,
                    lineno=lineno,
                    seeded=bool(value.args or value.keywords),
                )

    def _resolve_from_base(
        self, module: ModuleInfo, node: ast.ImportFrom, package: str
    ) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: level 1 is this module's own package; each
        # further dot climbs one package higher.  A package's own name
        # (``__init__.py``) already *is* its package.
        parts = module.name.split(".")
        if not module.path.endswith("__init__.py"):
            parts = parts[:-1]
        drop = node.level - 1
        parts = parts[: max(0, len(parts) - drop)]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _index_defs(
        self,
        module: ModuleInfo,
        node: ast.AST,
        prefix: str,
        cls: Optional[str],
        parent: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                decorators = tuple(
                    normalize_dotted(self.resolve(module, d))
                    for d in (
                        _dotted(dec.func if isinstance(dec, ast.Call) else dec)
                        for dec in child.decorator_list
                    )
                    if d is not None
                )
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    name=child.name,
                    path=module.path,
                    lineno=child.lineno,
                    node=child,
                    cls=cls,
                    parent=parent,
                    decorators=decorators,
                )
                self.functions[qualname] = info
                if cls is not None and parent is None:
                    self.classes[cls].methods.setdefault(child.name, qualname)
                self._index_defs(
                    module, child, prefix=qualname, cls=None, parent=qualname
                )
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}"
                bases = tuple(
                    normalize_dotted(self.resolve(module, b))
                    for b in (_dotted(base) for base in child.bases)
                    if b is not None
                )
                self.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=module.name,
                    name=child.name,
                    path=module.path,
                    lineno=child.lineno,
                    bases=bases,
                )
                self._index_defs(
                    module, child, prefix=qualname, cls=qualname, parent=parent
                )
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                self._index_defs(module, child, prefix, cls, parent)

    def _bind_class_methods(self) -> None:
        """Inherit methods down the project-local class hierarchy."""
        for qualname in sorted(self.classes):
            info = self.classes[qualname]
            for base in self.mro(qualname)[1:]:
                base_info = self.classes.get(base)
                if base_info is None:
                    continue
                for method, target in base_info.methods.items():
                    info.methods.setdefault(method, target)

    # -- queries --------------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> str:
        """Fully qualify ``dotted`` as seen from ``module``.

        Local imports win, then module-level definitions, then the name
        is returned unchanged (an external/builtin reference).
        """
        head, _, rest = dotted.partition(".")
        target = module.symbols.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        candidate = f"{module.name}.{head}"
        if (
            candidate in self.functions
            or candidate in self.classes
            or head in module.global_names
        ):
            return f"{candidate}.{rest}" if rest else candidate
        return dotted

    def mro(self, class_qualname: str) -> List[str]:
        """Depth-first linearization over project-local bases."""
        out: List[str] = []
        seen = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            out.append(name)
            info = self.classes.get(name)
            if info is None:
                return
            for base in info.bases:
                visit(base)

        visit(class_qualname)
        return out

    def subclasses(self, class_qualname: str) -> List[str]:
        """Project-local classes that (transitively) inherit from it."""
        out = []
        for name in sorted(self.classes):
            if name == class_qualname:
                continue
            if class_qualname in self.mro(name)[1:]:
                out.append(name)
        return out

    def lookup_method(
        self, class_qualname: str, method: str
    ) -> Optional[str]:
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        return info.methods.get(method)

    def rng_symbols(self) -> Dict[str, RngGlobal]:
        """Every module-global RNG stream, keyed by qualified symbol."""
        out: Dict[str, RngGlobal] = {}
        for module in self.modules.values():
            for rng in module.rng_globals.values():
                out[rng.symbol] = rng
        return out


def load_project(
    root: str,
    paths: Sequence[str],
    exclude: Sequence[str] = (),
    source_roots: Sequence[str] = DEFAULT_SOURCE_ROOTS,
) -> Project:
    """Parse every ``.py`` file under ``paths`` (relative to ``root``)."""
    import os

    from repro.lint.config import LintConfig
    from repro.lint.engine import collect_files

    cfg = LintConfig(root=root, paths=list(paths), exclude=list(exclude))
    sources: List[Tuple[str, str]] = []
    for rel in collect_files(list(paths), cfg):
        abs_path = os.path.join(os.path.abspath(root), rel)
        try:
            with open(abs_path, "r", encoding="utf-8") as fh:
                sources.append((rel, fh.read()))
        except (OSError, UnicodeDecodeError):
            continue
    return Project.from_sources(sources, source_roots=source_roots)
