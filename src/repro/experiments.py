"""The paper-vs-measured verification report.

Runs the headline analyses over one ecosystem build and lines each
result up against the value the paper reports (``calibration.PAPER``).
This is the programmatic form of EXPERIMENTS.md: the CLI's
``repro experiments`` prints it, and tests assert on its contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.constants import Platform, Protocol
from repro.core.complexity import (
    fit_complexity,
    max_unique_sdks,
    publisher_complexity,
)
from repro.core.counts import count_distribution, share_with_count_above
from repro.core.dimensions import (
    CdnDimension,
    PlatformDimension,
    ProtocolDimension,
)
from repro.core.durations import long_view_fractions
from repro.core.prevalence import (
    first_last,
    publisher_support_series,
    view_hour_share_series,
)
from repro.core.protocol_share import supporter_medians
from repro.core.storage import figure18
from repro.core.summary import (
    headline_summary,
    live_vod_cdn_segregation,
    top_cdn_concentration,
)
from repro.core.syndication import prevalence_summary, qoe_comparison
from repro.core.trends import count_trend
from repro.errors import AnalysisError
from repro.synthesis.calibration import PAPER
from repro.synthesis.catalogues import case_video_id
from repro.synthesis.generator import EcosystemResult


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured line of the report."""

    experiment: str
    quantity: str
    paper: float
    measured: float
    #: Acceptance band as a fraction of the paper value (or absolute
    #: when the paper value is a percentage-point quantity).
    tolerance: float
    absolute: bool = False

    @property
    def delta(self) -> float:
        return self.measured - self.paper

    @property
    def within(self) -> bool:
        if self.absolute:
            return abs(self.delta) <= self.tolerance
        if self.paper == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.delta) <= self.tolerance * abs(self.paper)

    def row(self) -> dict:
        return {
            "experiment": self.experiment,
            "quantity": self.quantity,
            "paper": self.paper,
            "measured": round(self.measured, 2),
            "within_band": "yes" if self.within else "NO",
        }


def build_report(result: EcosystemResult) -> List[Comparison]:
    """Compute every comparison for one ecosystem build."""
    dataset = result.dataset
    latest = dataset.latest()
    comparisons: List[Comparison] = []

    def add(experiment, quantity, paper, measured, tolerance, absolute=False):
        comparisons.append(
            Comparison(
                experiment=experiment,
                quantity=quantity,
                paper=float(paper),
                measured=float(measured),
                tolerance=tolerance,
                absolute=absolute,
            )
        )

    # -- §4.1 protocols -----------------------------------------------
    support = publisher_support_series(dataset, ProtocolDimension())
    for protocol, target in PAPER.publisher_share_latest.items():
        _, measured = first_last(support, protocol)
        add(
            "F2a",
            f"% publishers {protocol.display_name} (latest)",
            target,
            measured,
            10.0,
            absolute=True,
        )
    dash_first, _ = first_last(support, Protocol.DASH)
    add(
        "F2a",
        "% publishers DASH (first)",
        PAPER.dash_publisher_share_first,
        dash_first,
        8.0,
        absolute=True,
    )
    shares = view_hour_share_series(dataset, ProtocolDimension())
    for protocol, target in PAPER.view_hour_share_latest.items():
        _, measured = first_last(shares, protocol)
        add(
            "F2b",
            f"% view-hours {protocol.display_name} (latest)",
            target,
            measured,
            8.0,
            absolute=True,
        )
    excluded = view_hour_share_series(
        dataset,
        ProtocolDimension(),
        exclude_publishers=result.dash_driver_ids,
    )
    _, dash_excluded = first_last(excluded, Protocol.DASH)
    add(
        "F2c",
        "% VH DASH excl drivers (latest)",
        PAPER.dash_share_excluding_drivers,
        dash_excluded,
        5.0,
        absolute=True,
    )
    protocol_rows = count_distribution(latest, ProtocolDimension())
    one = next(r for r in protocol_rows if r.count == 1)
    add(
        "F3a",
        "% publishers with 1 protocol",
        PAPER.pct_publishers_one_protocol,
        one.percent_publishers,
        10.0,
        absolute=True,
    )
    two = next((r for r in protocol_rows if r.count == 2), None)
    if two is None:
        raise AnalysisError("no two-protocol publishers observed")
    add(
        "F3a",
        "% VH from 2-protocol publishers",
        PAPER.pct_view_hours_two_protocols,
        two.percent_view_hours,
        15.0,
        absolute=True,
    )
    medians = supporter_medians(latest)
    add(
        "F4",
        "median HLS share among supporters",
        PAPER.median_hls_share_among_supporters,
        medians[Protocol.HLS],
        12.0,
        absolute=True,
    )
    add(
        "F4",
        "median DASH share among supporters",
        PAPER.median_dash_share_among_supporters,
        medians[Protocol.DASH],
        15.0,
        absolute=True,
    )

    # -- §4.2 platforms -------------------------------------------------
    platform_shares = view_hour_share_series(dataset, PlatformDimension())
    for platform, target in PAPER.platform_view_hour_share_latest.items():
        _, measured = first_last(platform_shares, platform)
        add(
            "F6a",
            f"% VH {platform.display_name} (latest)",
            target,
            measured,
            8.0,
            absolute=True,
        )
    browser_first, _ = first_last(platform_shares, Platform.BROWSER)
    add(
        "F6a",
        "% VH browser (first)",
        PAPER.browser_view_hour_share_first,
        browser_first,
        10.0,
        absolute=True,
    )
    views = view_hour_share_series(
        dataset, PlatformDimension(), by_views=True
    )
    _, set_top_views = first_last(views, Platform.SET_TOP)
    add(
        "F6c",
        "% views set-top (latest)",
        PAPER.set_top_views_share_latest,
        set_top_views,
        8.0,
        absolute=True,
    )
    fractions = long_view_fractions(latest, threshold_hours=0.2)
    add(
        "F8",
        "P[mobile view > 0.2h]",
        PAPER.long_view_fraction_mobile,
        fractions[Platform.MOBILE],
        0.10,
        absolute=True,
    )
    add(
        "F8",
        "P[set-top view > 0.2h]",
        PAPER.long_view_fraction_set_top,
        fractions[Platform.SET_TOP],
        0.12,
        absolute=True,
    )
    platform_rows = count_distribution(latest, PlatformDimension())
    multi = share_with_count_above(platform_rows, 1)
    add(
        "F9a",
        "% publishers multi-platform",
        PAPER.pct_publishers_multi_platform,
        multi["percent_publishers"],
        10.0,
        absolute=True,
    )

    # -- §4.3 CDNs --------------------------------------------------------
    cdn_support = publisher_support_series(dataset, CdnDimension())
    for name, target in PAPER.cdn_publisher_share_latest.items():
        _, measured = first_last(cdn_support, name)
        add(
            "F11a",
            f"% publishers using CDN {name} (latest)",
            target,
            measured,
            12.0,
            absolute=True,
        )
    add(
        "top5",
        "% VH via top-5 CDNs",
        PAPER.top5_view_hour_share,
        top_cdn_concentration(latest),
        6.0,
        absolute=True,
    )
    cdn_rows = count_distribution(latest, CdnDimension())
    single = next(r for r in cdn_rows if r.count == 1)
    add(
        "F12a",
        "% VH from single-CDN publishers",
        PAPER.pct_view_hours_one_cdn,
        single.percent_view_hours,
        5.0,
        absolute=True,
    )
    heavy = sum(r.percent_view_hours for r in cdn_rows if r.count >= 4)
    add(
        "F12a",
        "% VH from 4-5 CDN publishers",
        PAPER.pct_view_hours_4_or_5_cdns,
        heavy,
        16.0,
        absolute=True,
    )
    segregation = live_vod_cdn_segregation(latest)
    add(
        "S43L",
        "% multi-CDN pubs with VoD-only CDN",
        PAPER.pct_vod_only_cdn_publishers,
        segregation.pct_with_vod_only_cdn,
        15.0,
        absolute=True,
    )
    add(
        "S43L",
        "% multi-CDN pubs with live-only CDN",
        PAPER.pct_live_only_cdn_publishers,
        segregation.pct_with_live_only_cdn,
        15.0,
        absolute=True,
    )

    # -- §4.4 summary ---------------------------------------------------
    summaries = headline_summary(dataset)
    add(
        "S44",
        "weighted avg protocols",
        PAPER.weighted_avg_protocols,
        summaries["protocols"].weighted_average_count,
        0.25,
    )
    add(
        "S44",
        "weighted avg platforms",
        PAPER.weighted_avg_platforms,
        summaries["platforms"].weighted_average_count,
        0.15,
    )
    add(
        "S44",
        "weighted avg CDNs",
        PAPER.weighted_avg_cdns,
        summaries["cdns"].weighted_average_count,
        0.15,
    )

    # -- §5 complexity ----------------------------------------------------
    metrics = publisher_complexity(latest, result.catalogue_sizes)
    fits = fit_complexity(metrics)
    add(
        "F13",
        "combinations factor / decade",
        PAPER.combos_factor_per_decade,
        fits.combinations.per_decade_factor,
        0.35,
    )
    add(
        "F13",
        "protocol-titles factor / decade",
        PAPER.protocol_titles_factor_per_decade,
        fits.protocol_titles.per_decade_factor,
        0.25,
    )
    add(
        "F13",
        "unique-SDKs factor / decade",
        PAPER.unique_sdks_factor_per_decade,
        fits.unique_sdks.per_decade_factor,
        0.25,
    )
    add(
        "F13",
        "max unique SDKs",
        PAPER.max_unique_sdks,
        float(max_unique_sdks(metrics)),
        0.5,
    )

    # -- §6 syndication ----------------------------------------------------
    syndication = prevalence_summary(dataset)
    add(
        "F14",
        "% owners with >=1 syndicator",
        PAPER.pct_owners_with_syndicator,
        syndication["pct_owners_with_syndicator"],
        15.0,
        absolute=True,
    )
    if result.case_study is not None:
        study = result.case_study
        comparison = qoe_comparison(
            dataset,
            study.owner_id,
            study.publisher_id(study.qoe_syndicator_label),
            case_video_id(),
            "X",
            "A",
        )
        add(
            "F15",
            "owner median bitrate gain (X/A)",
            PAPER.owner_median_bitrate_gain,
            comparison.median_bitrate_gain(),
            0.40,
        )
        add(
            "F16",
            "owner p90 rebuffer reduction (X/A)",
            PAPER.owner_p90_rebuffer_reduction,
            comparison.p90_rebuffer_reduction(),
            0.20,
            absolute=True,
        )
        savings = figure18(study)[0]
        add(
            "F18",
            "catalogue storage (TB)",
            PAPER.catalogue_storage_tb,
            savings.total_tb,
            0.06,
        )
        add(
            "F18",
            "% saved @5% tolerance",
            PAPER.savings_pct_5pct,
            savings.saved_pct_5pct,
            2.0,
            absolute=True,
        )
        add(
            "F18",
            "% saved @10% tolerance",
            PAPER.savings_pct_10pct,
            savings.saved_pct_10pct,
            2.0,
            absolute=True,
        )
        add(
            "F18",
            "% saved integrated",
            PAPER.savings_pct_integrated,
            savings.saved_pct_integrated,
            2.0,
            absolute=True,
        )
    return comparisons


def report_rows(result: EcosystemResult) -> List[dict]:
    """The report as printable rows."""
    return [comparison.row() for comparison in build_report(result)]


def fraction_within_band(comparisons: List[Comparison]) -> float:
    """Fraction of comparisons inside their acceptance band."""
    if not comparisons:
        raise AnalysisError("empty report")
    return sum(1 for c in comparisons if c.within) / len(comparisons)
