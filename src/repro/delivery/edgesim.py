"""Edge-cache syndication study (extension of §6).

§6 quantifies origin-server redundancy and notes that edge redundancy
"is harder to quantify as that depends on content access patterns".
This module supplies the access patterns: it synthesizes Zipf-popular
request streams for a syndicated catalogue and replays them through an
LRU edge under two regimes:

* **independent** syndication — each publisher's clients request that
  publisher's own copies (distinct cache keys for identical content);
* **integrated** syndication — every client requests the owner's copy.

The output is the edge hit ratio and origin egress under each regime —
the cache-level analogue of Fig 18.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.delivery.edge import EdgeCache
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue
from repro.errors import DeliveryError
from repro.units import kbps_to_bytes_per_second


@dataclass(frozen=True)
class EdgeStudyResult:
    """Outcome of one regime's replay."""

    regime: str
    requests: int
    hit_ratio: float
    origin_gigabytes: float
    served_gigabytes: float

    @property
    def origin_offload(self) -> float:
        """Fraction of served bytes the origin did NOT have to send."""
        if self.served_gigabytes <= 0:
            return 0.0
        return 1.0 - self.origin_gigabytes / self.served_gigabytes


class EdgeSyndicationStudy:
    """Replays syndicated-content request streams through one edge."""

    def __init__(
        self,
        catalogue: Catalogue,
        ladders: Mapping[str, BitrateLadder],
        owner_id: str,
        cache_capacity_bytes: float,
        chunk_seconds: float = 6.0,
    ) -> None:
        if owner_id not in ladders:
            raise DeliveryError("owner must have a ladder")
        if len(ladders) < 2:
            raise DeliveryError("need the owner plus at least one syndicator")
        if chunk_seconds <= 0:
            raise DeliveryError("chunk duration must be positive")
        self.catalogue = catalogue
        self.ladders = dict(ladders)
        self.owner_id = owner_id
        self.cache_capacity_bytes = cache_capacity_bytes
        self.chunk_seconds = chunk_seconds
        self._video_ids = catalogue.video_ids
        if not self._video_ids:
            raise DeliveryError("catalogue is empty")

    # ------------------------------------------------------------------
    # Request synthesis
    # ------------------------------------------------------------------

    def sample_requests(
        self,
        rng: np.random.Generator,
        n_sessions: int,
        zipf_s: float = 1.1,
        chunks_per_session: int = 40,
    ) -> Sequence[Tuple[str, str, float, int]]:
        """(publisher, video, bitrate, chunk index) request tuples.

        Sessions pick a publisher uniformly, a title by Zipf popularity,
        a sustainable rung from that publisher's ladder, and fetch a
        contiguous run of chunks — the access pattern a syndicated
        series sees across its distributors' audiences.
        """
        if n_sessions < 1:
            raise DeliveryError("need at least one session")
        publishers = sorted(self.ladders)
        ranks = np.arange(1, len(self._video_ids) + 1, dtype=float)
        weights = ranks**-zipf_s
        popularity = weights / weights.sum()
        requests = []
        for _ in range(n_sessions):
            publisher = publishers[int(rng.integers(len(publishers)))]
            video_idx = int(rng.choice(len(self._video_ids), p=popularity))
            video_id = self._video_ids[video_idx]
            ladder = self.ladders[publisher]
            throughput = float(rng.lognormal(np.log(4000.0), 0.8))
            rung = ladder.nearest_at_most(0.8 * throughput)
            start = int(rng.integers(0, 200))
            for chunk in range(chunks_per_session):
                requests.append(
                    (publisher, video_id, rung.bitrate_kbps, start + chunk)
                )
        return requests

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(
        self,
        requests: Sequence[Tuple[str, str, float, int]],
        regime: str,
    ) -> EdgeStudyResult:
        """Replay a request stream under one syndication regime."""
        if regime not in ("independent", "integrated"):
            raise DeliveryError(f"unknown regime {regime!r}")
        cache = EdgeCache(capacity_bytes=self.cache_capacity_bytes)
        owner_ladder = self.ladders[self.owner_id]
        for publisher, video_id, bitrate, index in requests:
            if regime == "independent":
                key_publisher, key_bitrate = publisher, bitrate
            else:
                # Integration: all clients fetch the owner's copy at the
                # owner's nearest rung.
                key_publisher = self.owner_id
                key_bitrate = owner_ladder.nearest_at_most(
                    max(bitrate, owner_ladder.min_bitrate_kbps)
                ).bitrate_kbps
            size = (
                kbps_to_bytes_per_second(key_bitrate) * self.chunk_seconds
            )
            cache.request(
                (key_publisher, video_id, key_bitrate, index), size
            )
        stats = cache.stats
        return EdgeStudyResult(
            regime=regime,
            requests=stats.requests,
            hit_ratio=stats.hit_ratio,
            origin_gigabytes=stats.bytes_from_origin / 1e9,
            served_gigabytes=stats.bytes_served / 1e9,
        )

    def compare(
        self,
        rng: np.random.Generator,
        n_sessions: int = 800,
    ) -> Dict[str, EdgeStudyResult]:
        """Run both regimes over the same request stream."""
        requests = self.sample_requests(rng, n_sessions)
        return {
            regime: self.replay(requests, regime)
            for regime in ("independent", "integrated")
        }
