"""Multi-CDN selection policies and the CDN broker.

§2/§4.3: publishers use multiple CDNs for performance and availability;
some route through a broker that picks the best CDN per view and offers
monitoring even to single-CDN publishers; a significant fraction of
publishers segregate live and VoD traffic by CDN.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.constants import ContentType
from repro.entities.cdn import CdnAssignment
from repro.errors import (
    AllCdnsFailedError,
    DeliveryError,
    RetryExhaustedError,
    TransportError,
)
from repro.resilience import BackoffPolicy, CircuitBreaker, retry_with_backoff


class CdnSelectionPolicy(abc.ABC):
    """Chooses a CDN name for one view."""

    @abc.abstractmethod
    def select(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        rng: np.random.Generator,
    ) -> str:
        """Return the chosen CDN's name."""

    @staticmethod
    def eligible(
        assignments: Sequence[CdnAssignment], content_type: ContentType
    ) -> Tuple[CdnAssignment, ...]:
        chosen = tuple(a for a in assignments if a.serves(content_type))
        if not chosen:
            raise DeliveryError(
                f"no CDN assignment serves {content_type.value} content"
            )
        return chosen


class RoundRobinPolicy(CdnSelectionPolicy):
    """Cycles through eligible CDNs, view by view."""

    def __init__(self) -> None:
        self._next = 0

    def select(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        rng: np.random.Generator,
    ) -> str:
        eligible = self.eligible(assignments, content_type)
        choice = eligible[self._next % len(eligible)]
        self._next += 1
        return choice.cdn.name


class WeightedPolicy(CdnSelectionPolicy):
    """Samples CDNs with fixed weights (traffic-split contracts)."""

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise DeliveryError("weighted policy needs weights")
        if any(w < 0 for w in weights.values()):
            raise DeliveryError("weights must be non-negative")
        if sum(weights.values()) <= 0:
            raise DeliveryError("some weight must be positive")
        self.weights = dict(weights)

    def select(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        rng: np.random.Generator,
    ) -> str:
        eligible = self.eligible(assignments, content_type)
        names = [a.cdn.name for a in eligible]
        raw = np.array(
            [self.weights.get(name, 0.0) for name in names], dtype=float
        )
        if raw.sum() <= 0:
            raise DeliveryError(
                f"no positive weight among eligible CDNs {names}"
            )
        probs = raw / raw.sum()
        return str(rng.choice(names, p=probs))


class ContentTypeSplitPolicy(CdnSelectionPolicy):
    """Routes live and VoD to disjoint CDN subsets where possible.

    Models the §4.3 observation that 30% of multi-CDN publishers keep at
    least one CDN VoD-only and 19% keep one live-only; within the
    eligible subset selection is uniform.
    """

    def select(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        rng: np.random.Generator,
    ) -> str:
        eligible = self.eligible(assignments, content_type)
        exclusive = [
            a
            for a in eligible
            if a.content_types == frozenset({content_type})
        ]
        pool = exclusive or list(eligible)
        idx = int(rng.integers(len(pool)))
        return pool[idx].cdn.name


@dataclass
class BrokerDecision:
    """One broker selection with the evidence behind it."""

    cdn_name: str
    predicted_kbps: float
    scores: Dict[str, float] = field(default_factory=dict)


class CdnBroker:
    """A measurement-driven CDN broker (§2, [72]).

    Maintains an exponentially weighted moving average of observed
    throughput per CDN and picks the current best; with probability
    ``explore`` it samples a non-best CDN to keep estimates fresh.
    """

    def __init__(self, explore: float = 0.1, alpha: float = 0.3) -> None:
        if not 0.0 <= explore < 1.0:
            raise DeliveryError("explore must be in [0, 1)")
        if not 0.0 < alpha <= 1.0:
            raise DeliveryError("alpha must be in (0, 1]")
        self.explore = explore
        self.alpha = alpha
        self._ewma_kbps: Dict[str, float] = {}

    def observe(self, cdn_name: str, throughput_kbps: float) -> None:
        """Feed one throughput measurement for a CDN."""
        if throughput_kbps < 0:
            raise DeliveryError("throughput must be non-negative")
        prior = self._ewma_kbps.get(cdn_name)
        if prior is None:
            self._ewma_kbps[cdn_name] = throughput_kbps
        else:
            self._ewma_kbps[cdn_name] = (
                self.alpha * throughput_kbps + (1 - self.alpha) * prior
            )

    def estimate(self, cdn_name: str) -> Optional[float]:
        return self._ewma_kbps.get(cdn_name)

    def select(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        rng: np.random.Generator,
    ) -> BrokerDecision:
        eligible = CdnSelectionPolicy.eligible(assignments, content_type)
        names = [a.cdn.name for a in eligible]
        scores = {
            name: self._ewma_kbps.get(name, float("inf")) for name in names
        }
        # Unmeasured CDNs score infinity so each gets probed once.
        best = max(names, key=lambda name: scores[name])
        if len(names) > 1 and rng.random() < self.explore:
            others = [name for name in names if name != best]
            best = others[int(rng.integers(len(others)))]
        predicted = scores[best]
        return BrokerDecision(
            cdn_name=best,
            predicted_kbps=predicted if predicted != float("inf") else 0.0,
            scores={k: (v if v != float("inf") else 0.0) for k, v in scores.items()},
        )

    def ranked(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
    ) -> List[str]:
        """Eligible CDNs, best estimated throughput first (unmeasured
        CDNs rank first so each gets probed)."""
        eligible = CdnSelectionPolicy.eligible(assignments, content_type)
        names = [a.cdn.name for a in eligible]
        return sorted(
            names,
            key=lambda name: self._ewma_kbps.get(name, float("inf")),
            reverse=True,
        )


@dataclass(frozen=True)
class CdnAttempt:
    """Why one CDN did not serve a resilient fetch.

    ``outcome`` is ``"failed"`` (retries exhausted against this CDN) or
    ``"circuit-open"`` (skipped without trying).  ``attempts`` counts
    individual tries against this CDN (0 when skipped) and ``elapsed``
    is the time the fetcher spent on it per its injected clock.
    """

    cdn_name: str
    outcome: str
    attempts: int
    elapsed: float
    error: str = ""


@dataclass(frozen=True)
class FailoverOutcome:
    """Result of one resilient fetch: which CDN served, how hard it was."""

    cdn_name: str
    value: object
    attempts: int
    failed_cdns: Tuple[str, ...]
    skipped_open_circuits: Tuple[str, ...]


class ResilientFetcher:
    """CDN failover with per-CDN retry/backoff and circuit breakers.

    §2/§4.3 publishers keep multiple CDNs precisely for availability:
    when the preferred CDN fails, traffic must fail over rather than
    error out.  Each CDN gets its own :class:`CircuitBreaker`, so a CDN
    in sustained failure is skipped outright until its recovery window
    elapses; within a CDN, transient failures are retried with
    exponential backoff before failing over to the next-ranked CDN.
    """

    def __init__(
        self,
        broker: CdnBroker,
        *,
        policy: Optional[BackoffPolicy] = None,
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        seed: int = 0,
    ) -> None:
        self.broker = broker
        self.policy = policy or BackoffPolicy(retries=2, base_delay=0.01)
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._sleep = sleep
        self._seed = seed
        self._calls = 0
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, cdn_name: str) -> CircuitBreaker:
        if cdn_name not in self._breakers:
            self._breakers[cdn_name] = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                recovery_timeout=self.recovery_timeout,
                clock=self._clock,
                name=f"cdn:{cdn_name}",
            )
        return self._breakers[cdn_name]

    def fetch(
        self,
        assignments: Sequence[CdnAssignment],
        content_type: ContentType,
        fetch: Callable[[str], object],
    ) -> FailoverOutcome:
        """Fetch via the best available CDN, failing over on errors.

        ``fetch(cdn_name)`` performs the actual transfer; transient
        failures it raises (:class:`DeliveryError`,
        :class:`TransportError`) are retried with backoff, then the
        next-ranked CDN is tried.  Raises :class:`AllCdnsFailedError`
        (a :class:`DeliveryError`) only when every eligible CDN is down
        or circuit-open, with per-CDN :class:`CdnAttempt` attribution.
        """
        self._calls += 1
        attempts_total = 0
        attribution: List[CdnAttempt] = []
        failed: List[str] = []
        skipped: List[str] = []
        for name in self.broker.ranked(assignments, content_type):
            breaker = self.breaker(name)
            if not breaker.allow():
                breaker.rejected_calls += 1
                obs.counter("multicdn.circuit_skipped", cdn=name).inc()
                skipped.append(name)
                attribution.append(
                    CdnAttempt(
                        cdn_name=name,
                        outcome="circuit-open",
                        attempts=0,
                        elapsed=0.0,
                        error="circuit open; skipped without trying",
                    )
                )
                continue
            started = self._clock()
            try:
                value = retry_with_backoff(
                    lambda name=name: fetch(name),
                    policy=self.policy,
                    retry_on=(DeliveryError, TransportError),
                    seed=self._seed + self._calls,
                    sleep=self._sleep,
                )
            except RetryExhaustedError as exc:
                breaker.record_failure()
                attempts_total += exc.attempts
                failed.append(name)
                attribution.append(
                    CdnAttempt(
                        cdn_name=name,
                        outcome="failed",
                        attempts=exc.attempts,
                        elapsed=self._clock() - started,
                        error=str(exc.last_error) if exc.last_error else str(exc),
                    )
                )
                obs.counter("multicdn.failover", cdn=name).inc()
                obs.emit(
                    "multicdn.failover",
                    cdn=name,
                    attempts=exc.attempts,
                    content_type=content_type.value,
                )
                continue
            breaker.record_success()
            attempts_total += 1
            obs.counter("multicdn.served", cdn=name).inc()
            return FailoverOutcome(
                cdn_name=name,
                value=value,
                attempts=attempts_total,
                failed_cdns=tuple(failed),
                skipped_open_circuits=tuple(skipped),
            )
        obs.counter("multicdn.exhausted").inc()
        raise AllCdnsFailedError(
            "all eligible CDNs failed "
            f"(failed={failed}, circuit-open={skipped})",
            attribution=tuple(attribution),
        )
