"""CDN origin-server storage accounting and redundancy elimination.

§6: publishers proactively push content to a CDN origin which serves
cache misses from edges.  When multiple publishers (an owner and its
syndicators) push the *same* video ID at their own ladders, the origin
stores redundant renditions.  The paper quantifies the storage saved if
the CDN (a) removes copies whose bitrates match within a tolerance
factor, or (b) serves everyone from the owner's single copy (integrated
syndication).  This module implements that exact arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.entities.ladder import BitrateLadder
from repro.entities.video import Catalogue, Video
from repro.errors import DeliveryError
from repro.units import rendition_bytes


@dataclass(frozen=True)
class StoredRendition:
    """One rendition of one video pushed by one publisher."""

    publisher_id: str
    video_id: str
    bitrate_kbps: float
    size_bytes: float

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0:
            raise DeliveryError("stored bitrate must be positive")
        if self.size_bytes < 0:
            raise DeliveryError("stored size must be non-negative")


class OriginServer:
    """Origin storage for one CDN.

    Publishers push whole catalogues; the origin tracks every stored
    rendition and can compute its raw footprint, its footprint after
    bitrate-tolerance dedup, and its footprint under integrated
    syndication.
    """

    def __init__(self, cdn_name: str) -> None:
        if not cdn_name:
            raise DeliveryError("origin needs a CDN name")
        self.cdn_name = cdn_name
        self._stored: List[StoredRendition] = []

    def push_catalogue(
        self,
        publisher_id: str,
        catalogue: Catalogue,
        ladder: BitrateLadder,
    ) -> float:
        """Store every title of a catalogue at every ladder rung.

        Returns the bytes added.  Pushing the same (publisher, video,
        bitrate) twice is rejected — the management plane would not
        re-upload an existing rendition.
        """
        existing = {
            (s.publisher_id, s.video_id, s.bitrate_kbps)
            for s in self._stored
        }
        added = 0.0
        new_items: List[StoredRendition] = []
        for video in catalogue:
            for rendition in ladder:
                key = (publisher_id, video.video_id, rendition.bitrate_kbps)
                if key in existing:
                    raise DeliveryError(
                        f"{publisher_id} already pushed {video.video_id} "
                        f"@ {rendition.bitrate_kbps} kbps to {self.cdn_name}"
                    )
                size = rendition_bytes(
                    rendition.bitrate_kbps, video.duration_seconds
                )
                new_items.append(
                    StoredRendition(
                        publisher_id=publisher_id,
                        video_id=video.video_id,
                        bitrate_kbps=rendition.bitrate_kbps,
                        size_bytes=size,
                    )
                )
                added += size
        self._stored.extend(new_items)
        return added

    @property
    def stored_renditions(self) -> Tuple[StoredRendition, ...]:
        return tuple(self._stored)

    @property
    def publishers(self) -> Set[str]:
        return {s.publisher_id for s in self._stored}

    def total_bytes(self) -> float:
        """Raw (un-deduplicated) origin footprint."""
        return sum(s.size_bytes for s in self._stored)

    def deduplicated_bytes(self, tolerance: float) -> float:
        """Footprint after removing near-duplicate renditions.

        For each video ID, renditions across publishers are greedily
        grouped so that every member of a group is within ``tolerance``
        (fractional) of the group's representative bitrate; one copy per
        group is kept.  ``tolerance=0`` keeps exact duplicates only once.
        """
        if tolerance < 0:
            raise DeliveryError("tolerance must be non-negative")
        kept = 0.0
        for renditions in self._by_video().values():
            kept += _kept_bytes_after_dedup(renditions, tolerance)
        return kept

    def savings(self, tolerance: float) -> Tuple[float, float]:
        """(bytes saved, percent saved) at a dedup tolerance (Fig 18)."""
        total = self.total_bytes()
        if total <= 0:
            raise DeliveryError("origin is empty")
        deduped = self.deduplicated_bytes(tolerance)
        saved = total - deduped
        return saved, 100.0 * saved / total

    def integrated_bytes(self, owner_id: str) -> float:
        """Footprint under integrated syndication (§6).

        Every video that the owner stores is served to all publishers
        from the owner's copies alone; videos the owner does not store
        keep their current copies.
        """
        kept = 0.0
        for renditions in self._by_video().values():
            owner_copies = [
                s for s in renditions if s.publisher_id == owner_id
            ]
            if owner_copies:
                kept += sum(s.size_bytes for s in owner_copies)
            else:
                kept += _kept_bytes_after_dedup(renditions, 0.0)
        return kept

    def integrated_savings(self, owner_id: str) -> Tuple[float, float]:
        """(bytes saved, percent saved) under integrated syndication."""
        total = self.total_bytes()
        if total <= 0:
            raise DeliveryError("origin is empty")
        kept = self.integrated_bytes(owner_id)
        saved = total - kept
        return saved, 100.0 * saved / total

    def _by_video(self) -> Dict[str, List[StoredRendition]]:
        groups: Dict[str, List[StoredRendition]] = {}
        for stored in self._stored:
            groups.setdefault(stored.video_id, []).append(stored)
        return groups


def _kept_bytes_after_dedup(
    renditions: Sequence[StoredRendition], tolerance: float
) -> float:
    """Greedy near-duplicate grouping for one video's renditions.

    Sorted by bitrate, a rendition joins the current group while it is
    within ``tolerance`` of the group representative (the group's first,
    i.e. lowest, bitrate); otherwise it starts a new group.  The kept
    copy per group is its largest member, so that playback quality is
    never reduced by dedup.
    """
    ordered = sorted(renditions, key=lambda s: s.bitrate_kbps)
    kept = 0.0
    group_rep: Optional[float] = None
    group_max_bytes = 0.0
    for stored in ordered:
        if group_rep is None:
            group_rep = stored.bitrate_kbps
            group_max_bytes = stored.size_bytes
            continue
        gap = abs(stored.bitrate_kbps - group_rep)
        if gap <= tolerance * group_rep:
            group_max_bytes = max(group_max_bytes, stored.size_bytes)
        else:
            kept += group_max_bytes
            group_rep = stored.bitrate_kbps
            group_max_bytes = stored.size_bytes
    if group_rep is not None:
        kept += group_max_bytes
    return kept
