"""Anycast route-instability model.

§4.3: some CDNs use anycast to direct clients to servers; BGP route
changes can sever ongoing TCP connections, a concern for long video
transfers — yet one of the top-3 CDNs in the paper's dataset uses
anycast, "suggesting that anycast route instability has not been a
blocking factor".  This model lets benches quantify how often a view of
a given duration would suffer a route change at realistic change rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import DeliveryError


@dataclass(frozen=True)
class RouteChangeEvent:
    """A BGP route change hitting an ongoing session."""

    at_seconds: float
    reconnect_delay_seconds: float


class AnycastRouteModel:
    """Poisson route changes over a session's lifetime.

    ``daily_change_rate`` is the expected number of catchment changes a
    stationary client sees per day; measurement studies the paper cites
    place this well under one per day for most clients.
    """

    def __init__(
        self,
        daily_change_rate: float = 0.2,
        reconnect_delay_seconds: float = 2.0,
    ) -> None:
        if daily_change_rate < 0:
            raise DeliveryError("change rate must be non-negative")
        if reconnect_delay_seconds < 0:
            raise DeliveryError("reconnect delay must be non-negative")
        self.daily_change_rate = daily_change_rate
        self.reconnect_delay_seconds = reconnect_delay_seconds

    @property
    def per_second_rate(self) -> float:
        return self.daily_change_rate / 86_400.0

    def disruption_probability(self, view_seconds: float) -> float:
        """P[at least one route change during a view] = 1 - e^(-rt)."""
        if view_seconds < 0:
            raise DeliveryError("view duration must be non-negative")
        return 1.0 - math.exp(-self.per_second_rate * view_seconds)

    def sample_events(
        self, view_seconds: float, rng: np.random.Generator
    ) -> List[RouteChangeEvent]:
        """Sample the route-change times within one view."""
        if view_seconds < 0:
            raise DeliveryError("view duration must be non-negative")
        events: List[RouteChangeEvent] = []
        t = 0.0
        rate = self.per_second_rate
        if rate <= 0:
            return events
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= view_seconds:
                break
            events.append(
                RouteChangeEvent(
                    at_seconds=t,
                    reconnect_delay_seconds=self.reconnect_delay_seconds,
                )
            )
        return events

    def expected_stall_seconds(self, view_seconds: float) -> float:
        """Expected rebuffering added by route changes during a view."""
        return (
            self.per_second_rate
            * view_seconds
            * self.reconnect_delay_seconds
        )
