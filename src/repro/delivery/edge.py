"""Edge caches: LRU chunk caches in front of the origin.

§6 notes origin storage redundancy is easier to quantify than edge
redundancy because edges depend on access patterns; this module lets us
*simulate* those access patterns (and is exercised by an ablation bench
showing how independent syndication also pollutes edge caches).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.errors import DeliveryError


@dataclass
class CacheStats:
    """Hit/miss accounting for one edge cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_served: float = 0.0
    bytes_from_origin: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class EdgeCache:
    """A byte-capacity LRU cache keyed by opaque chunk identity.

    Keys are typically ``(publisher_id, video_id, bitrate, chunk_index)``
    — the same content syndicated under two publishers occupies two
    entries, exactly the redundancy §6 describes.
    """

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise DeliveryError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self._used_bytes = 0.0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> float:
        return self._used_bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def request(self, key: Hashable, size_bytes: float) -> bool:
        """Serve one chunk request; returns True on a cache hit.

        On a miss the chunk is fetched from the origin and inserted,
        evicting least-recently-used entries as needed.  Objects larger
        than the whole cache are served from the origin without being
        admitted.
        """
        if size_bytes < 0:
            raise DeliveryError("chunk size must be non-negative")
        self.stats.bytes_served += size_bytes
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self.stats.bytes_from_origin += size_bytes
        if size_bytes <= self.capacity_bytes:
            self._insert(key, size_bytes)
        return False

    def _insert(self, key: Hashable, size_bytes: float) -> None:
        while self._used_bytes + size_bytes > self.capacity_bytes:
            evicted_key, evicted_size = self._entries.popitem(last=False)
            self._used_bytes -= evicted_size
            self.stats.evictions += 1
        self._entries[key] = size_bytes
        self._used_bytes += size_bytes

    def purge(self) -> None:
        """Drop all entries (stats are preserved)."""
        self._entries.clear()
        self._used_bytes = 0.0
