"""Content distribution substrate: origins, edges, multi-CDN, networks.

§2/§4.3: publishers proactively push packaged content to CDN origin
servers; edges serve users and fetch misses from the origin; publishers
spread traffic across multiple CDNs, sometimes via a broker; one top
CDN uses anycast.  §6's storage-redundancy study runs against the
origin model here.
"""

from repro.delivery.origin import OriginServer, StoredRendition
from repro.delivery.edge import EdgeCache
from repro.delivery.multicdn import (
    CdnBroker,
    CdnSelectionPolicy,
    FailoverOutcome,
    ResilientFetcher,
    RoundRobinPolicy,
    WeightedPolicy,
    ContentTypeSplitPolicy,
)
from repro.delivery.anycast import AnycastRouteModel
from repro.delivery.network import NetworkPath, IspProfile, default_isp_profiles
from repro.delivery.edgesim import EdgeSyndicationStudy, EdgeStudyResult

__all__ = [
    "OriginServer",
    "StoredRendition",
    "EdgeCache",
    "CdnBroker",
    "CdnSelectionPolicy",
    "FailoverOutcome",
    "ResilientFetcher",
    "RoundRobinPolicy",
    "WeightedPolicy",
    "ContentTypeSplitPolicy",
    "AnycastRouteModel",
    "NetworkPath",
    "IspProfile",
    "default_isp_profiles",
    "EdgeSyndicationStudy",
    "EdgeStudyResult",
]
