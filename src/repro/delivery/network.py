"""Client network-path throughput model.

Figs 15/16 compare the QoE of owner versus syndicator clients on fixed
(ISP, CDN) combinations — "ISP X, CDN A" and "ISP Y, CDN B" for
California iPad clients.  The paper's mechanism for the gap is the
publishers' *ladder* choices, not the network, so the network model
holds the (ISP, CDN) path distribution fixed across publishers: a
lognormal session-mean throughput plus within-session variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import DeliveryError


@dataclass(frozen=True)
class NetworkPath:
    """Throughput distribution of one (ISP, CDN) combination.

    ``median_kbps`` and ``sigma`` parameterize a lognormal over the
    session-mean throughput; ``within_session_cv`` is the coefficient of
    variation of per-chunk throughput around the session mean.
    """

    isp: str
    cdn_name: str
    median_kbps: float
    sigma: float = 0.5
    within_session_cv: float = 0.25
    #: Probability per chunk of *entering* a congestion episode
    #: (cross-traffic burst, Wi-Fi fade, edge-server overload) ...
    outage_prob: float = 0.0
    #: ... during which throughput collapses to this fraction of the
    #: session mean.  Episodes last a geometric number of chunks with
    #: mean ``outage_mean_chunks``.  Sustained congestion is what makes
    #: a high ladder *floor* costly: a client that can shed load to a
    #: low rung rides the episode out, one pinned at 800 kbps starves
    #: (the Fig 16 mechanism).
    outage_factor: float = 0.15
    outage_mean_chunks: float = 5.0

    def __post_init__(self) -> None:
        if self.median_kbps <= 0:
            raise DeliveryError("median throughput must be positive")
        if self.sigma < 0 or self.within_session_cv < 0:
            raise DeliveryError("dispersion parameters must be non-negative")
        if not 0.0 <= self.outage_prob < 1.0:
            raise DeliveryError("outage probability must be in [0, 1)")
        if not 0.0 < self.outage_factor <= 1.0:
            raise DeliveryError("outage factor must be in (0, 1]")
        if self.outage_mean_chunks < 1.0:
            raise DeliveryError("episodes last at least one chunk")

    def sample_session_mean(self, rng: np.random.Generator) -> float:
        """Draw one client session's mean throughput in kbps."""
        return float(
            np.exp(rng.normal(np.log(self.median_kbps), self.sigma))
        )

    def sample_chunk_throughputs(
        self, session_mean_kbps: float, n_chunks: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-chunk throughputs around a session mean (kbps)."""
        if session_mean_kbps <= 0:
            raise DeliveryError("session mean must be positive")
        if n_chunks < 1:
            raise DeliveryError("need at least one chunk")
        if self.within_session_cv == 0:
            throughputs = np.full(n_chunks, float(session_mean_kbps))
        else:
            sigma = np.sqrt(np.log(1.0 + self.within_session_cv**2))
            mu = np.log(session_mean_kbps) - sigma**2 / 2.0
            throughputs = np.exp(rng.normal(mu, sigma, size=n_chunks))
        if self.outage_prob > 0:
            congested = np.zeros(n_chunks, dtype=bool)
            exit_prob = 1.0 / self.outage_mean_chunks
            in_episode = False
            for i in range(n_chunks):
                if in_episode:
                    congested[i] = True
                    if rng.uniform() < exit_prob:
                        in_episode = False
                elif rng.uniform() < self.outage_prob:
                    congested[i] = True
                    in_episode = rng.uniform() >= exit_prob
            throughputs = np.where(
                congested, throughputs * self.outage_factor, throughputs
            )
        return throughputs


@dataclass(frozen=True)
class IspProfile:
    """An ISP with per-CDN network paths."""

    name: str
    paths: Mapping[str, NetworkPath]

    def path_to(self, cdn_name: str) -> NetworkPath:
        try:
            return self.paths[cdn_name]
        except KeyError:
            raise DeliveryError(
                f"ISP {self.name!r} has no measured path to CDN {cdn_name!r}"
            ) from None


def default_isp_profiles() -> Dict[str, IspProfile]:
    """The two anonymized (ISP, CDN) combinations of Figs 15/16.

    ISP X is a cable ISP with a strong path to CDN A; ISP Y is a
    telco with a somewhat weaker path to CDN B.  Medians are chosen so
    the owner's 8 Mbps top rung is reachable for a healthy fraction of
    sessions while the syndicator's ~2 Mbps cap almost always binds —
    reproducing the paper's ~2.5x median average-bitrate gap — and the
    congestion-episode tail makes the syndicator's 800 kbps ladder
    floor costly, reproducing the Fig 16 rebuffering gap.
    """
    profiles = {}
    for isp_name, cdn_name, median in (
        ("X", "A", 9_500.0),
        ("Y", "B", 8_500.0),
    ):
        path = NetworkPath(
            isp=isp_name,
            cdn_name=cdn_name,
            median_kbps=median,
            sigma=1.2,
            within_session_cv=0.25,
            outage_prob=0.035,
            outage_factor=0.08,
            outage_mean_chunks=8.0,
        )
        profiles[isp_name] = IspProfile(
            name=isp_name, paths={cdn_name: path}
        )
    return profiles
