"""Log-log ordinary least squares with significance testing.

Fig 13 fits a line through log-complexity vs log-view-hours scatter
plots and reports the per-decade growth factor (e.g. "when view-hours
increase by a factor of 10, management-plane combinations increase by a
factor of 1.72x") along with a p-value at the 0.05 significance level.
The fit here is plain OLS on base-10 logarithms; the p-value is the
two-sided t-test on the slope, computed from the t survival function
(via the regularized incomplete beta function, so no scipy dependency
is required at runtime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class LogLogFit:
    """Result of an OLS fit of ``log10(y) = intercept + slope*log10(x)``."""

    slope: float
    intercept: float
    r_squared: float
    p_value: float
    n: int

    @property
    def per_decade_factor(self) -> float:
        """Multiplicative growth in y per 10x growth in x.

        This is the number the paper quotes: 1.72x for combinations,
        3.8x for protocol-titles, 1.8x for unique SDKs.
        """
        return 10.0**self.slope

    @property
    def is_sublinear(self) -> bool:
        """True when y grows slower than proportionally with x (§5)."""
        return self.slope < 1.0

    def predict(self, x: float) -> float:
        """Predicted y at x (both in linear space)."""
        if x <= 0:
            raise ValueError("x must be positive for a log-log model")
        return 10.0 ** (self.intercept + self.slope * math.log10(x))


def _betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b).

    Continued-fraction evaluation (Numerical Recipes §6.4), accurate to
    ~1e-12 for the t-distribution arguments used here.
    """
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function."""
    max_iter = 300
    eps = 1e-14
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def t_sf(t: float, df: float) -> float:
    """Survival function P[T > t] of Student's t with ``df`` degrees."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = df / (df + t * t)
    p = 0.5 * _betainc_regularized(df / 2.0, 0.5, x)
    if t < 0:
        return 1.0 - p
    return p


_EPS = float(np.finfo(float).eps)


def _degenerate_spread(values: np.ndarray, sum_sq_dev: float) -> bool:
    """Whether a sum of squared deviations is zero up to rounding.

    Inputs that differ only in the last few ulps produce a tiny but
    nonzero sum of squares; exact ``== 0.0`` guards miss them and the
    slope/r² arithmetic downstream then amplifies pure rounding noise.
    The tolerance scales with the data magnitude and count: deviations
    up to ~8 ulps of the largest value are considered degenerate.
    """
    if values.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(values))))
    tol = values.size * (8.0 * _EPS * scale) ** 2
    return sum_sq_dev <= tol


def fit_loglog(xs: Iterable[float], ys: Iterable[float]) -> LogLogFit:
    """Fit ``log10(y) ~ log10(x)`` by OLS and test slope != 0.

    Raises ``ValueError`` for fewer than three points or non-positive
    inputs (logs are undefined there; the paper's metrics are all >= 1).
    """
    x_arr = np.asarray(list(xs), dtype=float)
    y_arr = np.asarray(list(ys), dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have equal length")
    if x_arr.size < 3:
        raise ValueError("need at least three points for a regression")
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("log-log fit requires strictly positive data")
    lx = np.log10(x_arr)
    ly = np.log10(y_arr)
    n = lx.size
    mx = lx.mean()
    my = ly.mean()
    sxx = float(np.sum((lx - mx) ** 2))
    if _degenerate_spread(lx, sxx):
        raise ValueError("x values are all identical; slope is undefined")
    sxy = float(np.sum((lx - mx) * (ly - my)))
    slope = sxy / sxx
    intercept = my - slope * mx
    resid = ly - (intercept + slope * lx)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((ly - my) ** 2))
    if _degenerate_spread(ly, ss_tot):
        # y is constant up to rounding: the flat fit is exact.
        r_squared = 1.0
    else:
        r_squared = 1.0 - ss_res / ss_tot
    df = n - 2
    if ss_res <= 0.0 or math.isclose(ss_res, 0.0, abs_tol=_EPS * n):
        p_value = 0.0
    else:
        se_slope = math.sqrt(ss_res / df / sxx)
        t_stat = slope / se_slope
        p_value = 2.0 * t_sf(abs(t_stat), df)
    return LogLogFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        p_value=p_value,
        n=n,
    )
