"""Empirical cumulative distribution functions, optionally weighted.

Several figures in the paper are CDFs: Fig 4 (share of view-hours via a
protocol, across publishers), Fig 8 (view durations per platform,
weighted by view counts), Figs 14-16 (syndication prevalence and QoE).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class ECDF:
    """Weighted empirical CDF over a one-dimensional sample.

    ``ECDF(values, weights)`` builds the right-continuous step function
    ``F(x) = P[X <= x]`` where each sample point carries a non-negative
    weight (a weight of ``k`` is equivalent to ``k`` repeated samples).
    """

    def __init__(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        vals = np.asarray(list(values), dtype=float)
        if vals.size == 0:
            raise ValueError("ECDF requires at least one sample")
        if weights is None:
            wts = np.ones_like(vals)
        else:
            wts = np.asarray(list(weights), dtype=float)
            if wts.shape != vals.shape:
                raise ValueError(
                    f"weights shape {wts.shape} != values shape {vals.shape}"
                )
            if np.any(wts < 0):
                raise ValueError("weights must be non-negative")
            if not np.any(wts > 0):
                raise ValueError("at least one weight must be positive")
        order = np.argsort(vals, kind="stable")
        self._x = vals[order]
        cum = np.cumsum(wts[order])
        self._total = float(cum[-1])
        self._f = cum / self._total

    @property
    def support(self) -> Tuple[float, float]:
        """Smallest and largest sample values."""
        return float(self._x[0]), float(self._x[-1])

    @property
    def total_weight(self) -> float:
        return self._total

    def __call__(self, x: float) -> float:
        """Evaluate ``F(x) = P[X <= x]``."""
        idx = np.searchsorted(self._x, x, side="right")
        if idx == 0:
            return 0.0
        return float(self._f[idx - 1])

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation of the CDF at many points."""
        xs_arr = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self._x, xs_arr, side="right")
        out = np.zeros(xs_arr.shape, dtype=float)
        nonzero = idx > 0
        out[nonzero] = self._f[idx[nonzero] - 1]
        return out

    def quantile(self, q: float) -> float:
        """Smallest x with ``F(x) >= q`` (inverse CDF), for q in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile level must be in (0, 1], got {q}")
        idx = int(np.searchsorted(self._f, q, side="left"))
        idx = min(idx, self._x.size - 1)
        return float(self._x[idx])

    def median(self) -> float:
        return self.quantile(0.5)

    def survival(self, x: float) -> float:
        """``P[X > x]`` — used e.g. for 'views longer than 0.2 hours'."""
        return 1.0 - self(x)

    def steps(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) arrays suitable for step plotting or tables."""
        return self._x.copy(), self._f.copy()

    def as_series(self, n_points: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """Down-sample the CDF to ``n_points`` evenly spaced x positions.

        Useful for printing compact figure tables from large samples.
        """
        if n_points < 2:
            raise ValueError("need at least two points")
        lo, hi = self.support
        xs = np.linspace(lo, hi, n_points)
        return xs, self.evaluate(xs)
