"""Weighted summary statistics.

The paper's headline methodology is to weight every finding by
view-hours (§3): e.g. the "weighted average number of protocols" in
Fig 3c weights each publisher's protocol count by the publisher's
view-hours.  These helpers implement those aggregations.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


def _as_arrays(
    values: Iterable[float], weights: Optional[Iterable[float]]
) -> tuple:
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one value")
    if weights is None:
        wts = np.ones_like(vals)
    else:
        wts = np.asarray(list(weights), dtype=float)
        if wts.shape != vals.shape:
            raise ValueError("values and weights must have equal length")
        if np.any(wts < 0):
            raise ValueError("weights must be non-negative")
        if not np.any(wts > 0):
            raise ValueError("at least one weight must be positive")
    return vals, wts


def weighted_mean(
    values: Iterable[float], weights: Optional[Iterable[float]] = None
) -> float:
    """Weighted arithmetic mean; unweighted when ``weights`` is None."""
    vals, wts = _as_arrays(values, weights)
    return float(np.sum(vals * wts) / np.sum(wts))


def weighted_percentile(
    values: Iterable[float],
    q: float,
    weights: Optional[Iterable[float]] = None,
) -> float:
    """Weighted percentile ``q`` in [0, 100] using the inverse-CDF rule."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    vals, wts = _as_arrays(values, weights)
    order = np.argsort(vals, kind="stable")
    vals = vals[order]
    cum = np.cumsum(wts[order])
    target = q / 100.0 * cum[-1]
    idx = int(np.searchsorted(cum, target, side="left"))
    idx = min(idx, vals.size - 1)
    return float(vals[idx])


def weighted_share(
    flags: Iterable[bool], weights: Optional[Iterable[float]] = None
) -> float:
    """Fraction of total weight whose flag is true.

    This is the work-horse behind statements like "more than 90% of
    view-hours can be attributed to publishers who support more than one
    protocol" (§4.4): ``flags`` marks the qualifying publishers and
    ``weights`` carries their view-hours.
    """
    flag_list = [bool(f) for f in flags]
    vals = np.asarray(flag_list, dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one flag")
    if weights is None:
        wts = np.ones_like(vals)
    else:
        wts = np.asarray(list(weights), dtype=float)
        if wts.shape != vals.shape:
            raise ValueError("flags and weights must have equal length")
        if np.any(wts < 0):
            raise ValueError("weights must be non-negative")
    total = float(np.sum(wts))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float(np.sum(vals * wts) / total)
