"""Statistical primitives shared by the analyses.

The paper's figures are built from a handful of statistical shapes:
empirical CDFs (Figs 4, 8, 14-16), weighted and unweighted averages over
time (Figs 3c, 9c, 12c), decade bucketing by view-hours (Figs 3b, 9b,
12b), and ordinary least squares on log-log scatter plots with p-values
(Fig 13).  This package implements each from first principles on numpy.
"""

from repro.stats.cdf import ECDF
from repro.stats.weighted import (
    weighted_mean,
    weighted_percentile,
    weighted_share,
)
from repro.stats.regression import LogLogFit, fit_loglog
from repro.stats.bucketing import DecadeBuckets

__all__ = [
    "ECDF",
    "weighted_mean",
    "weighted_percentile",
    "weighted_share",
    "LogLogFit",
    "fit_loglog",
    "DecadeBuckets",
]
