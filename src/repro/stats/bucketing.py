"""Decade bucketing of publishers by daily view-hours.

Figs 3b, 9b and 12b bucket publishers by order of magnitude of daily
view-hours: the first bucket is publishers with at most ``X`` daily
view-hours (the paper withholds X for confidentiality; our synthetic
calibration fixes it), the next is (X, 10X], then (10X, 100X], and so
on.  Each bar is then decomposed by the number of protocols / platforms
/ CDNs the bucketed publishers use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass
class DecadeBuckets:
    """Decade-of-view-hours bucketing with per-bucket count histograms.

    Parameters
    ----------
    base:
        The confidential ``X``: the upper bound of the smallest bucket.
    n_buckets:
        Number of decade buckets; bucket ``i`` covers
        ``(base*10**(i-1), base*10**i]`` with bucket 0 covering
        ``(0, base]``.  Values above the last edge are clamped into the
        final bucket (the paper's right-most bar is open-ended).
    """

    base: float
    n_buckets: int = 6
    _members: List[List[Tuple[str, int, float]]] = field(init=False)

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("bucket base must be positive")
        if self.n_buckets < 1:
            raise ValueError("need at least one bucket")
        self._members = [[] for _ in range(self.n_buckets)]

    def bucket_index(self, view_hours: float) -> int:
        """Index of the decade bucket for a daily view-hours value."""
        if view_hours < 0:
            raise ValueError("view-hours must be non-negative")
        if view_hours <= self.base:
            return 0
        idx = int(math.ceil(math.log10(view_hours / self.base) - 1e-12))
        return min(idx, self.n_buckets - 1)

    def add(self, publisher_id: str, count: int, view_hours: float) -> None:
        """Record a publisher with its dimension count and view-hours."""
        if count < 0:
            raise ValueError("count must be non-negative")
        idx = self.bucket_index(view_hours)
        self._members[idx].append((publisher_id, count, view_hours))

    def label(self, idx: int) -> str:
        """Human-readable bucket label in units of X (e.g. '100X-1000X')."""
        if not 0 <= idx < self.n_buckets:
            raise IndexError(f"bucket index {idx} out of range")
        if idx == 0:
            return "<=X"
        lo = 10 ** (idx - 1)
        hi = 10**idx
        lo_str = "X" if lo == 1 else f"{lo}X"
        if idx == self.n_buckets - 1:
            return f">{lo_str}"
        return f"{lo_str}-{hi}X"

    def publisher_counts(self) -> List[int]:
        """Number of publishers in each bucket."""
        return [len(members) for members in self._members]

    def publisher_share(self) -> List[float]:
        """Percentage of all publishers in each bucket (Figs 3b/9b/12b y-axis)."""
        total = sum(len(m) for m in self._members)
        if total == 0:
            raise ValueError("no publishers added")
        return [100.0 * len(m) / total for m in self._members]

    def count_histogram(self, idx: int) -> Dict[int, int]:
        """Histogram of dimension counts among publishers in bucket ``idx``."""
        hist: Dict[int, int] = {}
        for _, count, _ in self._members[idx]:
            hist[count] = hist.get(count, 0) + 1
        return dict(sorted(hist.items()))

    def count_range(self, idx: int) -> Tuple[int, int]:
        """(min, max) dimension count in bucket ``idx``; (0, 0) if empty."""
        counts = [count for _, count, _ in self._members[idx]]
        if not counts:
            return (0, 0)
        return (min(counts), max(counts))

    def stacked_rows(self) -> List[Dict[str, object]]:
        """One row per bucket: label, % publishers, count breakdown.

        This is the tabular equivalent of the stacked-bar figures.
        """
        shares = self.publisher_share()
        rows: List[Dict[str, object]] = []
        for idx in range(self.n_buckets):
            rows.append(
                {
                    "bucket": self.label(idx),
                    "publishers": len(self._members[idx]),
                    "percent_publishers": shares[idx],
                    "count_histogram": self.count_histogram(idx),
                }
            )
        return rows

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[str, int, float]],
        base: float,
        n_buckets: int = 6,
    ) -> "DecadeBuckets":
        """Build buckets from (publisher_id, count, view_hours) triples."""
        buckets = cls(base=base, n_buckets=n_buckets)
        for publisher_id, count, view_hours in pairs:
            buckets.add(publisher_id, count, view_hours)
        return buckets


def modal_bucket(shares: Sequence[float]) -> int:
    """Index of the bucket holding the most publishers.

    §4.1 observes the tallest bar is the 100X-1000X bucket with over 35%
    of publishers; this helper lets tests and benches assert that.
    """
    if not shares:
        raise ValueError("no bucket shares provided")
    best = max(range(len(shares)), key=lambda i: shares[i])
    return best
