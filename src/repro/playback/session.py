"""Chunk-level playback session simulation.

Simulates one view: the player repeatedly asks the ABR for a rendition,
downloads the chunk at the sampled network throughput, and plays from a
buffer; when the buffer empties mid-download the viewer rebuffers.
Outputs are the two QoE metrics of §6: time-weighted average bitrate
and rebuffering ratio (fraction of the view spent rebuffering).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.delivery.network import NetworkPath
from repro.entities.ladder import BitrateLadder
from repro.errors import PlaybackError
from repro.playback.abr import AbrAlgorithm, AbrState, ThroughputAbr


@dataclass(frozen=True)
class SessionConfig:
    """Parameters of one simulated view."""

    view_seconds: float
    chunk_seconds: float = 6.0
    max_buffer_seconds: float = 30.0
    startup_chunks: int = 2
    ewma_alpha: float = 0.4

    def __post_init__(self) -> None:
        if self.view_seconds <= 0:
            raise PlaybackError("view duration must be positive")
        if self.chunk_seconds <= 0:
            raise PlaybackError("chunk duration must be positive")
        if self.max_buffer_seconds < self.chunk_seconds:
            raise PlaybackError("buffer must hold at least one chunk")
        if self.startup_chunks < 1:
            raise PlaybackError("need at least one startup chunk")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise PlaybackError("ewma alpha must be in (0, 1]")


@dataclass(frozen=True)
class SessionResult:
    """QoE outcome of one simulated view."""

    average_bitrate_kbps: float
    rebuffer_ratio: float
    rebuffer_seconds: float
    startup_delay_seconds: float
    played_seconds: float
    chunk_count: int
    switches: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.rebuffer_ratio <= 1.0:
            raise PlaybackError(
                f"rebuffer ratio out of range: {self.rebuffer_ratio}"
            )


def simulate_session(
    ladder: BitrateLadder,
    path: NetworkPath,
    config: SessionConfig,
    rng: np.random.Generator,
    abr: Optional[AbrAlgorithm] = None,
    session_mean_kbps: Optional[float] = None,
) -> SessionResult:
    """Simulate one view of ``view_seconds`` against a network path.

    ``session_mean_kbps`` pins the session's mean throughput (useful for
    paired owner/syndicator comparisons on identical network draws);
    when omitted it is sampled from the path's lognormal.
    """
    abr = abr or ThroughputAbr()
    n_chunks = int(math.ceil(config.view_seconds / config.chunk_seconds))
    mean_kbps = (
        session_mean_kbps
        if session_mean_kbps is not None
        else path.sample_session_mean(rng)
    )
    throughputs = path.sample_chunk_throughputs(mean_kbps, n_chunks, rng)

    buffer_seconds = 0.0
    rebuffer_seconds = 0.0
    startup_delay = 0.0
    played_weighted_kbps = 0.0
    switches = 0
    last_bitrate: Optional[float] = None
    ewma = throughputs[0]
    started = False

    for i in range(n_chunks):
        state = AbrState(
            buffer_seconds=buffer_seconds,
            last_throughput_kbps=float(throughputs[max(i - 1, 0)]),
            ewma_throughput_kbps=float(ewma),
        )
        rendition = abr.choose(ladder, state)
        if last_bitrate is not None and rendition.bitrate_kbps != last_bitrate:
            switches += 1
        last_bitrate = rendition.bitrate_kbps

        chunk_play_seconds = min(
            config.chunk_seconds,
            config.view_seconds - i * config.chunk_seconds,
        )
        download_seconds = (
            rendition.bitrate_kbps * config.chunk_seconds / throughputs[i]
        )
        if not started:
            startup_delay += download_seconds
            buffer_seconds += config.chunk_seconds
            if i + 1 >= config.startup_chunks:
                started = True
        else:
            if download_seconds > buffer_seconds:
                rebuffer_seconds += download_seconds - buffer_seconds
                buffer_seconds = 0.0
            else:
                buffer_seconds -= download_seconds
            buffer_seconds = min(
                buffer_seconds + config.chunk_seconds,
                config.max_buffer_seconds,
            )
        played_weighted_kbps += rendition.bitrate_kbps * chunk_play_seconds
        ewma = (
            config.ewma_alpha * throughputs[i]
            + (1 - config.ewma_alpha) * ewma
        )

    played_seconds = config.view_seconds
    total = played_seconds + rebuffer_seconds
    return SessionResult(
        average_bitrate_kbps=played_weighted_kbps / played_seconds,
        rebuffer_ratio=rebuffer_seconds / total,
        rebuffer_seconds=rebuffer_seconds,
        startup_delay_seconds=startup_delay,
        played_seconds=played_seconds,
        chunk_count=n_chunks,
        switches=switches,
    )
