"""Adaptive bitrate (ABR) selection algorithms.

Two classic families the paper cites: throughput-based prediction
(pick the highest rung under a conservative throughput estimate) and
buffer-based control in the style of BBA [65] (map buffer occupancy to
a rung through a linear reservoir/cushion function).  The Fig 15/16
reproduction shows the owner-vs-syndicator QoE gap persists across both
— it is a *ladder* effect, not an ABR effect (see the ablation bench).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.entities.ladder import BitrateLadder, Rendition
from repro.errors import PlaybackError


@dataclass
class AbrState:
    """Observable player state handed to the ABR each decision."""

    buffer_seconds: float
    last_throughput_kbps: float
    ewma_throughput_kbps: float


class AbrAlgorithm(abc.ABC):
    """Chooses the next chunk's rendition."""

    @abc.abstractmethod
    def choose(self, ladder: BitrateLadder, state: AbrState) -> Rendition:
        """Return the rendition to fetch next."""


class ThroughputAbr(AbrAlgorithm):
    """Rate-based ABR: highest rung under a discounted throughput estimate.

    ``safety`` discounts the EWMA estimate (0.8 means 'use at most 80%
    of estimated throughput'), the classic guard against overshoot.
    """

    def __init__(self, safety: float = 0.8) -> None:
        if not 0.0 < safety <= 1.0:
            raise PlaybackError("safety factor must be in (0, 1]")
        self.safety = safety

    def choose(self, ladder: BitrateLadder, state: AbrState) -> Rendition:
        budget = self.safety * state.ewma_throughput_kbps
        return ladder.nearest_at_most(budget)


class BufferBasedAbr(AbrAlgorithm):
    """Buffer-based ABR in the style of BBA [65].

    Below ``reservoir_seconds`` of buffer, pick the lowest rung; above
    ``reservoir + cushion`` pick the highest; in between, map buffer
    occupancy linearly onto the ladder's bitrate range.
    """

    def __init__(
        self, reservoir_seconds: float = 8.0, cushion_seconds: float = 16.0
    ) -> None:
        if reservoir_seconds < 0 or cushion_seconds <= 0:
            raise PlaybackError("bad reservoir/cushion configuration")
        self.reservoir_seconds = reservoir_seconds
        self.cushion_seconds = cushion_seconds

    def choose(self, ladder: BitrateLadder, state: AbrState) -> Rendition:
        buffer = state.buffer_seconds
        if buffer <= self.reservoir_seconds:
            return ladder[0]
        if buffer >= self.reservoir_seconds + self.cushion_seconds:
            return ladder[len(ladder) - 1]
        fraction = (buffer - self.reservoir_seconds) / self.cushion_seconds
        target = (
            ladder.min_bitrate_kbps
            + fraction * (ladder.max_bitrate_kbps - ladder.min_bitrate_kbps)
        )
        return ladder.nearest_at_most(target)


class HybridAbr(AbrAlgorithm):
    """Conservative hybrid: the lower of the rate and buffer choices.

    Takes the min-bitrate rendition of a :class:`ThroughputAbr` and a
    :class:`BufferBasedAbr` decision, so a drained buffer caps an
    optimistic throughput estimate and a stale throughput estimate caps
    an optimistic buffer.  Never picks above either constituent — the
    invariant the abr-policy-zoo degradation contract checks.
    """

    def __init__(
        self,
        throughput: ThroughputAbr = None,
        buffer_based: BufferBasedAbr = None,
    ) -> None:
        self.throughput = throughput or ThroughputAbr()
        self.buffer_based = buffer_based or BufferBasedAbr()

    def choose(self, ladder: BitrateLadder, state: AbrState) -> Rendition:
        by_rate = self.throughput.choose(ladder, state)
        by_buffer = self.buffer_based.choose(ladder, state)
        if by_rate.bitrate_kbps <= by_buffer.bitrate_kbps:
            return by_rate
        return by_buffer
