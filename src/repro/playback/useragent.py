"""HTTP user-agent strings for browser views.

§3: the dataset carries an HTTP user-agent for browser views (app views
carry an SDK and version instead).  The generator mints realistic UA
strings and the analysis side parses them back to a browser family —
so browser classification in the pipeline is exercised end to end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

_UA_TEMPLATES = {
    "chrome": (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
        "(KHTML, like Gecko) Chrome/{version}.0.0.0 Safari/537.36"
    ),
    "firefox": (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:{version}.0) "
        "Gecko/20100101 Firefox/{version}.0"
    ),
    "safari": (
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) "
        "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{version}.0 "
        "Safari/605.1.15"
    ),
    "edge": (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
        "(KHTML, like Gecko) Chrome/{version}.0.0.0 Safari/537.36 "
        "Edg/{version}.0.0.0"
    ),
    "ie11": (
        "Mozilla/5.0 (Windows NT 10.0; WOW64; Trident/7.0; rv:11.0) "
        "like Gecko"
    ),
}


@dataclass(frozen=True)
class UserAgentInfo:
    """Parsed browser identity."""

    browser: str
    major_version: Optional[int]

    def __str__(self) -> str:
        if self.major_version is None:
            return self.browser
        return f"{self.browser}/{self.major_version}"


def build_user_agent(browser: str, major_version: int = 60) -> str:
    """Mint a UA string for a browser family."""
    template = _UA_TEMPLATES.get(browser)
    if template is None:
        raise ValueError(f"unknown browser family {browser!r}")
    return template.format(version=major_version)


_EDGE_RE = re.compile(r"Edg(?:e|A|iOS)?/(\d+)")
_CHROME_RE = re.compile(r"Chrome/(\d+)")
_FIREFOX_RE = re.compile(r"Firefox/(\d+)")
_SAFARI_VERSION_RE = re.compile(r"Version/(\d+)[.\d]* Safari/")
_TRIDENT_RE = re.compile(r"Trident/\d+.*rv:(\d+)")


def parse_user_agent(ua: str) -> UserAgentInfo:
    """Classify a UA string into a browser family.

    Order matters: Edge embeds a Chrome token, Chrome embeds a Safari
    token, so detection runs most-specific first.  Unknown strings map
    to family 'other'.
    """
    if not ua:
        return UserAgentInfo(browser="other", major_version=None)
    match = _EDGE_RE.search(ua)
    if match:
        return UserAgentInfo("edge", int(match.group(1)))
    match = _TRIDENT_RE.search(ua)
    if match:
        return UserAgentInfo("ie11", int(match.group(1)))
    match = _CHROME_RE.search(ua)
    if match:
        return UserAgentInfo("chrome", int(match.group(1)))
    match = _FIREFOX_RE.search(ua)
    if match:
        return UserAgentInfo("firefox", int(match.group(1)))
    match = _SAFARI_VERSION_RE.search(ua)
    if match:
        return UserAgentInfo("safari", int(match.group(1)))
    return UserAgentInfo(browser="other", major_version=None)
