"""Device playback substrate: ABR algorithms and session simulation.

The control plane adaptively picks a bitrate per chunk (§2); playback
software embeds that logic per device SDK.  The session simulator here
produces the two QoE metrics the paper uses (§6): average bitrate of a
view and rebuffering ratio.
"""

from repro.playback.abr import (
    AbrAlgorithm,
    ThroughputAbr,
    BufferBasedAbr,
)
from repro.playback.session import SessionConfig, SessionResult, simulate_session
from repro.playback.useragent import (
    build_user_agent,
    parse_user_agent,
    UserAgentInfo,
)

__all__ = [
    "AbrAlgorithm",
    "ThroughputAbr",
    "BufferBasedAbr",
    "SessionConfig",
    "SessionResult",
    "simulate_session",
    "build_user_agent",
    "parse_user_agent",
    "UserAgentInfo",
]
