"""Per-session playback simulation batches with spawned seed streams.

:func:`simulate_session_batch` runs ``n`` independent client sessions
against one (ladder, path) pair.  Unlike the paired before/after
replay in :func:`repro.core.integrated.integrated_qoe_projection` —
which *must* consume one sequential stream so both arms see identical
network draws — a plain batch has no cross-session coupling, so every
session gets its own ``np.random.SeedSequence`` child spawned up front
in the parent.  That is the RPL102 discipline: a session's draws are a
pure function of ``(seed, index)``, which makes ``jobs > 1`` results
byte-identical to the serial loop and independent of scheduling.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.delivery.network import NetworkPath
from repro.entities.ladder import BitrateLadder
from repro.parallel import parallel_map, spawn_streams
from repro.playback.abr import AbrAlgorithm
from repro.playback.session import (
    SessionConfig,
    SessionResult,
    simulate_session,
)


def _session_task(
    ladder: BitrateLadder,
    path: NetworkPath,
    config: SessionConfig,
    abr: Optional[AbrAlgorithm],
    stream: np.random.SeedSequence,
) -> SessionResult:
    """Worker entry point: one session off its own spawned stream."""
    rng = np.random.default_rng(stream)
    return simulate_session(
        ladder,
        path,
        config,
        rng,
        abr=abr,
        session_mean_kbps=path.sample_session_mean(rng),
    )


def simulate_session_batch(
    ladder: BitrateLadder,
    path: NetworkPath,
    config: SessionConfig,
    seed: int,
    sessions: int,
    abr: Optional[AbrAlgorithm] = None,
    jobs: int = 1,
) -> Tuple[SessionResult, ...]:
    """Simulate ``sessions`` independent views, optionally on a pool.

    Each session draws its mean throughput and chunk noise from its
    own ``SeedSequence`` child of ``seed``, so the result tuple is the
    same for any ``jobs``.  Results come back in session-index order.
    """
    streams = spawn_streams(seed, sessions)
    with obs.span(
        "playback.batch", sessions=sessions, jobs=jobs
    ) as span:
        results = parallel_map(
            partial(_session_task, ladder, path, config, abr),
            streams,
            jobs=jobs,
            label="playback.session_map",
        )
        obs.counter("playback.sessions").inc(len(results))
        span.set(
            rebuffered=sum(1 for r in results if r.rebuffer_seconds > 0)
        )
    return tuple(results)


__all__ = ["simulate_session_batch"]
