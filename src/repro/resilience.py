"""Reusable resilience primitives: retry/backoff, circuit breaker, deadline.

A production management-plane backend ingests telemetry from millions of
player SDKs over unreliable transports, so every remote hop needs the
same three guards: bounded retries with exponential backoff and jitter,
a circuit breaker that stops hammering a failing dependency, and a
deadline so no call blocks forever.  These primitives are deterministic
by construction — jitter comes from a seeded RNG and both the sleeper
and the clock are injectable — which keeps simulations and tests
reproducible while remaining drop-in usable against wall-clock time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple, Type, TypeVar

from repro import obs
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
)

T = TypeVar("T")


# ----------------------------------------------------------------------
# Retry with exponential backoff + jitter
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule: ``base * multiplier**attempt``.

    ``jitter`` is the fraction of each delay that is randomized: a delay
    ``d`` becomes ``d * (1 - jitter + jitter * u)`` for ``u ~ U[0, 1)``,
    so ``jitter=0`` is fully deterministic and ``jitter=1`` spreads the
    delay uniformly over ``(0, d]``.
    """

    retries: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ResilienceError("retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ResilienceError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter + self.jitter * rng.random())

    def schedule(self, seed: int = 0) -> List[float]:
        """The full delay schedule for one seeded run (for inspection)."""
        rng = random.Random(seed)
        return [self.delay(i, rng) for i in range(self.retries)]


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    policy: Optional[BackoffPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (ResilienceError,),
    seed: int = 0,
    sleep: Optional[Callable[[float], None]] = None,
    deadline: Optional["Deadline"] = None,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy's retries run out.

    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.  ``sleep`` defaults to ``None`` (no actual
    sleeping — the schedule is still computed and reported), which keeps
    simulated workloads fast; pass ``time.sleep`` for wall-clock waits.
    A ``deadline`` is checked before every attempt and aborts with
    :class:`DeadlineExceededError`.  On exhaustion raises
    :class:`RetryExhaustedError` chained to the last failure.
    """
    pol = policy or BackoffPolicy()
    rng = random.Random(seed)
    last: Optional[BaseException] = None
    attempts = 0
    for attempt in range(pol.retries + 1):
        if deadline is not None:
            deadline.check("retry_with_backoff")
        attempts += 1
        try:
            result = fn()
        except retry_on as exc:  # noqa: PERF203 - the loop IS the point
            last = exc
            if attempt >= pol.retries:
                break
            wait = pol.delay(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, exc, wait)
            if sleep is not None:
                sleep(wait)
        else:
            obs.histogram("retry.attempts").observe(attempts)
            return result
    obs.histogram("retry.attempts").observe(attempts)
    obs.counter("retry.exhausted").inc()
    raise RetryExhaustedError(
        f"gave up after {attempts} attempts: {last}",
        attempts=attempts,
        last_error=last if isinstance(last, Exception) else None,
    ) from last


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class CircuitState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic closed → open → half-open breaker.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``recovery_timeout`` seconds (per the injectable ``clock``) the next
    ``allow()`` transitions to half-open and admits **exactly one**
    probe call per half-open window: the first ``allow()`` claims the
    probe slot and further calls are rejected until the probe resolves
    (a success closes the circuit, a failure re-opens it).  Inspecting
    :attr:`state` never claims the slot.

    Only *operational* failures trip the breaker: by default
    :class:`~repro.errors.ReproError` (which covers every transport
    and delivery error this library raises) plus ``OSError`` for raw
    socket/file failures from user-supplied callables.  Programming
    errors — ``TypeError``, ``KeyError`` and friends — propagate
    without touching the failure count, so a code bug cannot mask
    itself as a downed dependency.  Pass ``failure_types`` to widen or
    narrow the set.

    ``name`` labels this breaker in the obs layer: every state
    transition increments ``breaker.transitions{breaker,from,to}`` and
    emits a structured ``breaker.transition`` log event, so a fleet of
    per-CDN breakers is triageable from one metrics snapshot.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        failure_types: Tuple[Type[BaseException], ...] = (ReproError, OSError),
        name: str = "default",
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError("failure_threshold must be >= 1")
        if recovery_timeout < 0:
            raise ResilienceError("recovery_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.failure_types = failure_types
        self.name = name
        self._clock = clock
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open_probe_claimed = False
        self.rejected_calls = 0

    @property
    def state(self) -> CircuitState:
        self._maybe_half_open()
        return self._state

    def _transition(self, new_state: CircuitState) -> None:
        """Move to ``new_state``, recording the edge if it is one."""
        old = self._state
        self._state = new_state
        if old is new_state:
            return
        if new_state is CircuitState.HALF_OPEN:
            # A fresh half-open window gets a fresh probe slot.
            self._half_open_probe_claimed = False
        obs.counter(
            "breaker.transitions",
            breaker=self.name,
            **{"from": old.value, "to": new_state.value},
        ).inc()
        obs.emit(
            "breaker.transition",
            breaker=self.name,
            from_state=old.value,
            to_state=new_state.value,
            consecutive_failures=self._consecutive_failures,
        )

    def _maybe_half_open(self) -> None:
        if self._state is CircuitState.OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.recovery_timeout:
                self._transition(CircuitState.HALF_OPEN)

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state a ``True`` return *claims* the single
        probe slot for this window; callers that get ``True`` must
        follow up with :meth:`record_success` or :meth:`record_failure`
        (as :meth:`call` does).  Concurrent callers see ``False`` until
        the probe resolves.
        """
        self._maybe_half_open()
        if self._state is CircuitState.HALF_OPEN:
            if self._half_open_probe_claimed:
                return False
            self._half_open_probe_claimed = True
            return True
        return self._state is not CircuitState.OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._half_open_probe_claimed = False
        self._transition(CircuitState.CLOSED)
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state is CircuitState.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(CircuitState.OPEN)
            self._opened_at = self._clock()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            self.rejected_calls += 1
            obs.counter("breaker.rejected", breaker=self.name).inc()
            raise CircuitOpenError(
                f"circuit open ({self._consecutive_failures} consecutive "
                "failures); call rejected"
            )
        try:
            result = fn()
        except self.failure_types:
            self.record_failure()
            raise
        self.record_success()
        return result


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


class Deadline:
    """A time budget checked cooperatively via :meth:`check`."""

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds < 0:
            raise ResilienceError("deadline must be >= 0 seconds")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    def remaining(self) -> float:
        return self.seconds - (self._clock() - self._started)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{label} exceeded its {self.seconds:.3f}s deadline"
            )
