"""The measurement-platform backend.

Models the Conviva-style service of §3: it collects monitoring events
from player libraries across devices, sessionizes them into view
records, batches records into snapshot-stamped datasets, and supports
the platform's operational query — aggregate failure/QoE rollups per
management-plane combination, which §5 notes Conviva uses to triage
failures automatically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import date
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.packaging.manifest.detect import detect_protocol_or_none
from repro.telemetry.dataset import Dataset
from repro.telemetry.events import Heartbeat, SessionEnd, SessionStart, Sessionizer
from repro.telemetry.ingest import ErrorPolicy, IngestPipeline, IngestReport
from repro.telemetry.records import ViewRecord


@dataclass(frozen=True)
class ComboRollup:
    """Aggregate QoE for one (CDN, protocol, device) combination.

    This is the §5 'management plane combination' unit: failures may be
    caused by any single component or any interaction among them, so
    the platform aggregates per combination.
    """

    cdn_name: str
    protocol: Optional[str]
    device_model: str
    views: float
    view_hours: float
    mean_rebuffer_ratio: float
    mean_bitrate_kbps: float


class TelemetryBackend:
    """Ingests events and records; answers rollup queries."""

    def __init__(self) -> None:
        # The backend keeps the canonical record store; the sessionizer
        # must not retain a second copy of every folded record.
        self._sessionizer = Sessionizer(retain_records=False)
        self._records: List[ViewRecord] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest_event(self, event: object) -> Optional[ViewRecord]:
        """Feed one raw monitoring event; returns a record on session end."""
        record = self._sessionizer.ingest(event)
        if record is not None:
            self._records.append(record)
        return record

    def ingest_record(self, record: ViewRecord) -> None:
        """Feed a pre-sessionized record (bulk import path)."""
        self._records.append(record)

    def ingest_records(self, records: Iterable[ViewRecord]) -> int:
        count = 0
        for record in records:
            self.ingest_record(record)
            count += 1
        return count

    def ingest_events(
        self,
        events: Iterable[object],
        policy: ErrorPolicy | str = ErrorPolicy.QUARANTINE,
        *,
        reorder_buffer: int = 256,
        max_idle_events: Optional[int] = None,
        metrics=None,
    ) -> IngestReport:
        """Fault-tolerant batch ingestion of a raw event stream.

        Runs the events through an :class:`IngestPipeline` under the
        given :class:`ErrorPolicy` (``strict`` raises on the first bad
        event exactly like :meth:`ingest_event`; ``quarantine`` and
        ``repair`` never raise), stores the folded records, and returns
        the pipeline's :class:`IngestReport` with the dead-letter queue.

        ``metrics`` optionally names the
        :class:`~repro.obs.metrics.MetricsRegistry` that should own the
        pipeline's counters (e.g. ``obs.metrics()`` so a ``--metrics-out``
        snapshot and the report share instruments); by default each
        batch counts in isolation.
        """
        pipeline = IngestPipeline(
            policy,
            reorder_buffer=reorder_buffer,
            max_idle_events=max_idle_events,
            metrics=metrics,
        )
        report = pipeline.run(events)
        self._records.extend(report.records)
        return report

    @property
    def record_count(self) -> int:
        return len(self._records)

    def dataset(self) -> Dataset:
        """Snapshot the backend's records into an immutable dataset."""
        return Dataset(self._records)

    # ------------------------------------------------------------------
    # Operational queries
    # ------------------------------------------------------------------

    def combo_rollups(
        self, publisher_id: Optional[str] = None
    ) -> List[ComboRollup]:
        """Per-combination QoE rollups, the §5 triaging primitive.

        Records naming multiple CDNs contribute to each CDN's combo
        (chunks were genuinely served by each).
        """
        groups: Dict[Tuple[str, Optional[str], str], List[ViewRecord]] = (
            defaultdict(list)
        )
        for record in self._records:
            if publisher_id is not None and record.publisher_id != publisher_id:
                continue
            protocol = detect_protocol_or_none(record.url)
            protocol_name = protocol.value if protocol else None
            for cdn in record.cdn_names:
                groups[(cdn, protocol_name, record.device_model)].append(
                    record
                )
        rollups: List[ComboRollup] = []
        for (cdn, protocol_name, device), records in sorted(
            groups.items(), key=lambda item: item[0]
        ):
            views = sum(r.views for r in records)
            if views > 0:
                mean_rebuffer = (
                    sum(r.rebuffer_ratio * r.views for r in records) / views
                )
                mean_bitrate = (
                    sum(r.avg_bitrate_kbps * r.views for r in records) / views
                )
            else:
                # A combo with zero summed views has no meaningful mean;
                # report zeros instead of dividing by zero.
                mean_rebuffer = 0.0
                mean_bitrate = 0.0
            rollups.append(
                ComboRollup(
                    cdn_name=cdn,
                    protocol=protocol_name,
                    device_model=device,
                    views=views,
                    view_hours=sum(r.view_hours for r in records),
                    mean_rebuffer_ratio=mean_rebuffer,
                    mean_bitrate_kbps=mean_bitrate,
                )
            )
        return rollups

    def worst_combos(
        self, n: int = 5, min_views: float = 1.0
    ) -> List[ComboRollup]:
        """Combinations with the worst rebuffering — triage candidates."""
        if n < 1:
            raise DatasetError("n must be positive")
        eligible = [
            rollup
            for rollup in self.combo_rollups()
            if rollup.views >= min_views
        ]
        eligible.sort(key=lambda r: r.mean_rebuffer_ratio, reverse=True)
        return eligible[:n]
