"""Monitoring-library events: the raw feed behind view records.

§3: Conviva ships a monitoring library that publishers integrate with
their players; it reports per-view information to a backend.  We model
the event granularity one level below the view record — session start,
periodic heartbeats, and session end — and the sessionization that
folds an event stream back into one :class:`ViewRecord`.  The synthetic
generator normally emits records directly; this module exists so the
ingestion path (events -> record) is a real, tested code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import ConnectionType, ContentType
from repro.errors import DatasetError
from repro.telemetry.records import ViewRecord
from repro.units import seconds_to_hours


@dataclass(frozen=True)
class SessionStart:
    """Emitted when playback begins."""

    session_id: str
    snapshot: date
    publisher_id: str
    url: str
    video_id: str
    device_model: str
    os_name: str
    content_type: ContentType
    bitrate_ladder_kbps: Tuple[float, ...]
    user_agent: Optional[str] = None
    sdk_name: Optional[str] = None
    sdk_version: Optional[str] = None
    is_syndicated: bool = False
    owner_id: Optional[str] = None
    isp: Optional[str] = None
    geo: Optional[str] = None
    connection: ConnectionType = ConnectionType.WIFI


@dataclass(frozen=True)
class Heartbeat:
    """Periodic playback report (Conviva uses ~20 s heartbeats).

    ``seq`` is an optional per-session sequence number assigned by the
    monitoring library; when present it lets the ingestion layer detect
    duplicated heartbeats that are otherwise byte-identical.
    """

    session_id: str
    interval_seconds: float
    playing_seconds: float
    rebuffering_seconds: float
    bitrate_kbps: float
    cdn_name: str
    seq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise DatasetError("heartbeat interval must be positive")
        if self.playing_seconds < 0 or self.rebuffering_seconds < 0:
            raise DatasetError("heartbeat time components must be >= 0")
        if (
            self.playing_seconds + self.rebuffering_seconds
            > self.interval_seconds + 1e-6
        ):
            raise DatasetError("heartbeat components exceed the interval")


@dataclass(frozen=True)
class SessionEnd:
    """Emitted when playback stops."""

    session_id: str


class Sessionizer:
    """Folds an event stream into view records.

    Events may interleave across sessions; a record is produced when a
    session's end event arrives.  Sessions must start before they beat
    or end, and heartbeats after an end are rejected.

    With ``retain_records=False`` folded records are returned to the
    caller but not accumulated internally, so a long-lived owner (e.g.
    :class:`~repro.telemetry.backend.TelemetryBackend`) that keeps its
    own record store does not hold every record twice.
    """

    def __init__(self, retain_records: bool = True) -> None:
        self._open: Dict[str, SessionStart] = {}
        self._beats: Dict[str, List[Heartbeat]] = {}
        self._records: List[ViewRecord] = []
        self._retain_records = retain_records
        self._folded = 0

    def ingest(self, event: object) -> Optional[ViewRecord]:
        """Process one event; returns a record when a session closes."""
        if isinstance(event, SessionStart):
            if event.session_id in self._open:
                raise DatasetError(
                    f"session {event.session_id!r} started twice"
                )
            self._open[event.session_id] = event
            self._beats[event.session_id] = []
            return None
        if isinstance(event, Heartbeat):
            if event.session_id not in self._open:
                raise DatasetError(
                    f"heartbeat for unknown session {event.session_id!r}"
                )
            self._beats[event.session_id].append(event)
            return None
        if isinstance(event, SessionEnd):
            start = self._open.get(event.session_id)
            if start is None:
                raise DatasetError(
                    f"end for unknown session {event.session_id!r}"
                )
            # Fold BEFORE popping: a fold failure (e.g. no heartbeats)
            # must leave the session recoverable, not destroy it.
            record = self._fold(start, self._beats.get(event.session_id, ()))
            del self._open[event.session_id]
            self._beats.pop(event.session_id, None)
            if self._retain_records:
                self._records.append(record)
            self._folded += 1
            return record
        raise DatasetError(f"unknown event type {type(event).__name__}")

    @property
    def records(self) -> Tuple[ViewRecord, ...]:
        return tuple(self._records)

    @property
    def folded_count(self) -> int:
        """Sessions folded so far (counted even without retention)."""
        return self._folded

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    @staticmethod
    def _fold(
        start: SessionStart, beats: Sequence[Heartbeat]
    ) -> ViewRecord:
        if not beats:
            raise DatasetError(
                f"session {start.session_id!r} ended without heartbeats"
            )
        playing = sum(b.playing_seconds for b in beats)
        rebuffering = sum(b.rebuffering_seconds for b in beats)
        if playing <= 0:
            raise DatasetError(
                f"session {start.session_id!r} reported no playback"
            )
        avg_bitrate = (
            sum(b.bitrate_kbps * b.playing_seconds for b in beats) / playing
        )
        cdns: List[str] = []
        for beat in beats:
            if beat.cdn_name not in cdns:
                cdns.append(beat.cdn_name)
        total = playing + rebuffering
        return ViewRecord(
            snapshot=start.snapshot,
            publisher_id=start.publisher_id,
            url=start.url,
            device_model=start.device_model,
            os_name=start.os_name,
            cdn_names=tuple(cdns),
            bitrate_ladder_kbps=start.bitrate_ladder_kbps,
            view_duration_hours=seconds_to_hours(playing),
            avg_bitrate_kbps=avg_bitrate,
            rebuffer_ratio=rebuffering / total,
            content_type=start.content_type,
            video_id=start.video_id,
            weight=1.0,
            user_agent=start.user_agent,
            sdk_name=start.sdk_name,
            sdk_version=start.sdk_version,
            is_syndicated=start.is_syndicated,
            owner_id=start.owner_id,
            isp=start.isp,
            geo=start.geo,
            connection=start.connection,
        )
