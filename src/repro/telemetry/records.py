"""The per-view record schema (§3).

Each view in the Conviva dataset carries: an anonymized publisher ID; a
URL with an anonymized video ID but the real manifest extension; device
model and OS; HTTP user-agent (browser views) or SDK name and version
(app views); the CDN(s) used; the available bitrate ladder; viewing
time; and delivery performance (average bitrate, rebuffering).

:class:`ViewRecord` mirrors that schema.  Records are *weighted*: a
record with ``weight=w`` stands for ``w`` views of identical character,
which keeps a 27-month dataset analyzable in memory without changing
any aggregate (the weight-invariance property is tested).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from datetime import date
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.constants import ConnectionType, ContentType
from repro.errors import DatasetError


@dataclass(frozen=True)
class ViewRecord:
    """One (weighted) view, as reported by the monitoring library."""

    snapshot: date
    publisher_id: str
    url: str
    device_model: str
    os_name: str
    cdn_names: Tuple[str, ...]
    bitrate_ladder_kbps: Tuple[float, ...]
    view_duration_hours: float
    avg_bitrate_kbps: float
    rebuffer_ratio: float
    content_type: ContentType
    video_id: str
    weight: float = 1.0
    user_agent: Optional[str] = None
    sdk_name: Optional[str] = None
    sdk_version: Optional[str] = None
    is_syndicated: bool = False
    owner_id: Optional[str] = None
    isp: Optional[str] = None
    geo: Optional[str] = None
    connection: ConnectionType = ConnectionType.WIFI

    def __post_init__(self) -> None:
        if not self.publisher_id:
            raise DatasetError("record missing publisher_id")
        if not self.url:
            raise DatasetError("record missing url")
        if not self.cdn_names:
            raise DatasetError("record missing CDN names")
        if self.view_duration_hours < 0:
            raise DatasetError("view duration must be non-negative")
        if self.weight <= 0:
            raise DatasetError("record weight must be positive")
        if not 0.0 <= self.rebuffer_ratio <= 1.0:
            raise DatasetError(
                f"rebuffer ratio out of range: {self.rebuffer_ratio}"
            )
        if self.avg_bitrate_kbps < 0:
            raise DatasetError("average bitrate must be non-negative")

    @property
    def view_hours(self) -> float:
        """Total view-hours this weighted record contributes."""
        return self.weight * self.view_duration_hours

    @property
    def views(self) -> float:
        """Total views this weighted record contributes."""
        return self.weight

    @property
    def is_app_view(self) -> bool:
        """App views carry an SDK; browser views carry a user-agent (§3)."""
        return self.sdk_name is not None

    def to_json_dict(self) -> Dict[str, Any]:
        """Serialize to plain JSON-compatible types."""
        data = asdict(self)
        data["snapshot"] = self.snapshot.isoformat()
        data["content_type"] = self.content_type.value
        data["connection"] = self.connection.value
        data["cdn_names"] = list(self.cdn_names)
        data["bitrate_ladder_kbps"] = list(self.bitrate_ladder_kbps)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ViewRecord":
        try:
            return cls(
                snapshot=date.fromisoformat(data["snapshot"]),
                publisher_id=data["publisher_id"],
                url=data["url"],
                device_model=data["device_model"],
                os_name=data["os_name"],
                cdn_names=tuple(data["cdn_names"]),
                bitrate_ladder_kbps=tuple(
                    float(b) for b in data["bitrate_ladder_kbps"]
                ),
                view_duration_hours=float(data["view_duration_hours"]),
                avg_bitrate_kbps=float(data["avg_bitrate_kbps"]),
                rebuffer_ratio=float(data["rebuffer_ratio"]),
                content_type=ContentType(data["content_type"]),
                video_id=data["video_id"],
                weight=float(data.get("weight", 1.0)),
                user_agent=data.get("user_agent"),
                sdk_name=data.get("sdk_name"),
                sdk_version=data.get("sdk_version"),
                is_syndicated=bool(data.get("is_syndicated", False)),
                owner_id=data.get("owner_id"),
                isp=data.get("isp"),
                geo=data.get("geo"),
                connection=ConnectionType(data.get("connection", "wifi")),
            )
        except (KeyError, ValueError) as exc:
            raise DatasetError(f"malformed view record: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ViewRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"record is not valid JSON: {exc}") from exc
        return cls.from_json_dict(data)
