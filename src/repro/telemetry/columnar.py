"""Columnar backend for :class:`~repro.telemetry.dataset.Dataset`.

A :class:`ColumnStore` mirrors one immutable tuple of
:class:`~repro.telemetry.records.ViewRecord` as NumPy arrays, built
lazily per column and shared by every view sliced from the same root
dataset.  Categorical fields (snapshot, publisher, video id, ...) are
interned into integer codes so group-bys reduce to ``np.bincount`` over
codes; numeric measures (view-hours, views) are plain float64 arrays.

Derived columns — values computed from a record rather than stored on
it, such as the protocol detected from the URL — are registered through
:class:`ColumnKey`: a *named* single-valued record function.  The store
evaluates the function once per record on first use and memoizes the
codes under the key's name, so every analysis that groups by the same
derived key shares one classification pass.  A derived function may
return ``None`` for out-of-scope records; those rows receive the
sentinel code ``-1`` and are excluded from group-bys.

Everything here is immutable after construction of the record tuple:
columns are only ever *added* to the caches, never changed, which is
why aggregation memoization in the dataset layer needs no invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.telemetry.records import ViewRecord

#: Sentinel code for records a derived column does not classify.
OUT_OF_SCOPE = -1


@dataclass(frozen=True)
class ColumnKey:
    """A named, single-valued derived column.

    ``name`` identifies the column in the store's cache (two keys with
    the same name must compute the same values); ``fn`` maps a record
    to a hashable value, or ``None`` when the record is out of scope.
    """

    name: str
    fn: Callable[[ViewRecord], object]

    def __repr__(self) -> str:  # fn identity is noise in test output
        return f"ColumnKey({self.name!r})"


class ColumnStore:
    """Lazily materialized column arrays over one record tuple."""

    def __init__(self, records: Tuple[ViewRecord, ...]) -> None:
        self.records = records
        self._codes: Dict[str, Tuple[np.ndarray, Tuple[object, ...]]] = {}
        self._numeric: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------

    def numeric(self, name: str) -> np.ndarray:
        """A float64 measure column (``view_hours`` or ``views``)."""
        column = self._numeric.get(name)
        if column is None:
            # map(attrgetter) keeps the extraction loop in C; the
            # view-hours product is then a vectorized multiply instead
            # of a per-record Python float multiplication.
            if name == "view_hours":
                column = self.numeric("views") * self._pull(
                    "view_duration_hours"
                )
            elif name == "views":
                column = self._pull("weight")
            else:
                raise KeyError(f"unknown numeric column {name!r}")
            self._numeric[name] = column
        return column

    def _pull(self, attr: str) -> np.ndarray:
        """Extract one float attribute across all records."""
        return np.fromiter(
            map(attrgetter(attr), self.records),
            dtype=np.float64,
            count=len(self.records),
        )

    def field_codes(
        self, field: str
    ) -> Tuple[np.ndarray, Tuple[object, ...]]:
        """Interned codes for a stored record attribute."""
        cached = self._codes.get(field)
        if cached is None:
            cached = self._intern(
                field, map(attrgetter(field), self.records)
            )
        return cached

    def derived_codes(
        self, key: ColumnKey
    ) -> Tuple[np.ndarray, Tuple[object, ...]]:
        """Interned codes for a derived column, memoized by name."""
        cached = self._codes.get(key.name)
        if cached is None:
            cached = self._intern(key.name, map(key.fn, self.records))
        return cached

    def codes_for(
        self, key: "str | ColumnKey"
    ) -> Tuple[np.ndarray, Tuple[object, ...]]:
        if isinstance(key, ColumnKey):
            return self.derived_codes(key)
        return self.field_codes(key)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _intern(
        self, name: str, values: Iterable[object]
    ) -> Tuple[np.ndarray, Tuple[object, ...]]:
        """Intern values to first-appearance codes, loops kept in C.

        ``dict.fromkeys`` collects the distinct values in first-
        appearance order without a Python-level loop; the code lookup
        then runs as ``map(lookup.__getitem__, ...)`` feeding
        ``np.fromiter``, so every pass over the record axis executes
        inside the interpreter's C machinery.  ``None`` (out of scope)
        is routed through the lookup table itself rather than a
        per-value branch.
        """
        materialized = list(values)
        uniques = dict.fromkeys(materialized)
        uniques.pop(None, None)
        lookup: Dict[object, int] = {
            value: code for code, value in enumerate(uniques)
        }
        ordered = tuple(lookup)
        lookup[None] = OUT_OF_SCOPE
        codes = np.fromiter(
            map(lookup.__getitem__, materialized),
            dtype=np.int64,
            count=len(self.records),
        )
        result = (codes, ordered)
        self._codes[name] = result
        return result


def grouped_sum(
    codes: np.ndarray,
    values: Tuple[object, ...],
    weights: np.ndarray,
    mask: Optional[np.ndarray],
) -> Dict[object, float]:
    """Sum ``weights`` per code under ``mask``; out-of-scope dropped.

    Groups with no in-scope record are absent from the result (matching
    the row-at-a-time path); groups that appear but sum to zero are
    kept at 0.0.
    """
    if mask is not None:
        codes = codes[mask]
        weights = weights[mask]
    in_scope = codes >= 0
    if not in_scope.all():
        codes = codes[in_scope]
        weights = weights[in_scope]
    sums = np.bincount(codes, weights=weights, minlength=len(values))
    present = np.bincount(codes, minlength=len(values))
    return {
        values[i]: float(sums[i]) for i in np.flatnonzero(present > 0)
    }


def distinct_pairs(
    codes_a: np.ndarray,
    n_a: int,
    codes_b: np.ndarray,
    n_b: int,
    mask: Optional[np.ndarray],
) -> np.ndarray:
    """Unique in-scope ``(a, b)`` code pairs, encoded as ``a * n_b + b``.

    Rows where either side is out of scope are dropped.  Used for
    "distinct publishers per value" and "distinct values per publisher"
    style counts without building per-group Python sets.
    """
    if mask is not None:
        codes_a = codes_a[mask]
        codes_b = codes_b[mask]
    in_scope = (codes_a >= 0) & (codes_b >= 0)
    combo = codes_a[in_scope] * np.int64(max(n_b, 1)) + codes_b[in_scope]
    return np.unique(combo)
