"""The bi-weekly snapshot schedule of the study window (§4).

"Our two-year dataset is too large to process every view, so we use a
sequence of two-day snapshots taken bi-weekly" — January 2016 through
March 2018, with the last snapshot (March 2018) used for the
per-publisher-count analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Tuple

from repro.errors import DatasetError
from repro.units import biweekly_snapshot_dates

#: The paper's study window.
STUDY_START = date(2016, 1, 4)
STUDY_END = date(2018, 3, 26)


@dataclass(frozen=True)
class SnapshotSchedule:
    """Bi-weekly two-day snapshot windows over a study period."""

    start: date = STUDY_START
    end: date = STUDY_END
    window_days: int = 2

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DatasetError("schedule end precedes start")
        if self.window_days < 1:
            raise DatasetError("snapshot window must be at least one day")

    def dates(self) -> List[date]:
        """First day of every snapshot window."""
        return list(biweekly_snapshot_dates(self.start, self.end))

    def __len__(self) -> int:
        return len(self.dates())

    def index_of(self, snapshot: date) -> int:
        """Position of a snapshot in the schedule."""
        dates = self.dates()
        try:
            return dates.index(snapshot)
        except ValueError:
            raise DatasetError(
                f"{snapshot} is not a scheduled snapshot"
            ) from None

    def months_elapsed(self, snapshot: date) -> float:
        """Months since study start, the x-axis of the trend figures."""
        if snapshot < self.start:
            raise DatasetError(f"{snapshot} precedes the study window")
        return (snapshot - self.start).days / 30.4375

    def latest(self) -> date:
        return self.dates()[-1]

    def window_of(self, snapshot: date) -> Tuple[date, date]:
        """(first day, last day) of one snapshot's two-day window."""
        self.index_of(snapshot)
        from datetime import timedelta

        return snapshot, snapshot + timedelta(days=self.window_days - 1)


def default_schedule() -> SnapshotSchedule:
    """The 27-month, 59-snapshot schedule used throughout."""
    return SnapshotSchedule()
