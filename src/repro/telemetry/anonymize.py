"""Anonymization of telemetry identifiers (§3).

The paper's dataset anonymizes publisher IDs and video IDs while
retaining the manifest file extension in URLs (that extension is how
protocols are inferred).  The anonymizer here is deterministic and
keyed, so the same raw ID always maps to the same token within one
dataset build but tokens cannot be trivially reversed.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict

_TOKEN_RE = re.compile(r"^[a-z]+_[0-9a-f]{10}$")


class Anonymizer:
    """Deterministic keyed pseudonymization of identifiers."""

    def __init__(self, key: str = "repro-anon") -> None:
        if not key:
            raise ValueError("anonymizer key must be non-empty")
        self._key = key
        self._cache: Dict[str, str] = {}

    def token(self, kind: str, raw_id: str) -> str:
        """Pseudonym for a raw identifier, stable within this key.

        ``kind`` namespaces the token ('pub', 'vid', ...), so the same
        raw string used as both a publisher and a video ID yields
        distinct tokens.
        """
        if not kind.isalpha() or not kind.islower():
            raise ValueError(f"kind must be lowercase letters, got {kind!r}")
        if not raw_id:
            raise ValueError("raw identifier must be non-empty")
        cache_key = f"{kind}:{raw_id}"
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        digest = hashlib.sha256(
            f"{self._key}:{cache_key}".encode()
        ).hexdigest()[:10]
        token = f"{kind}_{digest}"
        self._cache[cache_key] = token
        return token

    def publisher(self, raw_id: str) -> str:
        return self.token("pub", raw_id)

    def video(self, raw_id: str) -> str:
        return self.token("vid", raw_id)

    def anonymize_url(self, url: str, raw_video_id: str) -> str:
        """Replace the raw video ID within a URL, keeping the extension.

        This is the §3 property the protocol detector depends on: the
        manifest extension survives anonymization.
        """
        if raw_video_id not in url:
            raise ValueError(
                f"URL does not contain the raw video ID {raw_video_id!r}"
            )
        return url.replace(raw_video_id, self.video(raw_video_id))


def looks_anonymized(identifier: str) -> bool:
    """Heuristic check that an identifier is one of our tokens."""
    return bool(_TOKEN_RE.match(identifier))
