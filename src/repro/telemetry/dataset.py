"""The Dataset container: a queryable collection of view records.

The analyses slice the dataset the way §3 describes: by snapshot, by
publisher, by any record attribute — and aggregate by view-hours, by
views, or by distinct video IDs.  Persistence is line-delimited JSON
(gzipped when the path ends in ``.gz``).

Slicing is **zero-copy**: ``filter``/``for_snapshot``/
``exclude_publishers`` return views that share the parent's
:class:`~repro.telemetry.columnar.ColumnStore` plus a boolean mask, so
stacking slices never re-materializes record tuples.  Aggregations
whose grouping key is a known column (a record field name or a
:class:`~repro.telemetry.columnar.ColumnKey`) dispatch to vectorized
``bincount`` group-bys over interned codes and are memoized per
(view, key) — safe because stores are immutable.  Arbitrary callables
fall back to the row-at-a-time path; the two paths are
property-tested to agree (``dataset.columnar_hits`` /
``dataset.row_fallbacks`` count the dispatches).
"""

from __future__ import annotations

import csv
import dataclasses
import gzip
import io
from datetime import date
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro import obs
from repro.errors import DatasetError
from repro.telemetry.columnar import (
    ColumnKey,
    ColumnStore,
    distinct_pairs,
    grouped_sum,
)
from repro.telemetry.records import ViewRecord

#: A grouping key: record field name, named derived column, or callable.
GroupKey = Union[str, ColumnKey, Callable[[ViewRecord], object]]

#: Records per write batch in :meth:`Dataset.save`.
_SAVE_BATCH = 4096


class Dataset:
    """An immutable collection of weighted view records."""

    def __init__(
        self, records: Iterable[ViewRecord], columnar: bool = True
    ) -> None:
        materialized: Tuple[ViewRecord, ...] = tuple(records)
        self._records: Optional[Tuple[ViewRecord, ...]] = materialized
        self._store: Optional[ColumnStore] = (
            ColumnStore(materialized) if columnar else None
        )
        self._mask: Optional[np.ndarray] = None
        self._length = len(materialized)
        self._init_caches()

    def _init_caches(self) -> None:
        self._snapshots_cache: Optional[Tuple[date, ...]] = None
        self._snapshot_views: Dict[date, "Dataset"] = {}
        self._exclude_views: Dict[FrozenSet[str], "Dataset"] = {}
        self._agg_cache: Dict[Tuple[str, object], object] = {}

    @classmethod
    def _view(cls, store: ColumnStore, mask: np.ndarray) -> "Dataset":
        """A zero-copy slice sharing ``store`` under a boolean mask."""
        view = cls.__new__(cls)
        view._records = None
        view._store = store
        view._mask = mask
        view._length = int(mask.sum())
        view._init_caches()
        return view

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return (
            f"Dataset({len(self)} records, "
            f"{len(self.snapshots())} snapshots, "
            f"{len(self.publishers())} publishers)"
        )

    @property
    def records(self) -> Tuple[ViewRecord, ...]:
        if self._records is None:
            assert self._store is not None and self._mask is not None
            parent = self._store.records
            self._records = tuple(
                parent[i] for i in np.flatnonzero(self._mask)
            )
        return self._records

    @property
    def columnar(self) -> bool:
        """Whether vectorized dispatch is available for this dataset."""
        return self._store is not None

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------

    def snapshots(self) -> List[date]:
        """Sorted distinct snapshot dates."""
        if self._snapshots_cache is None:
            if self._store is not None:
                codes, values = self._store.field_codes("snapshot")
                if self._mask is not None:
                    codes = codes[self._mask]
                present = np.unique(codes)
                found = sorted(values[i] for i in present)
            else:
                found = sorted({r.snapshot for r in self.records})
            self._snapshots_cache = tuple(found)
        return list(self._snapshots_cache)

    def latest_snapshot(self) -> date:
        snapshots = self.snapshots()
        if not snapshots:
            raise DatasetError("dataset is empty")
        return snapshots[-1]

    def first_snapshot(self) -> date:
        snapshots = self.snapshots()
        if not snapshots:
            raise DatasetError("dataset is empty")
        return snapshots[0]

    def for_snapshot(self, snapshot: date) -> "Dataset":
        """Sub-dataset of one snapshot (a zero-copy mask view)."""
        cached = self._snapshot_views.get(snapshot)
        if cached is not None:
            return cached
        if self._store is None:
            subset = tuple(
                r for r in self.records if r.snapshot == snapshot
            )
            if not subset:
                raise DatasetError(f"no records for snapshot {snapshot}")
            view = Dataset(subset, columnar=False)
        else:
            codes, values = self._store.field_codes("snapshot")
            try:
                code = values.index(snapshot)
            except ValueError:
                code = -2  # never matches a real code
            mask = codes == code
            if self._mask is not None:
                mask &= self._mask
            if not mask.any():
                raise DatasetError(f"no records for snapshot {snapshot}")
            obs.counter("dataset.columnar_hits").inc()
            view = Dataset._view(self._store, mask)
        self._snapshot_views[snapshot] = view
        return view

    def latest(self) -> "Dataset":
        return self.for_snapshot(self.latest_snapshot())

    def filter(self, predicate: Callable[[ViewRecord], bool]) -> "Dataset":
        """Records satisfying an arbitrary predicate.

        The predicate runs row-at-a-time (it is opaque Python), but the
        result is still a mask view — no record tuple is copied.
        """
        if self._store is None:
            return Dataset(
                (r for r in self.records if predicate(r)), columnar=False
            )
        obs.counter("dataset.row_fallbacks").inc()
        parent = self._store.records
        mask = np.zeros(len(parent), dtype=bool)
        indices = (
            np.flatnonzero(self._mask)
            if self._mask is not None
            else range(len(parent))
        )
        for i in indices:
            if predicate(parent[i]):
                mask[i] = True
        return Dataset._view(self._store, mask)

    def exclude_publishers(self, publisher_ids: Iterable[str]) -> "Dataset":
        """Drop named publishers — the Figs 2c/6b 'remove the top N' cut."""
        excluded = frozenset(publisher_ids)
        cached = self._exclude_views.get(excluded)
        if cached is not None:
            return cached
        if self._store is None:
            view: Dataset = self.filter(
                lambda r: r.publisher_id not in excluded
            )
        else:
            codes, values = self._store.field_codes("publisher_id")
            banned = np.array(
                [i for i, v in enumerate(values) if v in excluded],
                dtype=np.int64,
            )
            mask = ~np.isin(codes, banned)
            if self._mask is not None:
                mask &= self._mask
            obs.counter("dataset.columnar_hits").inc()
            view = Dataset._view(self._store, mask)
        self._exclude_views[excluded] = view
        return view

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def publishers(self) -> Set[str]:
        cached = self._agg_cache.get(("publishers", None))
        if cached is None:
            if self._store is not None:
                codes, values = self._store.field_codes("publisher_id")
                if self._mask is not None:
                    codes = codes[self._mask]
                cached = {values[i] for i in np.unique(codes)}
            else:
                cached = {r.publisher_id for r in self.records}
            self._agg_cache[("publishers", None)] = cached
        return set(cached)

    def total_view_hours(self) -> float:
        return self._total("view_hours")

    def total_views(self) -> float:
        return self._total("views")

    def view_hours_by(self, key: GroupKey) -> Dict[object, float]:
        """Sum view-hours grouped by a field, column key, or callable."""
        return self._grouped("view_hours", key)

    def views_by(self, key: GroupKey) -> Dict[object, float]:
        """Sum views grouped by a field, column key, or callable."""
        return self._grouped("views", key)

    def publisher_view_hours(self) -> Dict[str, float]:
        """View-hours per publisher — the paper's size proxy."""
        return {
            str(k): v for k, v in self.view_hours_by("publisher_id").items()
        }

    def top_publishers(self, n: int) -> List[str]:
        """The n publishers with the most view-hours."""
        if n < 0:
            raise DatasetError("n must be non-negative")
        totals = self.publisher_view_hours()
        ranked = sorted(totals, key=lambda p: totals[p], reverse=True)
        return ranked[:n]

    def distinct_video_ids(self, publisher_id: Optional[str] = None) -> int:
        """Distinct video IDs, optionally for one publisher (§3 notes
        this measure is an under-estimate where coverage is partial)."""
        cache_key = ("distinct_video_ids", publisher_id)
        cached = self._agg_cache.get(cache_key)
        if cached is None:
            if self._store is not None:
                obs.counter("dataset.columnar_hits").inc()
                codes, _ = self._store.field_codes("video_id")
                if self._mask is not None:
                    codes = codes[self._mask]
                if publisher_id is not None:
                    pub_codes, pub_values = self._store.field_codes(
                        "publisher_id"
                    )
                    if self._mask is not None:
                        pub_codes = pub_codes[self._mask]
                    try:
                        wanted = pub_values.index(publisher_id)
                    except ValueError:
                        wanted = -2
                    codes = codes[pub_codes == wanted]
                cached = int(np.unique(codes).size)
            else:
                cached = len(
                    {
                        r.video_id
                        for r in self.records
                        if publisher_id is None
                        or r.publisher_id == publisher_id
                    }
                )
            self._agg_cache[cache_key] = cached
        return cached

    def publishers_per_value(self, key: GroupKey) -> Dict[object, int]:
        """Distinct publishers observed per value of ``key``.

        Backs the "% of publishers supporting X" series without
        building per-value publisher sets.
        """
        cache_key = ("publishers_per_value", _cache_token(key))
        cached = self._agg_cache.get(cache_key)
        if cached is None:
            if self._store is not None and not callable(key):
                obs.counter("dataset.columnar_hits").inc()
                v_codes, v_values = self._store.codes_for(key)
                p_codes, _ = self._store.field_codes("publisher_id")
                pairs = distinct_pairs(
                    v_codes, len(v_values), p_codes, self._store_n_pub(),
                    self._mask,
                )
                counts = np.bincount(
                    pairs // np.int64(max(self._store_n_pub(), 1)),
                    minlength=len(v_values),
                )
                cached = {
                    v_values[i]: int(counts[i])
                    for i in np.flatnonzero(counts > 0)
                }
            else:
                fn = _row_fn(key)
                sets: Dict[object, Set[str]] = {}
                for record in self.records:
                    value = fn(record)
                    if value is None:
                        continue
                    sets.setdefault(value, set()).add(record.publisher_id)
                cached = {v: len(pubs) for v, pubs in sets.items()}
            self._agg_cache[cache_key] = cached
        return dict(cached)

    def values_per_publisher(self, key: GroupKey) -> Dict[str, int]:
        """Distinct values of ``key`` observed per publisher.

        Backs the Figs 3a/9a/12a per-publisher instance counts.
        """
        cache_key = ("values_per_publisher", _cache_token(key))
        cached = self._agg_cache.get(cache_key)
        if cached is None:
            if self._store is not None and not callable(key):
                obs.counter("dataset.columnar_hits").inc()
                v_codes, v_values = self._store.codes_for(key)
                p_codes, p_values = self._store.field_codes("publisher_id")
                pairs = distinct_pairs(
                    p_codes, len(p_values), v_codes, len(v_values),
                    self._mask,
                )
                counts = np.bincount(
                    pairs // np.int64(max(len(v_values), 1)),
                    minlength=len(p_values),
                )
                cached = {
                    str(p_values[i]): int(counts[i])
                    for i in np.flatnonzero(counts > 0)
                }
            else:
                fn = _row_fn(key)
                sets: Dict[str, Set[object]] = {}
                for record in self.records:
                    value = fn(record)
                    if value is None:
                        continue
                    sets.setdefault(record.publisher_id, set()).add(value)
                cached = {p: len(vals) for p, vals in sets.items()}
            self._agg_cache[cache_key] = cached
        return dict(cached)

    def explode(self) -> "Dataset":
        """Expand weighted records into unit-weight records.

        Weights must be integral.  Analyses are invariant under this
        transformation (property-tested); it exists to validate the
        weighted representation and for the weighting ablation bench.
        """
        exploded: List[ViewRecord] = []
        for record in self.records:
            weight = record.weight
            if abs(weight - round(weight)) > 1e-9:
                raise DatasetError(
                    f"cannot explode non-integral weight {weight}"
                )
            unit = dataclasses.replace(record, weight=1.0)
            exploded.extend([unit] * int(round(weight)))
        return Dataset(exploded, columnar=self.columnar)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the dataset as JSONL (.gz for gzip compression).

        Lines are joined in batches so the hot path is one buffered
        write per :data:`_SAVE_BATCH` records, not two per record.
        """
        path = Path(path)
        opener = gzip.open if path.suffix == ".gz" else io.open
        with opener(path, "wt", encoding="utf-8") as handle:
            batch: List[str] = []
            for record in self.records:
                batch.append(record.to_json())
                if len(batch) >= _SAVE_BATCH:
                    handle.write("\n".join(batch))
                    handle.write("\n")
                    batch.clear()
            if batch:
                handle.write("\n".join(batch))
                handle.write("\n")

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the dataset as CSV for external tooling.

        Multi-valued fields (CDNs, ladder) are pipe-joined; enums are
        written as their wire values.  CSV is an export format only —
        round-tripping uses :meth:`save`/:meth:`load`.
        """
        fieldnames = [
            "snapshot", "publisher_id", "url", "device_model", "os_name",
            "cdn_names", "bitrate_ladder_kbps", "view_duration_hours",
            "avg_bitrate_kbps", "rebuffer_ratio", "content_type",
            "video_id", "weight", "user_agent", "sdk_name", "sdk_version",
            "is_syndicated", "owner_id", "isp", "geo", "connection",
        ]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in self.records:
                row = record.to_json_dict()
                row["cdn_names"] = "|".join(record.cdn_names)
                row["bitrate_ladder_kbps"] = "|".join(
                    f"{b:g}" for b in record.bitrate_ladder_kbps
                )
                writer.writerow(row)

    @classmethod
    def load(
        cls, path: Union[str, Path], limit: Optional[int] = None
    ) -> "Dataset":
        """Load a dataset previously written by :meth:`save`.

        ``limit`` stops after that many records — a fast path for
        benches and smoke tests over large files.  ``limit=0`` is an
        explicit empty load; a negative limit is rejected rather than
        silently truncating to nothing.
        """
        if limit is not None and limit < 0:
            raise DatasetError(f"load limit must be >= 0, got {limit}")
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"dataset file not found: {path}")
        opener = gzip.open if path.suffix == ".gz" else io.open
        records: List[ViewRecord] = []
        with opener(path, "rt", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if limit is not None and len(records) >= limit:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(ViewRecord.from_json(line))
                except DatasetError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: {exc}"
                    ) from exc
        return cls(records)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _store_n_pub(self) -> int:
        assert self._store is not None
        _, values = self._store.field_codes("publisher_id")
        return len(values)

    def _total(self, measure: str) -> float:
        cache_key = ("total", measure)
        cached = self._agg_cache.get(cache_key)
        if cached is None:
            if self._store is not None:
                column = self._store.numeric(measure)
                if self._mask is not None:
                    column = column[self._mask]
                cached = float(np.sum(column))
            elif measure == "view_hours":
                cached = sum(r.view_hours for r in self.records)
            else:
                cached = sum(r.views for r in self.records)
            self._agg_cache[cache_key] = cached
        return cached

    def _grouped(self, measure: str, key: GroupKey) -> Dict[object, float]:
        if callable(key) and not isinstance(key, ColumnKey):
            # Opaque callables keep their historical semantics exactly:
            # every return value (including None) is a group.
            obs.counter("dataset.row_fallbacks").inc()
            totals: Dict[object, float] = {}
            attr = "view_hours" if measure == "view_hours" else "views"
            for record in self.records:
                value = key(record)
                totals[value] = totals.get(value, 0.0) + getattr(
                    record, attr
                )
            return totals
        cache_key = (measure, _cache_token(key))
        cached = self._agg_cache.get(cache_key)
        if cached is None:
            if self._store is not None:
                obs.counter("dataset.columnar_hits").inc()
                codes, values = self._store.codes_for(key)
                cached = grouped_sum(
                    codes, values, self._store.numeric(measure), self._mask
                )
            else:
                fn = _row_fn(key)
                attr = "view_hours" if measure == "view_hours" else "views"
                cached = {}
                for record in self.records:
                    value = fn(record)
                    if value is None:
                        continue
                    cached[value] = cached.get(value, 0.0) + getattr(
                        record, attr
                    )
            self._agg_cache[cache_key] = cached
        return dict(cached)


def _cache_token(key: GroupKey) -> object:
    """Hashable cache identity of a non-callable grouping key."""
    return key.name if isinstance(key, ColumnKey) else key


def _row_fn(key: GroupKey) -> Callable[[ViewRecord], object]:
    """Row-path evaluator matching the columnar scope semantics."""
    if isinstance(key, ColumnKey):
        return key.fn
    if callable(key):
        return key
    field = str(key)
    return lambda record: getattr(record, field)
