"""The Dataset container: a queryable collection of view records.

The analyses slice the dataset the way §3 describes: by snapshot, by
publisher, by any record attribute — and aggregate by view-hours, by
views, or by distinct video IDs.  Persistence is line-delimited JSON
(gzipped when the path ends in ``.gz``).
"""

from __future__ import annotations

import gzip
import io
from collections import defaultdict
from datetime import date
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import DatasetError
from repro.telemetry.records import ViewRecord


class Dataset:
    """An immutable collection of weighted view records."""

    def __init__(self, records: Iterable[ViewRecord]) -> None:
        self._records: Tuple[ViewRecord, ...] = tuple(records)
        self._by_snapshot: Optional[Dict[date, Tuple[ViewRecord, ...]]] = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"Dataset({len(self._records)} records, "
            f"{len(self.snapshots())} snapshots, "
            f"{len(self.publishers())} publishers)"
        )

    @property
    def records(self) -> Tuple[ViewRecord, ...]:
        return self._records

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------

    def snapshots(self) -> List[date]:
        """Sorted distinct snapshot dates."""
        return sorted(self._snapshot_index())

    def latest_snapshot(self) -> date:
        snapshots = self.snapshots()
        if not snapshots:
            raise DatasetError("dataset is empty")
        return snapshots[-1]

    def first_snapshot(self) -> date:
        snapshots = self.snapshots()
        if not snapshots:
            raise DatasetError("dataset is empty")
        return snapshots[0]

    def for_snapshot(self, snapshot: date) -> "Dataset":
        """Sub-dataset of one snapshot."""
        index = self._snapshot_index()
        if snapshot not in index:
            raise DatasetError(f"no records for snapshot {snapshot}")
        return Dataset(index[snapshot])

    def latest(self) -> "Dataset":
        return self.for_snapshot(self.latest_snapshot())

    def filter(self, predicate: Callable[[ViewRecord], bool]) -> "Dataset":
        return Dataset(r for r in self._records if predicate(r))

    def exclude_publishers(self, publisher_ids: Iterable[str]) -> "Dataset":
        """Drop named publishers — the Figs 2c/6b 'remove the top N' cut."""
        excluded = set(publisher_ids)
        return self.filter(lambda r: r.publisher_id not in excluded)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def publishers(self) -> Set[str]:
        return {r.publisher_id for r in self._records}

    def total_view_hours(self) -> float:
        return sum(r.view_hours for r in self._records)

    def total_views(self) -> float:
        return sum(r.views for r in self._records)

    def view_hours_by(
        self, key: Callable[[ViewRecord], object]
    ) -> Dict[object, float]:
        """Sum view-hours grouped by an arbitrary record key."""
        totals: Dict[object, float] = defaultdict(float)
        for record in self._records:
            totals[key(record)] += record.view_hours
        return dict(totals)

    def views_by(
        self, key: Callable[[ViewRecord], object]
    ) -> Dict[object, float]:
        """Sum views grouped by an arbitrary record key."""
        totals: Dict[object, float] = defaultdict(float)
        for record in self._records:
            totals[key(record)] += record.views
        return dict(totals)

    def publisher_view_hours(self) -> Dict[str, float]:
        """View-hours per publisher — the paper's size proxy."""
        return {
            str(k): v
            for k, v in self.view_hours_by(lambda r: r.publisher_id).items()
        }

    def top_publishers(self, n: int) -> List[str]:
        """The n publishers with the most view-hours."""
        if n < 0:
            raise DatasetError("n must be non-negative")
        totals = self.publisher_view_hours()
        ranked = sorted(totals, key=lambda p: totals[p], reverse=True)
        return ranked[:n]

    def distinct_video_ids(self, publisher_id: Optional[str] = None) -> int:
        """Distinct video IDs, optionally for one publisher (§3 notes
        this measure is an under-estimate where coverage is partial)."""
        ids = {
            r.video_id
            for r in self._records
            if publisher_id is None or r.publisher_id == publisher_id
        }
        return len(ids)

    def explode(self) -> "Dataset":
        """Expand weighted records into unit-weight records.

        Weights must be integral.  Analyses are invariant under this
        transformation (property-tested); it exists to validate the
        weighted representation and for the weighting ablation bench.
        """
        exploded: List[ViewRecord] = []
        for record in self._records:
            weight = record.weight
            if abs(weight - round(weight)) > 1e-9:
                raise DatasetError(
                    f"cannot explode non-integral weight {weight}"
                )
            for _ in range(int(round(weight))):
                exploded.append(
                    ViewRecord(
                        **{
                            **record.to_json_dict(),
                            "snapshot": record.snapshot,
                            "content_type": record.content_type,
                            "connection": record.connection,
                            "cdn_names": record.cdn_names,
                            "bitrate_ladder_kbps": record.bitrate_ladder_kbps,
                            "weight": 1.0,
                        }
                    )
                )
        return Dataset(exploded)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the dataset as JSONL (.gz for gzip compression)."""
        path = Path(path)
        opener = gzip.open if path.suffix == ".gz" else io.open
        with opener(path, "wt", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_json())
                handle.write("\n")

    def to_csv(self, path: Union[str, Path]) -> None:
        """Export the dataset as CSV for external tooling.

        Multi-valued fields (CDNs, ladder) are pipe-joined; enums are
        written as their wire values.  CSV is an export format only —
        round-tripping uses :meth:`save`/:meth:`load`.
        """
        import csv

        fieldnames = [
            "snapshot", "publisher_id", "url", "device_model", "os_name",
            "cdn_names", "bitrate_ladder_kbps", "view_duration_hours",
            "avg_bitrate_kbps", "rebuffer_ratio", "content_type",
            "video_id", "weight", "user_agent", "sdk_name", "sdk_version",
            "is_syndicated", "owner_id", "isp", "geo", "connection",
        ]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in self._records:
                row = record.to_json_dict()
                row["cdn_names"] = "|".join(record.cdn_names)
                row["bitrate_ladder_kbps"] = "|".join(
                    f"{b:g}" for b in record.bitrate_ladder_kbps
                )
                writer.writerow(row)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Dataset":
        """Load a dataset previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"dataset file not found: {path}")
        opener = gzip.open if path.suffix == ".gz" else io.open
        records: List[ViewRecord] = []
        with opener(path, "rt", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(ViewRecord.from_json(line))
                except DatasetError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: {exc}"
                    ) from exc
        return cls(records)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _snapshot_index(self) -> Dict[date, Tuple[ViewRecord, ...]]:
        if self._by_snapshot is None:
            index: Dict[date, List[ViewRecord]] = defaultdict(list)
            for record in self._records:
                index[record.snapshot].append(record)
            self._by_snapshot = {
                key: tuple(value) for key, value in index.items()
            }
        return self._by_snapshot
