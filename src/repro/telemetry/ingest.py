"""Fault-tolerant telemetry ingestion (the production event path).

The strict :class:`~repro.telemetry.events.Sessionizer` raises on the
first malformed event, which is the right contract for a library but a
fatal one for a backend ingesting heartbeats from millions of
heterogeneous player SDKs: there, events arrive malformed, duplicated,
out of order, or truncated, and one corrupt heartbeat must never poison
a whole batch.  :class:`RobustSessionizer` wraps the same fold logic
with a configurable :class:`ErrorPolicy`:

* ``strict`` — delegate to the plain :class:`Sessionizer`; the first bad
  event raises :class:`~repro.errors.DatasetError` exactly as before.
* ``quarantine`` — never raise; every rejected event lands in a
  dead-letter queue with a typed :class:`RejectReason`.
* ``repair`` — like quarantine, but additionally fix what is fixable
  (clamp negative timings, rescale over-full heartbeats, force-fold
  stale sessions at the end) and count each fix.

On top of the policy it layers duplicate-event dedup (sequence-numbered
heartbeats, identical starts, ends for already-closed sessions), a
bounded reorder buffer for events that arrive before their
``SessionStart``, and a stale-session reaper driven by a logical clock
(events ingested) so idle sessions cannot leak memory forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import DatasetError, IngestError
from repro.obs.instruments import catalog_by_name
from repro.obs.metrics import Counter, MetricsRegistry
from repro.telemetry.events import Heartbeat, SessionEnd, SessionStart, Sessionizer
from repro.telemetry.records import ViewRecord


class ErrorPolicy(str, Enum):
    """How the ingestion pipeline reacts to bad events."""

    STRICT = "strict"
    QUARANTINE = "quarantine"
    REPAIR = "repair"


class RejectReason(str, Enum):
    """Typed dead-letter taxonomy."""

    UNKNOWN_SESSION = "unknown-session"
    DUPLICATE_START = "duplicate-start"
    NEGATIVE_TIMING = "negative-timing"
    ORPHAN_HEARTBEAT = "orphan-heartbeat"
    END_WITHOUT_HEARTBEATS = "end-without-heartbeats"
    NO_PLAYBACK = "no-playback"
    MALFORMED_EVENT = "malformed-event"
    UNKNOWN_EVENT_TYPE = "unknown-event-type"
    REORDER_OVERFLOW = "reorder-overflow"
    STALE_SESSION = "stale-session"


@dataclass(frozen=True)
class DeadLetter:
    """One rejected event with the reason it was quarantined.

    ``sequence`` is the event's arrival index in the stream, or ``-1``
    for session-level rejections (e.g. a stale session reaped long after
    its start event was accepted).
    """

    event: object
    reason: RejectReason
    detail: str
    sequence: int = -1


class IngestCounters:
    """The obs instruments backing one pipeline's :class:`IngestReport`.

    Counts live in :class:`~repro.obs.metrics.Counter` instruments
    rather than plain ints so the printed report and a metrics
    snapshot are *the same numbers*, not two bookkeeping paths that
    can drift.  By default each pipeline gets a private registry
    (isolated counts, the historical semantics); pass a shared
    registry — e.g. ``obs.metrics()`` from the CLI — to surface the
    same instruments in the process-wide snapshot.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        specs = catalog_by_name()

        def make(name: str) -> Counter:
            return self.registry.counter(name, specs[name].description)

        self.events = make("ingest.events")
        self.accepted = make("ingest.accepted")
        self.repaired = make("ingest.repaired")
        self.deduped = make("ingest.deduped")
        self.reaped = make("ingest.reaped")
        self.records = make("ingest.records")
        self.open_sessions = self.registry.gauge(
            "ingest.open_sessions", specs["ingest.open_sessions"].description
        )
        self.parked_events = self.registry.gauge(
            "ingest.parked_events", specs["ingest.parked_events"].description
        )
        self._quarantine_desc = specs["ingest.quarantined"].description

    def quarantined(self, reason: RejectReason) -> Counter:
        """The per-reason dead-letter counter (created on first use)."""
        return self.registry.counter(
            "ingest.quarantined", self._quarantine_desc, reason=reason.value
        )

    @property
    def quarantined_total(self) -> int:
        return sum(
            int(instrument.value)
            for instrument in self.registry.series(
                "ingest.quarantined"
            ).values()
        )

    def reason_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for labels, instrument in self.registry.series(
            "ingest.quarantined"
        ).items():
            value = int(instrument.value)
            if value:
                counts[dict(labels)["reason"]] = value
        return counts


@dataclass
class IngestReport:
    """Counters and outputs of one ingestion run.

    Every count is a property over the pipeline's obs counters
    (:class:`IngestCounters`) — the single source of truth shared with
    the metrics snapshot, so ``repro ingest --metrics-out`` can never
    print a summary that disagrees with the exported JSON.

    Invariant (verified by the fuzz suite): every input event is
    accounted for exactly once —
    ``accepted + deduped + event-level dead letters == total_events``.
    Session-level dead letters (``sequence == -1``) and ``reaped`` /
    ``repaired`` describe sessions and fixes, not extra events.
    """

    policy: ErrorPolicy
    counters: IngestCounters = field(default_factory=IngestCounters)
    records: List[ViewRecord] = field(default_factory=list)
    dead_letters: List[DeadLetter] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        return self.counters.events.count

    @property
    def accepted(self) -> int:
        return self.counters.accepted.count

    @property
    def repaired(self) -> int:
        return self.counters.repaired.count

    @property
    def quarantined(self) -> int:
        return self.counters.quarantined_total

    @property
    def reaped(self) -> int:
        return self.counters.reaped.count

    @property
    def deduped(self) -> int:
        return self.counters.deduped.count

    def reason_counts(self) -> Dict[str, int]:
        return self.counters.reason_counts()

    @property
    def event_quarantined(self) -> int:
        """Dead letters that consumed an input event (``sequence >= 0``)."""
        return sum(1 for letter in self.dead_letters if letter.sequence >= 0)

    def summary(self) -> str:
        reasons = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.reason_counts().items())
        )
        return (
            f"policy={self.policy.value} events={self.total_events} "
            f"accepted={self.accepted} records={len(self.records)} "
            f"repaired={self.repaired} quarantined={self.quarantined} "
            f"deduped={self.deduped} reaped={self.reaped}"
            + (f" [{reasons}]" if reasons else "")
        )


class RobustSessionizer:
    """Policy-driven, fault-tolerant wrapper around session folding.

    ``reorder_buffer`` bounds how many events may be parked waiting for
    their ``SessionStart``; ``max_idle_events`` (a logical-clock gap,
    i.e. number of subsequently ingested events) drives the
    stale-session reaper, ``None`` disables it.
    """

    def __init__(
        self,
        policy: ErrorPolicy | str = ErrorPolicy.QUARANTINE,
        *,
        reorder_buffer: int = 256,
        max_idle_events: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.policy = ErrorPolicy(policy)
        if reorder_buffer < 0:
            raise IngestError("reorder_buffer must be >= 0")
        if max_idle_events is not None and max_idle_events < 1:
            raise IngestError("max_idle_events must be >= 1 (or None)")
        self.reorder_buffer = reorder_buffer
        self.max_idle_events = max_idle_events
        self._strict = Sessionizer(retain_records=False)
        self._open: Dict[str, SessionStart] = {}
        self._beats: Dict[str, List[Heartbeat]] = {}
        self._seen_seq: Dict[str, Set[int]] = {}
        self._last_seen: Dict[str, int] = {}
        self._closed: Set[str] = set()
        # Events that arrived before their SessionStart, keyed by
        # session, each with its original arrival sequence.
        self._parked: Dict[str, List[Tuple[int, object]]] = {}
        self._parked_total = 0
        self._clock = 0
        self._counters = IngestCounters(metrics)
        self.report = IngestReport(
            policy=self.policy, counters=self._counters
        )
        self._finalized = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def ingest(self, event: object) -> Optional[ViewRecord]:
        """Process one event; may emit a folded record."""
        if self._finalized:
            raise IngestError("pipeline already finalized")
        self._clock += 1
        self._counters.events.inc()
        if self.policy is ErrorPolicy.STRICT:
            record = self._strict.ingest(event)
            self._counters.accepted.inc()
            if record is not None:
                self._counters.records.inc()
                self.report.records.append(record)
            self._counters.open_sessions.set(self._strict.open_sessions)
            return record
        record = self._ingest_lenient(event)
        if self.max_idle_events is not None:
            self._reap_stale()
        self._counters.open_sessions.set(len(self._open))
        self._counters.parked_events.set(self._parked_total)
        return record

    def ingest_many(self, events: Iterable[object]) -> List[ViewRecord]:
        out = []
        for event in events:
            record = self.ingest(event)
            if record is not None:
                out.append(record)
        return out

    def finalize(self) -> IngestReport:
        """Flush parked/open state and return the final report."""
        if self._finalized:
            return self.report
        self._finalized = True
        if self.policy is ErrorPolicy.STRICT:
            return self.report
        for sid in sorted(self._parked):
            for seq_no, event in self._parked[sid]:
                kind = (
                    RejectReason.ORPHAN_HEARTBEAT
                    if isinstance(event, Heartbeat)
                    else RejectReason.UNKNOWN_SESSION
                )
                self._quarantine(
                    event, kind,
                    f"session {sid!r} never started", sequence=seq_no,
                )
        self._parked.clear()
        self._parked_total = 0
        for sid in sorted(self._open):
            self._reap_session(sid, "open at finalize")
        self._counters.open_sessions.set(0)
        self._counters.parked_events.set(0)
        return self.report

    def run(self, events: Iterable[object]) -> IngestReport:
        """Ingest a whole stream and finalize — the batch entry point."""
        with obs.span("ingest.batch", policy=self.policy.value) as sp:
            self.ingest_many(events)
            report = self.finalize()
            sp.set(
                events=report.total_events,
                accepted=report.accepted,
                quarantined=report.quarantined,
                records=len(report.records),
            )
        return report

    @property
    def open_sessions(self) -> int:
        if self.policy is ErrorPolicy.STRICT:
            return self._strict.open_sessions
        return len(self._open)

    # ------------------------------------------------------------------
    # Lenient path (quarantine / repair)
    # ------------------------------------------------------------------

    def _ingest_lenient(self, event: object) -> Optional[ViewRecord]:
        sequence = self._clock - 1
        if isinstance(event, SessionStart):
            return self._on_start(event, sequence)
        if isinstance(event, Heartbeat):
            return self._on_beat(event, sequence)
        if isinstance(event, SessionEnd):
            return self._on_end(event, sequence)
        self._quarantine(
            event, RejectReason.UNKNOWN_EVENT_TYPE,
            f"unknown event type {type(event).__name__}",
            sequence=sequence,
        )
        return None

    def _on_start(self, event: SessionStart, sequence: int) -> None:
        sid = event.session_id
        if sid in self._open:
            if self._open[sid] == event:
                self._counters.deduped.inc()
            else:
                self._quarantine(
                    event, RejectReason.DUPLICATE_START,
                    f"session {sid!r} started twice with conflicting payloads",
                    sequence=sequence,
                )
            return None
        if sid in self._closed:
            self._counters.deduped.inc()
            return None
        self._accept(sid)
        self._open[sid] = event
        self._beats[sid] = []
        self._seen_seq[sid] = set()
        self._replay_parked(sid)
        return None

    def _on_beat(
        self, event: Heartbeat, sequence: int, may_park: bool = True
    ) -> Optional[ViewRecord]:
        sid = event.session_id
        if sid not in self._open:
            if sid in self._closed:
                self._quarantine(
                    event, RejectReason.ORPHAN_HEARTBEAT,
                    f"heartbeat for already-closed session {sid!r}",
                    sequence=sequence,
                )
            else:
                assert may_park, "replayed beat for a never-opened session"
                self._park(event, sequence=sequence)
            return None
        if event.seq is not None and event.seq in self._seen_seq[sid]:
            self._counters.deduped.inc()
            return None
        checked = self._check_beat(event, sequence=sequence)
        if checked is None:
            return None
        if event.seq is not None:
            self._seen_seq[sid].add(event.seq)
        self._accept(sid)
        self._beats[sid].append(checked)
        return None

    def _on_end(
        self, event: SessionEnd, sequence: int, may_park: bool = True
    ) -> Optional[ViewRecord]:
        sid = event.session_id
        if sid not in self._open:
            if sid in self._closed:
                self._counters.deduped.inc()
            elif may_park and sid in self._parked:
                # Start still missing: park the end so a late start can
                # replay the whole session in order.
                self._park(event, sequence=sequence)
            else:
                self._quarantine(
                    event, RejectReason.UNKNOWN_SESSION,
                    f"end for unknown session {sid!r}",
                    sequence=sequence,
                )
            return None
        record = self._try_fold(sid, end=event, sequence=sequence)
        if record is not None:
            self._accept(sid)
            self._counters.records.inc()
            self.report.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _accept(self, sid: Optional[str]) -> None:
        self._counters.accepted.inc()
        if sid is not None:
            self._last_seen[sid] = self._clock

    def _quarantine(
        self, event: object, reason: RejectReason, detail: str,
        sequence: int = -1,
    ) -> None:
        self._counters.quarantined(reason).inc()
        self.report.dead_letters.append(
            DeadLetter(event=event, reason=reason, detail=detail,
                       sequence=sequence)
        )

    def _park(self, event: object, sequence: int) -> None:
        """Buffer an early event until its SessionStart arrives."""
        if self.reorder_buffer == 0:
            reason = (
                RejectReason.ORPHAN_HEARTBEAT
                if isinstance(event, Heartbeat)
                else RejectReason.UNKNOWN_SESSION
            )
            self._quarantine(
                event, reason, "event precedes its session start "
                "(reorder buffer disabled)", sequence=sequence,
            )
            return
        if self._parked_total >= self.reorder_buffer:
            self._quarantine(
                event, RejectReason.REORDER_OVERFLOW,
                f"reorder buffer full ({self.reorder_buffer} events)",
                sequence=sequence,
            )
            return
        sid = getattr(event, "session_id", "")
        self._parked.setdefault(sid, []).append((sequence, event))
        self._parked_total += 1

    def _replay_parked(self, sid: str) -> None:
        """Re-ingest events that arrived before this session's start.

        A parked ``SessionEnd`` may close the session mid-replay; the
        handlers then treat the remaining parked events as events for a
        closed session (orphan heartbeat / duplicate end).
        """
        parked = self._parked.pop(sid, [])
        self._parked_total -= len(parked)
        for seq_no, event in parked:
            if isinstance(event, Heartbeat):
                self._on_beat(event, seq_no, may_park=False)
            elif isinstance(event, SessionEnd):
                self._on_end(event, seq_no, may_park=False)

    def _check_beat(
        self, event: Heartbeat, sequence: Optional[int] = None
    ) -> Optional[Heartbeat]:
        """Validate (and under ``repair``, fix) one heartbeat.

        Heartbeats normally validate at construction, but events that
        crossed a real transport — or a fault injector — may bypass
        that, so the pipeline re-checks every field it folds on.
        """
        seq_no = self._clock - 1 if sequence is None else sequence
        problems: List[str] = []
        fixed: Dict[str, float] = {}
        playing = event.playing_seconds
        rebuffering = event.rebuffering_seconds
        interval = event.interval_seconds
        bitrate = event.bitrate_kbps
        if not all(
            isinstance(v, (int, float)) and math.isfinite(v)
            for v in (playing, rebuffering, interval, bitrate)
        ):
            self._quarantine(
                event, RejectReason.MALFORMED_EVENT,
                "non-numeric or non-finite heartbeat timing",
                sequence=seq_no,
            )
            return None
        if playing < 0 or rebuffering < 0:
            problems.append(RejectReason.NEGATIVE_TIMING.value)
            fixed["playing_seconds"] = max(playing, 0.0)
            fixed["rebuffering_seconds"] = max(rebuffering, 0.0)
        if bitrate < 0:
            problems.append("negative bitrate")
            fixed["bitrate_kbps"] = 0.0
        if interval <= 0:
            problems.append("non-positive interval")
            fixed["interval_seconds"] = max(
                fixed.get("playing_seconds", playing)
                + fixed.get("rebuffering_seconds", rebuffering),
                1e-6,
            )
        total = (
            fixed.get("playing_seconds", playing)
            + fixed.get("rebuffering_seconds", rebuffering)
        )
        if total > fixed.get("interval_seconds", interval) + 1e-6:
            problems.append("components exceed interval")
            fixed["interval_seconds"] = total
        if not problems:
            return event
        if self.policy is ErrorPolicy.REPAIR:
            self._counters.repaired.inc()
            return replace(event, **fixed)
        reason = (
            RejectReason.NEGATIVE_TIMING
            if RejectReason.NEGATIVE_TIMING.value in problems
            else RejectReason.MALFORMED_EVENT
        )
        self._quarantine(
            event, reason, "; ".join(problems), sequence=seq_no
        )
        return None

    def _try_fold(
        self, sid: str, end: object, sequence: int
    ) -> Optional[ViewRecord]:
        start = self._open[sid]
        beats = self._beats[sid]
        if not beats:
            self._close(sid)
            self._quarantine(
                end, RejectReason.END_WITHOUT_HEARTBEATS,
                f"session {sid!r} ended without heartbeats",
                sequence=sequence,
            )
            return None
        if sum(b.playing_seconds for b in beats) <= 0:
            self._close(sid)
            self._quarantine(
                end, RejectReason.NO_PLAYBACK,
                f"session {sid!r} reported no playback",
                sequence=sequence,
            )
            return None
        try:
            record = Sessionizer._fold(start, beats)
        except DatasetError as exc:
            self._close(sid)
            self._quarantine(
                end, RejectReason.MALFORMED_EVENT,
                f"session {sid!r} failed to fold: {exc}",
                sequence=sequence,
            )
            return None
        self._close(sid)
        return record

    def _close(self, sid: str) -> None:
        self._open.pop(sid, None)
        self._beats.pop(sid, None)
        self._seen_seq.pop(sid, None)
        self._last_seen.pop(sid, None)
        self._closed.add(sid)

    # ------------------------------------------------------------------
    # Stale-session reaper
    # ------------------------------------------------------------------

    def _reap_stale(self) -> None:
        assert self.max_idle_events is not None
        stale = [
            sid
            for sid, last in self._last_seen.items()
            if sid in self._open and self._clock - last > self.max_idle_events
        ]
        for sid in sorted(stale):
            self._reap_session(
                sid, f"idle for more than {self.max_idle_events} events"
            )

    def _reap_session(self, sid: str, why: str) -> None:
        """Force-fold (repair) or drop (quarantine) one idle session."""
        start = self._open[sid]
        beats = self._beats[sid]
        self._counters.reaped.inc()
        obs.emit(
            "ingest.reap",
            session=sid,
            why=why,
            policy=self.policy.value,
            heartbeats=len(beats),
        )
        if (
            self.policy is ErrorPolicy.REPAIR
            and beats
            and sum(b.playing_seconds for b in beats) > 0
        ):
            try:
                record = Sessionizer._fold(start, beats)
            except DatasetError as exc:
                self._close(sid)
                self._quarantine(
                    start, RejectReason.STALE_SESSION,
                    f"stale session {sid!r} ({why}) failed to fold: {exc}",
                )
                return
            self._close(sid)
            self._counters.repaired.inc()
            self._counters.records.inc()
            self.report.records.append(record)
            return
        self._close(sid)
        self._quarantine(
            start, RejectReason.STALE_SESSION,
            f"stale session {sid!r} dropped ({why})",
        )


# Batch-facing alias: the pipeline name used by the backend and CLI.
IngestPipeline = RobustSessionizer


# ----------------------------------------------------------------------
# Record -> event stream conversion
# ----------------------------------------------------------------------

HEARTBEAT_SECONDS = 20.0


def events_from_record(
    record: ViewRecord,
    session_id: str,
    heartbeat_seconds: float = HEARTBEAT_SECONDS,
) -> List[object]:
    """Reconstruct a plausible monitoring-event stream for one record.

    The inverse of sessionization: folding the returned events
    reproduces the record's duration, rebuffer ratio, average bitrate
    and CDN list (with ``weight=1``).  Zero-playback records have no
    valid event representation and raise :class:`IngestError`.
    """
    playing = record.view_duration_hours * 3600.0
    if playing <= 0:
        raise IngestError(
            f"record {record.video_id!r} has no playback to emit"
        )
    if record.rebuffer_ratio >= 1.0:
        raise IngestError("rebuffer ratio 1.0 implies zero playback")
    total = playing / (1.0 - record.rebuffer_ratio)
    rebuffering = total - playing
    n_beats = max(
        1,
        math.ceil(total / heartbeat_seconds),
        len(record.cdn_names),
    )
    start = SessionStart(
        session_id=session_id,
        snapshot=record.snapshot,
        publisher_id=record.publisher_id,
        url=record.url,
        video_id=record.video_id,
        device_model=record.device_model,
        os_name=record.os_name,
        content_type=record.content_type,
        bitrate_ladder_kbps=record.bitrate_ladder_kbps,
        user_agent=record.user_agent,
        sdk_name=record.sdk_name,
        sdk_version=record.sdk_version,
        is_syndicated=record.is_syndicated,
        owner_id=record.owner_id,
        isp=record.isp,
        geo=record.geo,
        connection=record.connection,
    )
    events: List[object] = [start]
    per_playing = playing / n_beats
    per_rebuffering = rebuffering / n_beats
    interval = max(heartbeat_seconds, per_playing + per_rebuffering)
    for i in range(n_beats):
        events.append(
            Heartbeat(
                session_id=session_id,
                interval_seconds=interval,
                playing_seconds=per_playing,
                rebuffering_seconds=per_rebuffering,
                bitrate_kbps=record.avg_bitrate_kbps,
                cdn_name=record.cdn_names[i % len(record.cdn_names)],
                seq=i,
            )
        )
    events.append(SessionEnd(session_id=session_id))
    return events


def events_from_records(
    records: Sequence[ViewRecord],
    heartbeat_seconds: float = HEARTBEAT_SECONDS,
    session_prefix: str = "sess",
) -> Iterator[object]:
    """Event streams for many records, skipping zero-playback views."""
    for index, record in enumerate(records):
        if record.view_duration_hours <= 0 or record.rebuffer_ratio >= 1.0:
            continue
        yield from events_from_record(
            record,
            session_id=f"{session_prefix}_{index:06d}",
            heartbeat_seconds=heartbeat_seconds,
        )
