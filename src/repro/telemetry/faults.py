"""Deterministic fault injection for the telemetry event path.

Robustness claims are only worth what exercises them: this module
corrupts event streams the way real SDK fleets do — dropped packets,
duplicated sends, reordering, truncated fields, impossible timings,
crossed sessions — under a seeded RNG so every corrupted stream is
exactly reproducible.  :class:`FlakyTransport` models the other failure
axis, a lossy ingestion *call* path, to drive the retry/backoff and
circuit-breaker primitives in :mod:`repro.resilience`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar

from repro.errors import DatasetError, TransportError
from repro.telemetry.events import Heartbeat, SessionEnd, SessionStart

T = TypeVar("T")


def _raw_heartbeat(**values: object) -> Heartbeat:
    """Build a Heartbeat bypassing ``__post_init__`` validation.

    Real transports deliver invalid payloads that a same-process
    constructor would refuse to build; tests need such objects to
    exist, so we materialize them the way deserialization effectively
    would.
    """
    beat = object.__new__(Heartbeat)
    for f in fields(Heartbeat):
        object.__setattr__(beat, f.name, values[f.name])
    return beat


def corrupt_heartbeat(beat: Heartbeat, **overrides: object) -> Heartbeat:
    """A copy of ``beat`` with fields overridden, validation skipped."""
    values = {f.name: getattr(beat, f.name) for f in fields(Heartbeat)}
    values.update(overrides)
    return _raw_heartbeat(**values)


@dataclass(frozen=True)
class FaultMix:
    """Per-event probabilities for each corruption mode.

    Probabilities are disjoint (at most one fault per event); their sum
    must not exceed 1.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    truncate: float = 0.0
    negative_timing: float = 0.0
    interleave: float = 0.0

    def __post_init__(self) -> None:
        rates = [getattr(self, f.name) for f in fields(self)]
        if any(r < 0 for r in rates):
            raise DatasetError("fault rates must be >= 0")
        if sum(rates) > 1.0 + 1e-9:
            raise DatasetError("fault rates must sum to <= 1")

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    @classmethod
    def uniform(cls, rate: float) -> "FaultMix":
        """Spread ``rate`` evenly across all six corruption modes."""
        if not 0.0 <= rate <= 1.0:
            raise DatasetError("fault rate must be in [0, 1]")
        share = rate / 6.0
        return cls(
            drop=share,
            duplicate=share,
            reorder=share,
            truncate=share,
            negative_timing=share,
            interleave=share,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One applied corruption, for audit: (kind, stream index, session)."""

    kind: str
    index: int
    session_id: str


class FaultInjector:
    """Applies a seeded :class:`FaultMix` to an event stream.

    After :meth:`apply`, ``corrupted_sessions`` names every session any
    fault touched (including sessions hit indirectly, e.g. the partner
    of an interleave swap) and ``log`` records each applied fault, so
    tests can assert that *untouched* sessions survive byte-identical.
    """

    REORDER_SPAN = 3

    def __init__(self, mix: FaultMix, seed: int = 0) -> None:
        self.mix = mix
        self.seed = seed
        self.log: List[FaultEvent] = []
        self.corrupted_sessions: Set[str] = set()

    def apply(self, events: Iterable[object]) -> List[object]:
        rng = random.Random(self.seed)
        self.log = []
        self.corrupted_sessions = set()
        out: List[object] = []
        # Events being delayed for the reorder fault: (release_at, event).
        delayed: List[Tuple[int, object]] = []
        seen_sessions: List[str] = []

        def flush_due(position: int) -> None:
            due = [e for at, e in delayed if at <= position]
            delayed[:] = [(at, e) for at, e in delayed if at > position]
            out.extend(due)

        for index, event in enumerate(events):
            sid = getattr(event, "session_id", "")
            if sid and sid not in seen_sessions:
                seen_sessions.append(sid)
            kind = self._draw(rng)
            if kind is None:
                out.append(event)
            elif kind == "drop":
                self._record("drop", index, sid)
            elif kind == "duplicate":
                out.append(event)
                out.append(event)
                self._record("duplicate", index, sid)
            elif kind == "reorder":
                span = 1 + rng.randrange(self.REORDER_SPAN)
                delayed.append((index + span, event))
                self._record("reorder", index, sid)
            elif kind == "truncate":
                out.append(self._truncate(event, rng, index, sid))
            elif kind == "negative_timing":
                out.append(self._negate(event, rng, index, sid))
            elif kind == "interleave":
                out.append(self._interleave(event, rng, index, sid,
                                            seen_sessions))
            flush_due(index)
        out.extend(e for _, e in sorted(delayed, key=lambda d: d[0]))
        return out

    # ------------------------------------------------------------------

    def _draw(self, rng: random.Random) -> Optional[str]:
        u = rng.random()
        acc = 0.0
        for f in fields(self.mix):
            acc += getattr(self.mix, f.name)
            if u < acc:
                return f.name
        return None

    def _record(self, kind: str, index: int, sid: str) -> None:
        self.log.append(FaultEvent(kind=kind, index=index, session_id=sid))
        if sid:
            self.corrupted_sessions.add(sid)

    def _truncate(
        self, event: object, rng: random.Random, index: int, sid: str
    ) -> object:
        """Blank a required string field, as a cut-off payload would."""
        if isinstance(event, SessionStart):
            field_name = rng.choice(["publisher_id", "url"])
            self._record("truncate", index, sid)
            return replace(event, **{field_name: ""})
        if isinstance(event, Heartbeat):
            self._record("truncate", index, sid)
            # inf rather than nan so corrupted streams stay comparable
            # (nan != nan would break determinism assertions).
            return corrupt_heartbeat(event, playing_seconds=float("inf"))
        # SessionEnd has only the id; truncating it makes the session
        # unknown, corrupting this session.
        self._record("truncate", index, sid)
        return SessionEnd(session_id="")

    def _negate(
        self, event: object, rng: random.Random, index: int, sid: str
    ) -> object:
        if isinstance(event, Heartbeat):
            self._record("negative_timing", index, sid)
            if rng.random() < 0.5:
                return corrupt_heartbeat(
                    event, playing_seconds=-abs(event.playing_seconds) - 1.0
                )
            return corrupt_heartbeat(
                event,
                rebuffering_seconds=-abs(event.rebuffering_seconds) - 1.0,
            )
        return event  # timings only exist on heartbeats: no-op otherwise

    def _interleave(
        self,
        event: object,
        rng: random.Random,
        index: int,
        sid: str,
        seen_sessions: Sequence[str],
    ) -> object:
        """Re-address an event to another session seen in the stream."""
        others = [s for s in seen_sessions if s != sid]
        if not sid or not others:
            return event
        other = others[rng.randrange(len(others))]
        self._record("interleave", index, sid)
        self.corrupted_sessions.add(other)
        if isinstance(event, Heartbeat):
            return corrupt_heartbeat(event, session_id=other)
        if isinstance(event, SessionEnd):
            return SessionEnd(session_id=other)
        return replace(event, session_id=other)


class FlakyTransport:
    """A delivery callable that fails probabilistically (seeded).

    Wraps any function; each call first draws against ``failure_rate``
    and raises :class:`~repro.errors.TransportError` on a failure draw,
    otherwise delegates.  Use with
    :func:`repro.resilience.retry_with_backoff` and
    :class:`repro.resilience.CircuitBreaker` to exercise the full
    resilience path.
    """

    def __init__(
        self,
        deliver: Callable[..., T],
        failure_rate: float,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise TransportError("failure_rate must be in [0, 1]")
        self._deliver = deliver
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.attempts = 0
        self.failures = 0

    def __call__(self, *args: object, **kwargs: object) -> T:
        self.attempts += 1
        if self._rng.random() < self.failure_rate:
            self.failures += 1
            raise TransportError(
                f"transport failure (attempt {self.attempts})"
            )
        return self._deliver(*args, **kwargs)
