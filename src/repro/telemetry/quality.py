"""Dataset quality assurance.

A measurement platform lives or dies by the integrity of its feed; §3
of the paper describes exactly which fields each view must carry and
how protocols are inferred from URLs.  This module audits a dataset the
way the platform's ingestion QA would: field-level validation beyond
the per-record invariants, cross-record coverage (does every publisher
appear in every snapshot? are URLs classifiable? are devices known?),
and a one-stop :func:`audit` report that analyses can gate on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import record_protocol
from repro.entities.device import DeviceRegistry, default_registry
from repro.errors import DatasetError
from repro.telemetry.dataset import Dataset


@dataclass
class QualityIssue:
    """One class of problem found during the audit."""

    code: str
    count: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] x{self.count}: {self.detail}"


@dataclass
class QualityReport:
    """Outcome of a dataset audit."""

    records: int
    publishers: int
    snapshots: int
    classifiable_url_fraction: float
    known_device_fraction: float
    app_views_with_sdk_fraction: float
    browser_views_with_ua_fraction: float
    publisher_snapshot_coverage: float
    issues: List[QualityIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no blocking issues were found."""
        return not any(issue.code.startswith("E") for issue in self.issues)

    def summary(self) -> str:
        lines = [
            f"records={self.records} publishers={self.publishers} "
            f"snapshots={self.snapshots}",
            f"classifiable URLs: {self.classifiable_url_fraction:.1%}",
            f"known devices:     {self.known_device_fraction:.1%}",
            f"app views w/ SDK:  {self.app_views_with_sdk_fraction:.1%}",
            f"browser views w/ UA: {self.browser_views_with_ua_fraction:.1%}",
            f"publisher-snapshot coverage: "
            f"{self.publisher_snapshot_coverage:.1%}",
        ]
        lines.extend(str(issue) for issue in self.issues)
        lines.append("status: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def audit(
    dataset: Dataset,
    registry: Optional[DeviceRegistry] = None,
    min_classifiable: float = 0.95,
    min_known_devices: float = 0.95,
) -> QualityReport:
    """Audit a dataset against the §3 schema expectations.

    Issue codes starting with ``E`` are blocking (the analyses would be
    silently wrong); ``W`` codes are advisory.
    """
    if len(dataset) == 0:
        raise DatasetError("cannot audit an empty dataset")
    registry = registry or default_registry()

    unclassifiable = 0
    unknown_devices: Dict[str, int] = defaultdict(int)
    app_missing_sdk = 0
    app_views = 0
    browser_views = 0
    browser_missing_ua = 0
    syndication_dangling = 0
    publisher_snapshots: Dict[str, Set] = defaultdict(set)
    publisher_ids = dataset.publishers()

    for record in dataset:
        publisher_snapshots[record.publisher_id].add(record.snapshot)
        if record_protocol(record) is None:
            unclassifiable += 1
        known = record.device_model in registry
        if not known:
            unknown_devices[record.device_model] += 1
        if known and registry.lookup(record.device_model).platform.is_app_based:
            app_views += 1
            if not record.sdk_name:
                app_missing_sdk += 1
        elif known:
            browser_views += 1
            if not record.user_agent:
                browser_missing_ua += 1
        if record.is_syndicated:
            if record.owner_id is None:
                syndication_dangling += 1
            elif record.owner_id not in publisher_ids:
                syndication_dangling += 1

    issues: List[QualityIssue] = []
    total = len(dataset)
    classifiable = 1.0 - unclassifiable / total
    if classifiable < min_classifiable:
        issues.append(
            QualityIssue(
                "E-URL",
                unclassifiable,
                f"only {classifiable:.1%} of URLs classify to a protocol",
            )
        )
    elif unclassifiable:
        issues.append(
            QualityIssue(
                "W-URL", unclassifiable, "some URLs did not classify"
            )
        )

    unknown_total = sum(unknown_devices.values())
    known_fraction = 1.0 - unknown_total / total
    if known_fraction < min_known_devices:
        worst = sorted(
            unknown_devices, key=lambda m: unknown_devices[m], reverse=True
        )[:3]
        issues.append(
            QualityIssue(
                "E-DEVICE",
                unknown_total,
                f"unknown device models, e.g. {worst}",
            )
        )
    elif unknown_total:
        issues.append(
            QualityIssue(
                "W-DEVICE", unknown_total, "some device models unknown"
            )
        )

    if app_missing_sdk:
        issues.append(
            QualityIssue(
                "E-SDK",
                app_missing_sdk,
                "app views missing SDK identification",
            )
        )
    if browser_missing_ua:
        issues.append(
            QualityIssue(
                "W-UA",
                browser_missing_ua,
                "browser views missing a user agent",
            )
        )
    if syndication_dangling:
        issues.append(
            QualityIssue(
                "E-SYND",
                syndication_dangling,
                "syndicated views without a resolvable owner",
            )
        )

    snapshots = dataset.snapshots()
    coverage_cells = len(publisher_ids) * len(snapshots)
    covered = sum(len(s) for s in publisher_snapshots.values())
    coverage = covered / coverage_cells if coverage_cells else 0.0
    if coverage < 0.9:
        issues.append(
            QualityIssue(
                "W-COVERAGE",
                coverage_cells - covered,
                "publishers missing from many snapshots",
            )
        )

    return QualityReport(
        records=total,
        publishers=len(publisher_ids),
        snapshots=len(snapshots),
        classifiable_url_fraction=classifiable,
        known_device_fraction=known_fraction,
        app_views_with_sdk_fraction=(
            1.0 - app_missing_sdk / app_views if app_views else 1.0
        ),
        browser_views_with_ua_fraction=(
            1.0 - browser_missing_ua / browser_views
            if browser_views
            else 1.0
        ),
        publisher_snapshot_coverage=coverage,
        issues=issues,
    )
