"""Streaming-TV measurement platform (the Conviva substitute, §3).

Player-side monitoring events, sessionization into per-view records,
anonymization, a backend with operational rollups, bi-weekly snapshot
scheduling, and the queryable :class:`Dataset` container that every
analysis consumes.
"""

from repro.telemetry.records import ViewRecord
from repro.telemetry.events import (
    SessionStart,
    Heartbeat,
    SessionEnd,
    Sessionizer,
)
from repro.telemetry.backend import TelemetryBackend, ComboRollup
from repro.telemetry.dataset import Dataset
from repro.telemetry.ingest import (
    DeadLetter,
    ErrorPolicy,
    IngestPipeline,
    IngestReport,
    RejectReason,
    RobustSessionizer,
    events_from_record,
    events_from_records,
)
from repro.telemetry.faults import (
    FaultInjector,
    FaultMix,
    FlakyTransport,
    corrupt_heartbeat,
)
from repro.telemetry.snapshots import (
    SnapshotSchedule,
    default_schedule,
    STUDY_START,
    STUDY_END,
)
from repro.telemetry.anonymize import Anonymizer, looks_anonymized
from repro.telemetry.quality import QualityIssue, QualityReport, audit

__all__ = [
    "ViewRecord",
    "SessionStart",
    "Heartbeat",
    "SessionEnd",
    "Sessionizer",
    "TelemetryBackend",
    "ComboRollup",
    "Dataset",
    "SnapshotSchedule",
    "default_schedule",
    "STUDY_START",
    "STUDY_END",
    "Anonymizer",
    "looks_anonymized",
    "QualityIssue",
    "QualityReport",
    "audit",
    "DeadLetter",
    "ErrorPolicy",
    "IngestPipeline",
    "IngestReport",
    "RejectReason",
    "RobustSessionizer",
    "events_from_record",
    "events_from_records",
    "FaultInjector",
    "FaultMix",
    "FlakyTransport",
    "corrupt_heartbeat",
]
