"""``repro.obs`` — structured tracing, metrics, and logs in one facade.

The management-plane pipeline (synthesis -> ingest -> core stats ->
figures) is instrumented through this module's free functions::

    from repro import obs

    with obs.span("ingest.batch", n=len(events)) as sp:
        ...
        sp.set(accepted=report.accepted)
    obs.counter("multicdn.failover", cdn=name).inc()
    obs.emit("breaker.transition", breaker=name, to="open")

Observability is **off by default** and the disabled path is a no-op:
``span`` hands back a shared null context manager (no clock reads, no
allocation beyond one attribute check) and the instrument accessors
hand back a shared null instrument.  Because none of the recorded data
ever feeds an analysis, output is byte-identical with obs on or off —
the determinism suite asserts exactly that.

Three invariants keep this layer compatible with the replint rule pack:

* all durations flow through an injectable :class:`~repro.obs.clock.Clock`
  (RPL002/RPL007 — only ``obs/clock.py`` touches :mod:`time`);
* span ids are sequential, not random (RPL001);
* snapshots sort every key (RPL006).
"""

from __future__ import annotations

import logging
from typing import IO, Optional

from repro.obs.clock import CallableClock, Clock, FakeClock, MonotonicClock
from repro.obs.export import (
    bench_payload,
    snapshot_payload,
    to_json,
    write_snapshot,
)
from repro.obs.instruments import CATALOG, InstrumentSpec, register_catalog
from repro.obs.logs import get_logger, install_handler, log_event, remove_handler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NOOP_INSTRUMENT,
    log_buckets,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_SPAN_CONTEXT,
    Span,
    Tracer,
    render_tree,
)

__all__ = [
    "CATALOG",
    "CallableClock",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "InstrumentSpec",
    "MetricsError",
    "MetricsRegistry",
    "MonotonicClock",
    "ObsContext",
    "Span",
    "Tracer",
    "bench_payload",
    "configure",
    "counter",
    "current_span_id",
    "emit",
    "enabled",
    "gauge",
    "get_context",
    "get_logger",
    "histogram",
    "log_buckets",
    "metrics",
    "register_catalog",
    "render_tree",
    "reset",
    "snapshot_payload",
    "span",
    "to_json",
    "tracer",
    "write_snapshot",
]


class ObsContext:
    """One observability universe: clock + registry + tracer + logs.

    The module keeps a process-global instance wired to the free
    functions below; tests construct private ones with a
    :class:`FakeClock` to make span durations exact.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock or MonotonicClock()
        self.registry = registry or MetricsRegistry()
        self.tracer = Tracer(clock=self.clock)
        self.seed: Optional[int] = None
        self._log_handler: Optional[logging.Handler] = None

    # -- lifecycle -------------------------------------------------------

    def configure(
        self,
        enabled: bool = True,
        clock: Optional[Clock] = None,
        seed: Optional[int] = None,
        log_stream: Optional[IO[str]] = None,
        log_level: int = logging.INFO,
    ) -> "ObsContext":
        """(Re)configure in place; returns self for chaining."""
        self.enabled = enabled
        if clock is not None:
            self.clock = clock
            self.tracer.clock = clock
        if seed is not None:
            self.seed = seed
        if self._log_handler is not None:
            remove_handler(self._log_handler)
            self._log_handler = None
        if enabled and log_stream is not None:
            self._log_handler = install_handler(
                stream=log_stream,
                level=log_level,
                span_id_fn=lambda: self.tracer.current_span_id,
                seed=self.seed,
            )
        if enabled:
            register_catalog(self.registry)
        return self

    def reset(self) -> None:
        """Clear recorded data; keeps configuration and instruments."""
        self.registry.reset()
        self.tracer.reset()

    # -- recording facade ------------------------------------------------

    def span(self, name: str, **attrs: object):
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, **labels: object):
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object):
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object):
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self.registry.histogram(name, **labels)

    def emit(self, event: str, level: int = logging.INFO, **fields: object) -> None:
        if not self.enabled:
            return
        log_event(get_logger("obs"), event, level=level, **fields)


_CONTEXT = ObsContext()


def get_context() -> ObsContext:
    """The process-global observability context."""
    return _CONTEXT


def configure(**kwargs) -> ObsContext:
    """Configure the global context; see :meth:`ObsContext.configure`."""
    return _CONTEXT.configure(**kwargs)


def enabled() -> bool:
    return _CONTEXT.enabled


def metrics() -> MetricsRegistry:
    """The global registry (live even while recording is disabled)."""
    return _CONTEXT.registry


def tracer() -> Tracer:
    return _CONTEXT.tracer


def span(name: str, **attrs: object):
    return _CONTEXT.span(name, **attrs)


def counter(name: str, **labels: object):
    return _CONTEXT.counter(name, **labels)


def gauge(name: str, **labels: object):
    return _CONTEXT.gauge(name, **labels)


def histogram(name: str, **labels: object):
    return _CONTEXT.histogram(name, **labels)


def emit(event: str, level: int = logging.INFO, **fields: object) -> None:
    _CONTEXT.emit(event, level=level, **fields)


def current_span_id() -> Optional[int]:
    return _CONTEXT.tracer.current_span_id


def reset() -> None:
    _CONTEXT.reset()
