"""Injectable monotonic clocks for the observability layer.

Every duration the obs layer records flows through a :class:`Clock`
object rather than a direct ``time.monotonic()`` call.  This is the
same injection pattern the resilience primitives use, promoted to a
package-wide rule (enforced by replint RPL007): instrumented modules
never read time themselves, so analysis code stays deterministic and
tests can drive spans and histograms with a :class:`FakeClock`.

This module is the single place allowed to touch :mod:`time` — it is
the one RPL007 exemption.
"""

from __future__ import annotations

import time


class Clock:
    """A monotonic clock: ``now()`` returns seconds as a float.

    Subclasses only need ``now``; the base class is abstract in spirit
    but deliberately not ``abc``-heavy — a bare callable wrapped in
    :class:`CallableClock` works too.
    """

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real clock: wraps ``time.monotonic``."""

    def now(self) -> float:
        return time.monotonic()


class CallableClock(Clock):
    """Adapts any ``() -> float`` callable (e.g. an injected clock)."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def now(self) -> float:
        return float(self._fn())


class FakeClock(Clock):
    """A test clock that only moves when told to.

    ``advance()`` is explicit, so span durations and histogram samples
    in tests are exact, not approximate.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self._now += seconds
