"""Snapshot and benchmark exporters.

``snapshot_payload`` renders the obs state (metrics + finished spans)
as one JSON-able dict; ``write_snapshot`` persists it.  The benchmark
harness uses :func:`bench_payload` to turn span timings into the
``BENCH_obs.json`` perf-trajectory artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span

SCHEMA_VERSION = 1


def span_rows(spans: List[Span]) -> List[Dict[str, object]]:
    """Finished spans as flat dicts (creation order)."""
    rows: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: s.span_id):
        rows.append(
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "duration_s": span.duration,
                "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
            }
        )
    return rows


def snapshot_payload(
    registry: MetricsRegistry,
    spans: Optional[List[Span]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "metrics": registry.snapshot(),
    }
    if spans:
        payload["spans"] = span_rows(spans)
    if meta:
        payload["meta"] = dict(meta)
    return payload


def to_json(payload: Dict[str, object]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_snapshot(
    path: str,
    registry: MetricsRegistry,
    spans: Optional[List[Span]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the combined snapshot to ``path``; returns the payload."""
    payload = snapshot_payload(registry, spans=spans, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(payload))
    return payload


def bench_payload(
    spans: List[Span],
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The ``BENCH_obs.json`` shape: per-stage wall times + rollups.

    Top-level stage totals aggregate spans by name so the perf
    trajectory across PRs can diff like-for-like stages even when the
    span count changes.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stage = totals.setdefault(
            span.name, {"calls": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stage["calls"] += 1
        stage["total_s"] += span.duration
        stage["max_s"] = max(stage["max_s"], span.duration)
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "stages": {name: totals[name] for name in sorted(totals)},
        "spans": span_rows(spans),
    }
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if meta:
        payload["meta"] = dict(meta)
    return payload
