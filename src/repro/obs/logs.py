"""Structured JSON logs on top of stdlib :mod:`logging`.

One formatter, one helper: every record renders as a single JSON
object with the logger name, level, message, the active span id (when
tracing is live), the run seed (when configured), and any structured
fields passed via ``extra={"fields": {...}}`` or the :func:`emit`
helper on the obs facade.  No handler is installed at import time —
emitting logs is an explicit opt-in (``obs.configure``), so library
users see nothing unless they ask.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Dict, Optional

LOGGER_ROOT = "repro"

_FIELDS_ATTR = "repro_fields"


class JsonLogFormatter(logging.Formatter):
    """Renders each record as one JSON line.

    ``span_id_fn`` is injected by the obs context so the formatter can
    stamp the active span without importing the tracer (and without
    creating an import cycle).  The record's own ``created`` timestamp
    is deliberately omitted: operational logs here describe a seeded
    run, and the span tree already carries relative timings.
    """

    def __init__(
        self,
        span_id_fn=None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._span_id_fn = span_id_fn
        self.seed = seed

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "logger": record.name,
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        if self._span_id_fn is not None:
            span_id = self._span_id_fn()
            if span_id is not None:
                payload["span_id"] = span_id
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    full = f"{LOGGER_ROOT}.{name}" if name else LOGGER_ROOT
    return logging.getLogger(full)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit one structured event with attached key/value fields."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})


def install_handler(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
    span_id_fn=None,
    seed: Optional[int] = None,
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree.

    Returns the handler so callers (and tests) can detach it again via
    :func:`remove_handler`.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter(span_id_fn=span_id_fn, seed=seed))
    root = get_logger()
    root.addHandler(handler)
    root.setLevel(level)
    # Structured events are a sink of their own; don't duplicate them
    # into whatever the host application wired on the root logger.
    root.propagate = False
    return handler


def remove_handler(handler: logging.Handler) -> None:
    get_logger().removeHandler(handler)
