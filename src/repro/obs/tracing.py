"""Nestable spans carried via :mod:`contextvars`.

``with tracer.span("ingest.batch", n=123) as sp`` opens a span, makes
it the ambient parent for any span opened inside the block (including
across generator frames, courtesy of contextvars), and records its
wall time through the tracer's injectable clock.  Span ids are a plain
process-local counter — deterministic, unlike random trace ids, so a
``--trace`` dump from a seeded run is itself reproducible apart from
the timings.

When tracing is disabled the obs facade hands out a shared no-op
context manager instead, so instrumented code pays one attribute check
and zero clock reads.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.obs.clock import Clock, MonotonicClock


@dataclass
class Span:
    """One live (or finished) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (entity counts, row counts, ...)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


class _NullSpan:
    """The disabled-path span: absorbs ``set`` calls, records nothing."""

    span_id = 0
    parent_id = None
    name = ""
    duration = 0.0
    attrs: Dict[str, object] = {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager; stateless, so one instance."""

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Creates spans, tracks the ambient parent, keeps finished spans.

    ``finished`` holds completed spans in completion order (children
    before parents, as with any post-order walk); :func:`render_tree`
    re-nests them for display.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or MonotonicClock()
        self.finished: List[Span] = []
        self._next_id = 1
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )

    @property
    def current(self) -> Optional[Span]:
        return self._current.get()

    @property
    def current_span_id(self) -> Optional[int]:
        span = self._current.get()
        return span.span_id if span is not None else None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        parent = self._current.get()
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)
            span.end = self.clock.now()
            self.finished.append(span)

    def adopt(
        self,
        spans: Sequence[Span],
        parent_id: Optional[int] = None,
    ) -> List[Span]:
        """Graft finished spans from another tracer into this one.

        Worker processes record spans against their own tracer (ids
        restart at 1 per worker), so the parent re-numbers them here:
        every adopted span gets a fresh sequential id, intra-batch
        parent links are remapped, and batch roots are re-parented
        under ``parent_id`` (default: the ambient span, i.e. the
        fan-out span that collected the batch).  Ids are assigned in
        the batch's creation order and batches are adopted in
        unit-index order, so the merged tree is deterministic no
        matter how workers were scheduled.  Returns the new spans.
        """
        if parent_id is None:
            parent_id = self.current_span_id
        id_map: Dict[int, int] = {}
        for span in sorted(spans, key=lambda s: s.span_id):
            id_map[span.span_id] = self._next_id
            self._next_id += 1
        adopted: List[Span] = []
        for span in spans:  # keep the worker's completion order
            remapped = Span(
                span_id=id_map[span.span_id],
                parent_id=(
                    parent_id
                    if span.parent_id is None
                    else id_map.get(span.parent_id, parent_id)
                ),
                name=span.name,
                start=span.start,
                end=span.end,
                attrs=dict(span.attrs),
            )
            adopted.append(remapped)
            self.finished.append(remapped)
        return adopted

    def reset(self) -> None:
        self.finished.clear()
        self._next_id = 1


def render_tree(spans: List[Span], unit: str = "ms") -> str:
    """ASCII tree of finished spans with durations and attributes.

    Orphan spans (parent never finished, e.g. tracer enabled mid-run)
    render as roots.  Sibling order is span-id order — creation order,
    hence deterministic for a seeded run.
    """
    if not spans:
        return "(no spans recorded)"
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = ""
        if span.attrs:
            inner = " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
            attrs = f"  [{inner}]"
        lines.append(
            f"{indent}{span.name}  {span.duration * scale:.3f}{unit}{attrs}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
