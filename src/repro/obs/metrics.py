"""Process-local metrics: counters, gauges, log-scale histograms.

A :class:`MetricsRegistry` hands out labeled instruments and renders a
deterministic JSON-able snapshot.  There are no dependencies and no
background threads: instruments are plain objects mutated in-process,
which is all a single-process reproduction pipeline needs — and the
registry doubles as the backing store for per-pipeline reports (the
:class:`~repro.telemetry.ingest.IngestReport` counts *are* these
counters, so a metrics snapshot can never disagree with a printed
report).

Instruments are identified by ``(name, labels)``; asking twice for the
same identity returns the same object, which is what makes shared
accumulation work.  Histogram buckets are fixed log-scale bounds
chosen at construction, so merged snapshots are always comparable.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

LabelSet = Tuple[Tuple[str, str], ...]


class MetricsError(ReproError):
    """An instrument was misused or misdeclared."""


def _label_set(labels: Mapping[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelSet) -> str:
    """``name{k=v,...}`` — the snapshot key for one labeled series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def log_buckets(
    lo: float = 1e-6, hi: float = 1e4, per_decade: int = 2
) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per power of ten; the default spans
    microseconds to hours in 21 buckets, wide enough for both span
    durations (seconds) and retry attempt counts.
    """
    if lo <= 0 or hi <= lo:
        raise MetricsError("bucket range must satisfy 0 < lo < hi")
    if per_decade < 1:
        raise MetricsError("per_decade must be >= 1")
    bounds: List[float] = []
    start = math.floor(math.log10(lo) * per_decade)
    stop = math.ceil(math.log10(hi) * per_decade)
    for step in range(start, stop + 1):
        bounds.append(10.0 ** (step / per_decade))
    return tuple(bounds)


DEFAULT_BUCKETS = log_buckets()


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def count(self) -> int:
        """The value as an int (exact for unit increments)."""
        return int(self._value)

    def merge_from(self, other: "Counter") -> None:
        """Fold another counter in: totals add (commutative)."""
        self._value += other._value

    def snapshot(self) -> object:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that can go up and down (queue depths, open sessions)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def merge_from(self, other: "Gauge") -> None:
        """Fold another gauge in: high-water (max) semantics.

        "Last writer wins" has no meaning once writers run
        concurrently, so the merge keeps the maximum — commutative,
        associative, and equal to the serial value whenever every
        worker sets the gauge to the same deterministic level.
        """
        self._value = max(self._value, other._value)

    def snapshot(self) -> object:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket log-scale histogram (no quantile sketching).

    ``bounds`` are upper bucket edges; one implicit overflow bucket
    catches everything above the last edge.  The snapshot reports
    cumulative-free per-bucket counts plus count/sum/min/max, enough to
    reconstruct coarse percentiles offline.
    """

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])
        ):
            raise MetricsError("histogram bounds must strictly increase")
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        self._counts[bisect_right(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram in bucket-wise.

        Requires identical bounds (buckets are fixed at construction
        precisely so merged snapshots stay comparable); counts and sums
        add, min/max combine.
        """
        if other.bounds != self.bounds:
            raise MetricsError(
                "cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} edges)"
            )
        self._counts = [
            a + b for a, b in zip(self._counts, other._counts)
        ]
        self._count += other._count
        self._sum += other._sum
        for value in (other._min, other._max):
            if value is None:
                continue
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def snapshot(self) -> object:
        buckets = {}
        for i, count in enumerate(self._counts):
            if count == 0:
                continue
            le = (
                f"{self.bounds[i]:g}" if i < len(self.bounds) else "+Inf"
            )
            buckets[le] = count
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": buckets,
        }

    def reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None


class _NoopInstrument:
    """Absorbs every instrument call; returned when obs is disabled."""

    kind = "noop"
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> object:
        return 0.0

    def reset(self) -> None:
        pass


NOOP_INSTRUMENT = _NoopInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Hands out labeled instruments and snapshots them as JSON.

    One name maps to one instrument kind; the same ``(name, labels)``
    always yields the same instrument object.  Descriptions are
    attached on first registration and surface in the taxonomy listing
    (``repro metrics``).
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelSet], object] = {}
        self._kinds: Dict[str, str] = {}
        self._descriptions: Dict[str, str] = {}

    # -- instrument accessors -------------------------------------------

    def counter(
        self, name: str, description: str = "", **labels: object
    ) -> Counter:
        return self._get(name, "counter", description, labels)

    def gauge(
        self, name: str, description: str = "", **labels: object
    ) -> Gauge:
        return self._get(name, "gauge", description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get(name, "histogram", description, labels, bounds)

    def _get(
        self,
        name: str,
        kind: str,
        description: str,
        labels: Mapping[str, object],
        bounds: Optional[Sequence[float]] = None,
    ):
        declared = self._kinds.get(name)
        if declared is not None and declared != kind:
            raise MetricsError(
                f"instrument {name!r} is a {declared}, not a {kind}"
            )
        key = (name, _label_set(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if kind == "histogram":
                instrument = Histogram(bounds or DEFAULT_BUCKETS)
            else:
                instrument = _KINDS[kind]()
            self._instruments[key] = instrument
            self._kinds[name] = kind
            if description:
                self._descriptions[name] = description
        elif description and name not in self._descriptions:
            self._descriptions[name] = description
        return instrument

    # -- merge -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        The parent side of a process-pool fan-out calls this once per
        worker capture, in unit-index order.  Counters add, histograms
        add bucket-wise, gauges keep the high-water mark — all
        commutative and associative, so the merged snapshot is
        invariant under merge order and, for counters and histograms,
        exactly equals the unsplit serial run.  Series missing on one
        side are adopted as-is; kind conflicts raise
        :class:`MetricsError` like any other misdeclaration.
        """
        for (name, labels), theirs in sorted(other._instruments.items()):
            mine = self._get(
                name,
                other._kinds[name],
                other._descriptions.get(name, ""),
                dict(labels),
                bounds=getattr(theirs, "bounds", None),
            )
            mine.merge_from(theirs)
        return self

    # -- introspection ---------------------------------------------------

    def series(self, name: str) -> Dict[LabelSet, object]:
        """Every labeled instrument registered under ``name``."""
        return {
            labels: instrument
            for (n, labels), instrument in self._instruments.items()
            if n == name
        }

    def series_values(self, name: str) -> Dict[str, float]:
        """``{label-value: count}`` for a single-label counter family."""
        out: Dict[str, float] = {}
        for labels, instrument in self.series(name).items():
            key = ",".join(v for _, v in labels) if labels else ""
            out[key] = getattr(instrument, "value", 0.0)
        return out

    def describe(self, name: str) -> str:
        return self._descriptions.get(name, "")

    def names(self) -> List[str]:
        return sorted(self._kinds)

    def kind_of(self, name: str) -> str:
        try:
            return self._kinds[name]
        except KeyError:
            raise MetricsError(f"unknown instrument {name!r}") from None

    # -- snapshot --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested dict: kind -> series -> value."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
        }
        for (name, labels), instrument in sorted(self._instruments.items()):
            key = format_series(name, labels)
            out[section[self._kinds[name]]][key] = instrument.snapshot()
        return out

    def reset(self) -> None:
        for instrument in self._instruments.values():
            instrument.reset()
