"""The instrument taxonomy: every metric the pipeline emits, declared.

Central declarations keep names, kinds, and descriptions consistent
across the modules that record them and give ``repro metrics`` a
complete listing even before anything has been measured.  Adding an
instrument means adding a spec here and recording through the obs
facade at the call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class InstrumentSpec:
    """One declared instrument: identity, kind, and meaning."""

    name: str
    kind: str  # counter | gauge | histogram
    description: str
    labels: Tuple[str, ...] = ()


CATALOG: Tuple[InstrumentSpec, ...] = (
    # -- synthesis -------------------------------------------------------
    InstrumentSpec(
        "synthesis.records", "counter",
        "view records emitted by the ecosystem generator",
    ),
    InstrumentSpec(
        "synthesis.snapshots", "counter",
        "snapshots synthesized by the ecosystem generator",
    ),
    InstrumentSpec(
        "synthesis.publishers", "gauge",
        "publisher population size of the last generated ecosystem",
    ),
    InstrumentSpec(
        "synthesis.workers", "gauge",
        "process-pool size of the last snapshot synthesis (1 = serial)",
    ),
    # -- dataset ---------------------------------------------------------
    InstrumentSpec(
        "dataset.columnar_hits", "counter",
        "aggregations served by the vectorized column store",
    ),
    InstrumentSpec(
        "dataset.row_fallbacks", "counter",
        "aggregations that fell back to the row-at-a-time path",
    ),
    # -- ingestion -------------------------------------------------------
    InstrumentSpec(
        "ingest.events", "counter",
        "raw events offered to the ingestion pipeline",
    ),
    InstrumentSpec(
        "ingest.accepted", "counter",
        "events accepted into an open session",
    ),
    InstrumentSpec(
        "ingest.quarantined", "counter",
        "dead-lettered events/sessions by typed reject reason",
        labels=("reason",),
    ),
    InstrumentSpec(
        "ingest.repaired", "counter",
        "events or sessions fixed under the repair policy",
    ),
    InstrumentSpec(
        "ingest.deduped", "counter",
        "duplicate events dropped (seq numbers, repeated starts/ends)",
    ),
    InstrumentSpec(
        "ingest.reaped", "counter",
        "stale sessions force-folded or dropped by the reaper",
    ),
    InstrumentSpec(
        "ingest.records", "counter",
        "view records folded out of accepted sessions",
    ),
    InstrumentSpec(
        "ingest.open_sessions", "gauge",
        "sessions currently open in the pipeline",
    ),
    InstrumentSpec(
        "ingest.parked_events", "gauge",
        "events parked in the reorder buffer awaiting their start",
    ),
    # -- resilience ------------------------------------------------------
    InstrumentSpec(
        "retry.attempts", "histogram",
        "attempts consumed per retry_with_backoff call",
    ),
    InstrumentSpec(
        "retry.exhausted", "counter",
        "retry_with_backoff calls that ran out of retries",
    ),
    InstrumentSpec(
        "breaker.transitions", "counter",
        "circuit-breaker state transitions",
        labels=("breaker", "from", "to"),
    ),
    InstrumentSpec(
        "breaker.rejected", "counter",
        "calls rejected outright by an open circuit",
        labels=("breaker",),
    ),
    # -- delivery --------------------------------------------------------
    InstrumentSpec(
        "multicdn.served", "counter",
        "successful fetches by serving CDN",
        labels=("cdn",),
    ),
    InstrumentSpec(
        "multicdn.failover", "counter",
        "failovers away from a CDN after retry exhaustion",
        labels=("cdn",),
    ),
    InstrumentSpec(
        "multicdn.circuit_skipped", "counter",
        "CDNs skipped without a probe because their circuit was open",
        labels=("cdn",),
    ),
    InstrumentSpec(
        "multicdn.exhausted", "counter",
        "fetches that failed on every eligible CDN",
    ),
    # -- figures ---------------------------------------------------------
    InstrumentSpec(
        "figure.runs", "counter",
        "figure regenerations by figure id",
        labels=("figure",),
    ),
    # -- testkit ---------------------------------------------------------
    InstrumentSpec(
        "testkit.oracles", "counter",
        "oracle executions by kind and outcome status",
        labels=("kind", "status"),
    ),
    InstrumentSpec(
        "testkit.checks", "counter",
        "elementary oracle assertions evaluated",
    ),
    InstrumentSpec(
        "testkit.scenarios", "gauge",
        "scenarios in the most recent matrix run",
    ),
    # -- chaos -----------------------------------------------------------
    InstrumentSpec(
        "chaos.faults", "counter",
        "chaos faults by layer and disposition "
        "(injected / absorbed / leaked)",
        labels=("layer", "disposition"),
    ),
    InstrumentSpec(
        "chaos.contracts", "counter",
        "degradation-contract executions by outcome status",
        labels=("status",),
    ),
    InstrumentSpec(
        "chaos.breaker_recovery", "histogram",
        "breaker open-to-reclose latency under delivery chaos, "
        "in injected ticks",
    ),
    InstrumentSpec(
        "chaos.scenarios", "gauge",
        "scenarios in the most recent chaos campaign",
    ),
    # -- analysis (repgraph) ---------------------------------------------
    InstrumentSpec(
        "analysis.modules", "gauge",
        "modules parsed by the last whole-program analysis run",
    ),
    InstrumentSpec(
        "analysis.functions", "gauge",
        "functions (incl. methods) indexed by the last analysis run",
    ),
    InstrumentSpec(
        "analysis.call_edges", "gauge",
        "resolved call-graph edges in the last analysis run",
    ),
    InstrumentSpec(
        "analysis.findings", "counter",
        "non-baselined RPL1xx findings by rule code",
        labels=("code",),
    ),
)


def catalog_by_name() -> Dict[str, InstrumentSpec]:
    return {spec.name: spec for spec in CATALOG}


def register_catalog(registry) -> None:
    """Pre-register every label-free instrument with its description.

    Labeled families only materialize when a label value is first
    observed, but their descriptions are still attached so snapshots
    and the taxonomy listing agree.
    """
    for spec in CATALOG:
        if spec.labels:
            continue
        getattr(registry, spec.kind)(spec.name, spec.description)
