"""Per-worker observability capture for process-pool fan-outs.

A pool worker cannot usefully mutate the parent's metrics registry —
under ``fork`` it mutates a silently diverging copy, under ``spawn`` a
fresh one.  Instead the worker side of a fan-out runs its unit inside
:func:`captured`: the global :class:`~repro.obs.ObsContext` temporarily
points at a *fresh* registry and tracer (and a buffering log handler
replaces any stream handler, so worker log lines never interleave on a
shared stderr), the unit runs, and everything recorded comes back as a
picklable :class:`WorkerObs` payload.  The parent folds payloads back
in unit-index order with :func:`absorb` — counter/histogram merges are
commutative, span ids are re-based sequentially, and buffered log
lines are re-emitted in order — so an observability-on parallel run
reports the same totals as the serial one.

When observability is disabled the capture is a no-op wrapper: the
unit runs directly and the payload is ``None`` (zero overhead, and the
disabled path stays byte-identical to the enabled one by the obs
layer's standing invariant).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import get_context
from repro.obs.logs import JsonLogFormatter, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

T = TypeVar("T")


@dataclass(frozen=True)
class WorkerObs:
    """Everything one worker recorded while running its chunk."""

    registry: MetricsRegistry
    spans: Tuple[Span, ...]
    log_lines: Tuple[str, ...]


class _BufferHandler(logging.Handler):
    """Collects formatted log lines instead of writing to a stream."""

    def __init__(self, sink: List[str]) -> None:
        super().__init__()
        self._sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        self._sink.append(self.format(record))


def captured(
    fn: Callable[..., T], *args: object
) -> Tuple[T, Optional[WorkerObs]]:
    """Run ``fn(*args)`` with recording redirected to a fresh capture.

    Returns ``(result, payload)``; the payload is ``None`` when
    observability is disabled.  The previous context (registry,
    tracer, log handlers) is restored afterwards even on error, so
    nesting captures — a fan-out inside a fan-out — composes.
    """
    ctx = get_context()
    if not ctx.enabled:
        return fn(*args), None
    registry = MetricsRegistry()
    tracer = Tracer(clock=ctx.clock)
    lines: List[str] = []
    saved_registry = ctx.registry
    saved_tracer = ctx.tracer
    root = get_logger()
    saved_handlers = list(root.handlers)
    buffer = _BufferHandler(lines)
    buffer.setFormatter(JsonLogFormatter(seed=ctx.seed))
    ctx.registry = registry
    ctx.tracer = tracer
    for handler in saved_handlers:
        root.removeHandler(handler)
    root.addHandler(buffer)
    try:
        result = fn(*args)
    finally:
        ctx.registry = saved_registry
        ctx.tracer = saved_tracer
        root.removeHandler(buffer)
        for handler in saved_handlers:
            root.addHandler(handler)
    return result, WorkerObs(
        registry=registry,
        spans=tuple(tracer.finished),
        log_lines=tuple(lines),
    )


def absorb(payloads: Sequence[Optional[WorkerObs]]) -> None:
    """Fold worker captures into the live context, in the given order.

    Callers pass payloads in unit-index order; merge order is then
    deterministic regardless of worker scheduling (and for counters
    and histograms the result is order-invariant anyway).  ``None``
    entries — units run with observability off — are skipped.
    """
    ctx = get_context()
    if not ctx.enabled:
        return
    handlers = list(get_logger().handlers)
    for payload in payloads:
        if payload is None:
            continue
        ctx.registry.merge(payload.registry)
        ctx.tracer.adopt(payload.spans)
        for line in payload.log_lines:
            _reemit(handlers, line)


def _reemit(handlers: Sequence[logging.Handler], line: str) -> None:
    """Replay one already-formatted line through the live handlers.

    Inside a nested capture the live handler is the buffer (the line
    propagates outward with the worker's own); at the top level it is
    the configured stream handler, which writes it verbatim.
    """
    for handler in handlers:
        if isinstance(handler, _BufferHandler):
            handler._sink.append(line)
        else:
            stream = getattr(handler, "stream", None)
            if stream is not None:
                stream.write(line + "\n")


__all__ = ["WorkerObs", "absorb", "captured"]
