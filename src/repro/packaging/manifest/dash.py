"""MPEG-DASH media presentation descriptions (.mpd) — ISO 23009-1 subset.

A single XML document carries the whole presentation: an AdaptationSet
of video Representations (one per ladder rung) with a SegmentTemplate,
plus an audio AdaptationSet.  Unlike HLS, DASH is codec-agnostic (§2),
which the writer reflects by accepting whatever codec the ladder's
renditions declare.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Tuple

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video
from repro.errors import ManifestParseError
from repro.packaging.manifest.base import (
    ManifestInfo,
    ManifestParser,
    ManifestWriter,
    chunk_count,
)

_DASH_NS = "urn:mpeg:dash:schema:mpd:2011"
_CODEC_STRINGS = {
    "h264": "avc1.640028",
    "h265": "hvc1.1.6.L120.90",
    "vp9": "vp09.00.40.08",
}


def _iso_duration(seconds: float) -> str:
    """Render seconds as an ISO 8601 duration (PT#H#M#S)."""
    total = max(seconds, 0.0)
    hours = int(total // 3600)
    minutes = int((total % 3600) // 60)
    secs = total - hours * 3600 - minutes * 60
    return f"PT{hours}H{minutes}M{secs:.3f}S"


def _parse_iso_duration(text: str) -> float:
    """Parse the PT#H#M#S subset of ISO 8601 durations."""
    if not text.startswith("PT"):
        raise ManifestParseError(f"bad ISO duration {text!r}")
    value = 0.0
    number = ""
    for char in text[2:]:
        if char.isdigit() or char == ".":
            number += char
        elif char == "H":
            value += float(number) * 3600
            number = ""
        elif char == "M":
            value += float(number) * 60
            number = ""
        elif char == "S":
            value += float(number)
            number = ""
        else:
            raise ManifestParseError(f"bad ISO duration {text!r}")
    return value


class DASHWriter(ManifestWriter):
    """Renders a static (VoD) MPD with a SegmentTemplate per set."""

    protocol = Protocol.DASH
    extension = ".mpd"
    segment_extension = ".m4s"

    def render(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> str:
        ET.register_namespace("", _DASH_NS)
        mpd = ET.Element(
            f"{{{_DASH_NS}}}MPD",
            {
                "type": "static",
                "mediaPresentationDuration": _iso_duration(
                    video.duration_seconds
                ),
                "minBufferTime": _iso_duration(
                    2 * self.chunk_duration_seconds
                ),
                "profiles": "urn:mpeg:dash:profile:isoff-on-demand:2011",
            },
        )
        period = ET.SubElement(
            mpd, f"{{{_DASH_NS}}}Period", {"id": video.video_id}
        )
        base = ET.SubElement(period, f"{{{_DASH_NS}}}BaseURL")
        base.text = f"{base_url.rstrip('/')}/{video.video_id}/"

        video_set = ET.SubElement(
            period,
            f"{{{_DASH_NS}}}AdaptationSet",
            {"contentType": "video", "mimeType": "video/mp4"},
        )
        timescale = 1000
        ET.SubElement(
            video_set,
            f"{{{_DASH_NS}}}SegmentTemplate",
            {
                "timescale": str(timescale),
                "duration": str(
                    int(self.chunk_duration_seconds * timescale)
                ),
                "media": "$RepresentationID$/seg$Number%05d$.m4s",
                "initialization": "$RepresentationID$/init.mp4",
                "startNumber": "0",
            },
        )
        for rendition in ladder:
            ET.SubElement(
                video_set,
                f"{{{_DASH_NS}}}Representation",
                {
                    "id": f"{int(round(rendition.bitrate_kbps))}k",
                    "bandwidth": str(int(rendition.bitrate_kbps * 1000)),
                    "width": str(rendition.width),
                    "height": str(rendition.height),
                    "codecs": _CODEC_STRINGS.get(
                        rendition.codec, rendition.codec
                    ),
                },
            )

        audio_set = ET.SubElement(
            period,
            f"{{{_DASH_NS}}}AdaptationSet",
            {"contentType": "audio", "mimeType": "audio/mp4"},
        )
        audio_kbps = ladder[0].audio_bitrate_kbps or 96.0
        ET.SubElement(
            audio_set,
            f"{{{_DASH_NS}}}Representation",
            {
                "id": "audio",
                "bandwidth": str(int(audio_kbps * 1000)),
                "codecs": "mp4a.40.2",
            },
        )
        header = '<?xml version="1.0" encoding="UTF-8"?>\n'
        return header + ET.tostring(mpd, encoding="unicode") + "\n"


class DASHParser(ManifestParser):
    """Parses the MPD subset the writer produces."""

    protocol = Protocol.DASH

    def parse(self, text: str) -> ManifestInfo:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ManifestParseError(f"MPD is not well-formed XML: {exc}")
        if not root.tag.endswith("MPD"):
            raise ManifestParseError(f"root element is {root.tag!r}, not MPD")
        ns = {"d": _DASH_NS}
        period = root.find("d:Period", ns)
        if period is None:
            raise ManifestParseError("MPD has no Period")
        video_id = period.get("id", "unknown")

        bitrates: List[float] = []
        audio_bitrates: List[float] = []
        chunk_duration: float = 0.0
        chunk_urls: List[str] = []
        base_el = period.find("d:BaseURL", ns)
        base = base_el.text if base_el is not None and base_el.text else ""

        presentation = root.get("mediaPresentationDuration")
        duration_seconds = (
            _parse_iso_duration(presentation) if presentation else 0.0
        )

        for adaptation in period.findall("d:AdaptationSet", ns):
            content_type = adaptation.get("contentType", "video")
            template = adaptation.find("d:SegmentTemplate", ns)
            representations = adaptation.findall("d:Representation", ns)
            for representation in representations:
                bandwidth = representation.get("bandwidth")
                if bandwidth is None:
                    raise ManifestParseError(
                        "Representation missing bandwidth"
                    )
                kbps = float(bandwidth) / 1000.0
                if content_type == "audio":
                    audio_bitrates.append(kbps)
                else:
                    bitrates.append(kbps)
            if content_type == "video" and template is not None:
                timescale = float(template.get("timescale", "1"))
                duration_ticks = float(template.get("duration", "0"))
                if timescale <= 0 or duration_ticks <= 0:
                    raise ManifestParseError("bad SegmentTemplate timing")
                chunk_duration = duration_ticks / timescale
                media = template.get("media", "")
                if duration_seconds > 0 and media:
                    n = chunk_count(duration_seconds, chunk_duration)
                    for representation in representations:
                        rep_id = representation.get("id", "rep")
                        for i in range(n):
                            url = media.replace(
                                "$RepresentationID$", rep_id
                            ).replace("$Number%05d$", f"{i:05d}")
                            chunk_urls.append(base + url)
        if not bitrates:
            raise ManifestParseError("MPD advertises no video renditions")
        if chunk_duration <= 0:
            raise ManifestParseError("MPD has no video SegmentTemplate")
        return ManifestInfo(
            protocol=Protocol.DASH,
            video_id=video_id,
            bitrates_kbps=tuple(sorted(bitrates)),
            audio_bitrates_kbps=tuple(audio_bitrates),
            chunk_duration_seconds=chunk_duration,
            chunk_urls=tuple(chunk_urls),
        )
