"""Apple HTTP Live Streaming manifests (.m3u8) — RFC 8216 subset.

HLS splits metadata across a *master playlist* (one ``EXT-X-STREAM-INF``
entry per rendition) and per-rendition *media playlists* (``EXTINF``
per segment).  The writer renders both; the parser round-trips either
and can merge a full bundle into one :class:`ManifestInfo`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video
from repro.errors import ManifestParseError
from repro.packaging.manifest.base import (
    ManifestInfo,
    ManifestParser,
    ManifestWriter,
    chunk_count,
    require_prefix,
)

_STREAM_INF_RE = re.compile(r"^#EXT-X-STREAM-INF:(?P<attrs>.+)$")
_EXTINF_RE = re.compile(r"^#EXTINF:(?P<duration>[0-9.]+),?.*$")
_ATTR_RE = re.compile(r'([A-Z0-9-]+)=("[^"]*"|[^,]*)')


def _parse_attributes(attr_text: str) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    for key, value in _ATTR_RE.findall(attr_text):
        attrs[key] = value.strip('"')
    return attrs


class HLSWriter(ManifestWriter):
    """Renders HLS master and media playlists."""

    protocol = Protocol.HLS
    extension = ".m3u8"
    segment_extension = ".ts"

    def render(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> str:
        """Master playlist: one variant entry per ladder rung."""
        lines = ["#EXTM3U", "#EXT-X-VERSION:4"]
        for rendition in ladder:
            bandwidth = int(rendition.total_bitrate_kbps * 1000)
            lines.append(
                "#EXT-X-STREAM-INF:"
                f"BANDWIDTH={bandwidth},"
                f"AVERAGE-BANDWIDTH={int(rendition.bitrate_kbps * 1000)},"
                f"RESOLUTION={rendition.width}x{rendition.height},"
                f'CODECS="avc1.640028,mp4a.40.2"'
            )
            lines.append(self.media_playlist_url(video, rendition, base_url))
        return "\n".join(lines) + "\n"

    def media_playlist_url(
        self, video: Video, rendition: Rendition, base_url: str
    ) -> str:
        return (
            f"{base_url.rstrip('/')}/{video.video_id}/"
            f"{int(round(rendition.bitrate_kbps))}k/index.m3u8"
        )

    def render_media(
        self, video: Video, rendition: Rendition, base_url: str
    ) -> str:
        """Media playlist for one rendition: the per-segment timeline."""
        n = chunk_count(video.duration_seconds, self.chunk_duration_seconds)
        lines = [
            "#EXTM3U",
            "#EXT-X-VERSION:4",
            f"#EXT-X-TARGETDURATION:{int(round(self.chunk_duration_seconds))}",
            "#EXT-X-MEDIA-SEQUENCE:0",
            "#EXT-X-PLAYLIST-TYPE:VOD",
        ]
        remaining = video.duration_seconds
        for url in self.segment_urls(video, rendition, base_url):
            seg = min(self.chunk_duration_seconds, remaining)
            lines.append(f"#EXTINF:{seg:.3f},")
            lines.append(url)
            remaining -= seg
        lines.append("#EXT-X-ENDLIST")
        assert len(lines) == 6 + 2 * n
        return "\n".join(lines) + "\n"


class HLSParser(ManifestParser):
    """Parses HLS master and media playlists."""

    protocol = Protocol.HLS

    def parse(self, text: str) -> ManifestInfo:
        """Parse either playlist flavor, auto-detected by its tags."""
        require_prefix(text, "#EXTM3U", "an HLS playlist")
        if "#EXT-X-STREAM-INF" in text:
            return self._parse_master(text)
        return self._parse_media(text)

    def parse_bundle(
        self, master_text: str, media_texts: Sequence[str]
    ) -> ManifestInfo:
        """Merge a master playlist and its media playlists."""
        master = self._parse_master(master_text)
        chunk_urls: List[str] = []
        duration: Optional[float] = None
        for media_text in media_texts:
            media = self._parse_media(media_text)
            chunk_urls.extend(media.chunk_urls)
            if duration is None:
                duration = media.chunk_duration_seconds
        return ManifestInfo(
            protocol=Protocol.HLS,
            video_id=master.video_id,
            bitrates_kbps=master.bitrates_kbps,
            audio_bitrates_kbps=master.audio_bitrates_kbps,
            chunk_duration_seconds=duration,
            chunk_urls=tuple(chunk_urls),
        )

    def _parse_master(self, text: str) -> ManifestInfo:
        bitrates: List[float] = []
        uris: List[str] = []
        expecting_uri = False
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            match = _STREAM_INF_RE.match(line)
            if match:
                attrs = _parse_attributes(match.group("attrs"))
                bandwidth = attrs.get("AVERAGE-BANDWIDTH") or attrs.get(
                    "BANDWIDTH"
                )
                if bandwidth is None:
                    raise ManifestParseError(
                        "EXT-X-STREAM-INF missing BANDWIDTH"
                    )
                bitrates.append(float(bandwidth) / 1000.0)
                expecting_uri = True
            elif expecting_uri and not line.startswith("#"):
                uris.append(line)
                expecting_uri = False
        if not bitrates:
            raise ManifestParseError("master playlist advertises no variants")
        if len(uris) != len(bitrates):
            raise ManifestParseError(
                f"{len(bitrates)} variants but {len(uris)} variant URIs"
            )
        return ManifestInfo(
            protocol=Protocol.HLS,
            video_id=_video_id_from_uri(uris[0]),
            bitrates_kbps=tuple(sorted(bitrates)),
        )

    def _parse_media(self, text: str) -> ManifestInfo:
        urls: List[str] = []
        durations: List[float] = []
        target: Optional[float] = None
        expecting_uri = False
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#EXT-X-TARGETDURATION:"):
                target = float(line.split(":", 1)[1])
            match = _EXTINF_RE.match(line)
            if match:
                durations.append(float(match.group("duration")))
                expecting_uri = True
            elif expecting_uri and not line.startswith("#"):
                urls.append(line)
                expecting_uri = False
        if not urls:
            raise ManifestParseError("media playlist contains no segments")
        if len(urls) != len(durations):
            raise ManifestParseError("EXTINF count does not match URI count")
        chunk_duration = target if target is not None else max(durations)
        return ManifestInfo(
            protocol=Protocol.HLS,
            video_id=_video_id_from_uri(urls[0]),
            bitrates_kbps=(_bitrate_from_uri(urls[0]),),
            chunk_duration_seconds=chunk_duration,
            chunk_urls=tuple(urls),
        )


def _video_id_from_uri(uri: str) -> str:
    """Recover the video ID from our URL layout; 'unknown' otherwise."""
    parts = [p for p in uri.split("/") if p]
    if len(parts) >= 3:
        return parts[-3]
    return "unknown"


def _bitrate_from_uri(uri: str) -> float:
    """Recover the rendition bitrate from the '<kbps>k' path component."""
    parts = [p for p in uri.split("/") if p]
    for part in reversed(parts):
        if part.endswith("k") and part[:-1].isdigit():
            return float(part[:-1])
    return 0.001  # unknown, but ManifestInfo requires a positive bitrate
