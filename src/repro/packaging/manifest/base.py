"""Shared manifest machinery.

A manifest describes, per §2, "the values of available bitrates for
adaptation, the audio bitrates, the time duration of an individual
chunk and the URLs to fetch video chunks".  Each protocol module
subclasses :class:`ManifestWriter` / :class:`ManifestParser` to render
and round-trip its concrete wire format; :class:`ManifestInfo` is the
protocol-neutral summary the control plane (and our analyses) consume.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video
from repro.errors import ManifestError


@dataclass(frozen=True)
class ManifestInfo:
    """Protocol-neutral contents of a parsed manifest.

    ``chunk_duration_seconds`` is None when the parsed document is a
    top-level (master) manifest that delegates segment timing to
    per-rendition playlists, as HLS master playlists do.
    """

    protocol: Protocol
    video_id: str
    bitrates_kbps: Tuple[float, ...]
    audio_bitrates_kbps: Tuple[float, ...] = ()
    chunk_duration_seconds: Optional[float] = None
    chunk_urls: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.bitrates_kbps:
            raise ManifestError("manifest must advertise at least one bitrate")
        if (
            self.chunk_duration_seconds is not None
            and self.chunk_duration_seconds <= 0
        ):
            raise ManifestError("chunk duration must be positive")

    @property
    def rendition_count(self) -> int:
        return len(self.bitrates_kbps)


def chunk_count(duration_seconds: float, chunk_seconds: float) -> int:
    """Number of chunks for a video: ceil(duration / chunk duration)."""
    if duration_seconds <= 0 or chunk_seconds <= 0:
        raise ManifestError("durations must be positive")
    return int(math.ceil(duration_seconds / chunk_seconds))


def chunk_url(
    base_url: str, video_id: str, bitrate_kbps: float, index: int, ext: str
) -> str:
    """Deterministic chunk URL layout shared by all writers."""
    return (
        f"{base_url.rstrip('/')}/{video_id}/"
        f"{int(round(bitrate_kbps))}k/seg{index:05d}{ext}"
    )


class ManifestWriter(abc.ABC):
    """Renders a master manifest for one video + ladder."""

    #: Protocol this writer encapsulates for.
    protocol: Protocol
    #: Manifest filename extension including the dot (Table 1).
    extension: str
    #: Chunk/media-segment filename extension.
    segment_extension: str

    def __init__(self, chunk_duration_seconds: float = 6.0) -> None:
        if chunk_duration_seconds <= 0:
            raise ManifestError("chunk duration must be positive")
        self.chunk_duration_seconds = chunk_duration_seconds

    @abc.abstractmethod
    def render(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> str:
        """Render the manifest document as text."""

    def manifest_url(self, video: Video, base_url: str) -> str:
        """URL at which this manifest would be published.

        The path layout matches the sample URLs of Table 1 — the
        manifest extension is the last path component's suffix, which is
        what the protocol detector keys on.
        """
        return (
            f"{base_url.rstrip('/')}/{video.video_id}/"
            f"master{self.extension}"
        )

    def segment_urls(
        self, video: Video, rendition: Rendition, base_url: str
    ) -> List[str]:
        n = chunk_count(video.duration_seconds, self.chunk_duration_seconds)
        return [
            chunk_url(
                base_url,
                video.video_id,
                rendition.bitrate_kbps,
                i,
                self.segment_extension,
            )
            for i in range(n)
        ]


class ManifestParser(abc.ABC):
    """Parses one protocol's manifest text back into a ManifestInfo."""

    protocol: Protocol

    @abc.abstractmethod
    def parse(self, text: str) -> ManifestInfo:
        """Parse manifest text; raise ManifestParseError when invalid."""


def require_prefix(text: str, prefix: str, what: str) -> None:
    """Validate a document magic prefix, raising ManifestParseError."""
    from repro.errors import ManifestParseError

    if not text.lstrip().startswith(prefix):
        raise ManifestParseError(
            f"{what} must start with {prefix!r}; got {text.lstrip()[:40]!r}"
        )
