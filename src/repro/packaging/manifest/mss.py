"""Microsoft Smooth Streaming manifests (.ism/.isml) — ISM subset.

Smooth Streaming serves a single ``SmoothStreamingMedia`` XML document
listing ``StreamIndex`` elements (video, audio) whose ``QualityLevel``
children carry rendition bitrates; segment timing uses 100-ns ticks.
Live presentations use the ``.isml`` extension (Table 1).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.constants import ContentType, Protocol
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Video
from repro.errors import ManifestParseError
from repro.packaging.manifest.base import (
    ManifestInfo,
    ManifestParser,
    ManifestWriter,
    chunk_count,
)

#: Smooth Streaming expresses durations in 100-nanosecond ticks.
TICKS_PER_SECOND = 10_000_000


class MSSWriter(ManifestWriter):
    """Renders a SmoothStreamingMedia manifest."""

    protocol = Protocol.MSS
    extension = ".ism"
    segment_extension = ""  # MSS addresses fragments by start time

    def manifest_url(self, video: Video, base_url: str) -> str:
        """MSS publishes `<name>.ism/manifest`, as in Table 1's sample."""
        ext = (
            ".isml"
            if video.content_type is ContentType.LIVE
            else self.extension
        )
        return f"{base_url.rstrip('/')}/{video.video_id}{ext}/manifest"

    def render(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> str:
        duration_ticks = int(video.duration_seconds * TICKS_PER_SECOND)
        chunk_ticks = int(self.chunk_duration_seconds * TICKS_PER_SECOND)
        n = chunk_count(video.duration_seconds, self.chunk_duration_seconds)
        root = ET.Element(
            "SmoothStreamingMedia",
            {
                "MajorVersion": "2",
                "MinorVersion": "2",
                "Duration": str(duration_ticks),
                "TimeScale": str(TICKS_PER_SECOND),
            },
        )
        video_index = ET.SubElement(
            root,
            "StreamIndex",
            {
                "Type": "video",
                "Chunks": str(n),
                "QualityLevels": str(len(ladder)),
                "Url": (
                    "QualityLevels({bitrate})/Fragments(video={start time})"
                ),
                "Name": video.video_id,
            },
        )
        for idx, rendition in enumerate(ladder):
            ET.SubElement(
                video_index,
                "QualityLevel",
                {
                    "Index": str(idx),
                    "Bitrate": str(int(rendition.bitrate_kbps * 1000)),
                    "MaxWidth": str(rendition.width),
                    "MaxHeight": str(rendition.height),
                    "FourCC": "H264",
                },
            )
        for i in range(n):
            ET.SubElement(
                video_index,
                "c",
                {"n": str(i), "d": str(chunk_ticks)},
            )
        audio_index = ET.SubElement(
            root,
            "StreamIndex",
            {
                "Type": "audio",
                "QualityLevels": "1",
                "Url": (
                    "QualityLevels({bitrate})/Fragments(audio={start time})"
                ),
                "Name": "audio",
            },
        )
        ET.SubElement(
            audio_index,
            "QualityLevel",
            {
                "Index": "0",
                "Bitrate": str(int(ladder[0].audio_bitrate_kbps * 1000)),
                "FourCC": "AACL",
            },
        )
        header = '<?xml version="1.0" encoding="UTF-8"?>\n'
        return header + ET.tostring(root, encoding="unicode") + "\n"


class MSSParser(ManifestParser):
    """Parses SmoothStreamingMedia manifests."""

    protocol = Protocol.MSS

    def parse(self, text: str) -> ManifestInfo:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ManifestParseError(f"ISM is not well-formed XML: {exc}")
        if root.tag != "SmoothStreamingMedia":
            raise ManifestParseError(
                f"root element is {root.tag!r}, not SmoothStreamingMedia"
            )
        timescale = float(root.get("TimeScale", str(TICKS_PER_SECOND)))
        bitrates: List[float] = []
        audio_bitrates: List[float] = []
        chunk_duration = 0.0
        video_id = "unknown"
        chunk_urls: List[str] = []
        for index in root.findall("StreamIndex"):
            stream_type = index.get("Type", "video")
            levels = index.findall("QualityLevel")
            for level in levels:
                bitrate = level.get("Bitrate")
                if bitrate is None:
                    raise ManifestParseError("QualityLevel missing Bitrate")
                kbps = float(bitrate) / 1000.0
                if stream_type == "audio":
                    audio_bitrates.append(kbps)
                else:
                    bitrates.append(kbps)
            if stream_type == "video":
                video_id = index.get("Name", video_id)
                fragments = index.findall("c")
                if fragments:
                    first = fragments[0].get("d")
                    if first is None:
                        raise ManifestParseError("fragment missing duration")
                    chunk_duration = float(first) / timescale
                url_template = index.get("Url", "")
                for level in levels:
                    for i, fragment in enumerate(fragments):
                        start = int(i * chunk_duration * timescale)
                        chunk_urls.append(
                            url_template.replace(
                                "{bitrate}", level.get("Bitrate", "0")
                            ).replace("{start time}", str(start))
                        )
        if not bitrates:
            raise ManifestParseError("ISM advertises no video renditions")
        if chunk_duration <= 0:
            raise ManifestParseError("ISM carries no fragment timing")
        return ManifestInfo(
            protocol=Protocol.MSS,
            video_id=video_id,
            bitrates_kbps=tuple(sorted(bitrates)),
            audio_bitrates_kbps=tuple(audio_bitrates),
            chunk_duration_seconds=chunk_duration,
            chunk_urls=tuple(chunk_urls),
        )
