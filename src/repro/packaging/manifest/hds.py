"""Adobe HTTP Dynamic Streaming manifests (.f4m) — F4M 2.0 subset.

HDS describes a presentation in an XML ``manifest`` document whose
``media`` elements carry per-rendition bitrates (in kbps, unlike the
bps used by DASH/MSS) and reference F4F fragment URLs through a
``bootstrapInfo`` box.  HDS was already in decline during the study
(19% of publishers by the last snapshot, Fig 2a).
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from typing import List

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Video
from repro.errors import ManifestParseError
from repro.packaging.manifest.base import (
    ManifestInfo,
    ManifestParser,
    ManifestWriter,
    chunk_count,
)

_F4M_NS = "http://ns.adobe.com/f4m/2.0"


class HDSWriter(ManifestWriter):
    """Renders an F4M manifest."""

    protocol = Protocol.HDS
    extension = ".f4m"
    segment_extension = ".f4f"

    def render(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> str:
        ET.register_namespace("", _F4M_NS)
        root = ET.Element(f"{{{_F4M_NS}}}manifest")
        media_id = ET.SubElement(root, f"{{{_F4M_NS}}}id")
        media_id.text = video.video_id
        duration = ET.SubElement(root, f"{{{_F4M_NS}}}duration")
        duration.text = f"{video.duration_seconds:.3f}"
        bootstrap = ET.SubElement(
            root,
            f"{{{_F4M_NS}}}bootstrapInfo",
            {"profile": "named", "id": "bootstrap1"},
        )
        bootstrap.text = base64.b64encode(
            f"abst:{video.video_id}:{self.chunk_duration_seconds:.3f}".encode()
        ).decode()
        for rendition in ladder:
            ET.SubElement(
                root,
                f"{{{_F4M_NS}}}media",
                {
                    "bitrate": str(int(round(rendition.bitrate_kbps))),
                    "width": str(rendition.width),
                    "height": str(rendition.height),
                    "url": (
                        f"{base_url.rstrip('/')}/{video.video_id}/"
                        f"{int(round(rendition.bitrate_kbps))}k/"
                    ),
                    "bootstrapInfoId": "bootstrap1",
                },
            )
        header = '<?xml version="1.0" encoding="UTF-8"?>\n'
        return header + ET.tostring(root, encoding="unicode") + "\n"


class HDSParser(ManifestParser):
    """Parses the F4M subset the writer produces."""

    protocol = Protocol.HDS

    def parse(self, text: str) -> ManifestInfo:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ManifestParseError(f"F4M is not well-formed XML: {exc}")
        if not root.tag.endswith("manifest"):
            raise ManifestParseError(
                f"root element is {root.tag!r}, not manifest"
            )
        ns = {"f": _F4M_NS}
        id_el = root.find("f:id", ns)
        video_id = id_el.text if id_el is not None and id_el.text else "unknown"
        duration_el = root.find("f:duration", ns)
        duration = (
            float(duration_el.text)
            if duration_el is not None and duration_el.text
            else 0.0
        )
        chunk_duration = self._chunk_duration_from_bootstrap(root, ns)
        bitrates: List[float] = []
        chunk_urls: List[str] = []
        for media in root.findall("f:media", ns):
            bitrate = media.get("bitrate")
            if bitrate is None:
                raise ManifestParseError("media element missing bitrate")
            kbps = float(bitrate)
            bitrates.append(kbps)
            url = media.get("url", "")
            if url and duration > 0 and chunk_duration:
                n = chunk_count(duration, chunk_duration)
                chunk_urls.extend(
                    f"{url}Seg1-Frag{i + 1}" for i in range(n)
                )
        if not bitrates:
            raise ManifestParseError("F4M advertises no media renditions")
        return ManifestInfo(
            protocol=Protocol.HDS,
            video_id=video_id,
            bitrates_kbps=tuple(sorted(bitrates)),
            chunk_duration_seconds=chunk_duration if chunk_duration > 0 else None,
            chunk_urls=tuple(chunk_urls),
        )

    @staticmethod
    def _chunk_duration_from_bootstrap(root, ns) -> float:
        bootstrap = root.find("f:bootstrapInfo", ns)
        if bootstrap is None or not bootstrap.text:
            return 0.0
        try:
            decoded = base64.b64decode(bootstrap.text.strip()).decode()
        except ValueError as exc:
            # binascii.Error (bad base64) and UnicodeDecodeError (bytes
            # that aren't text) are both ValueError subclasses.
            raise ManifestParseError(
                f"bad bootstrapInfo payload: {exc}"
            ) from exc
        parts = decoded.split(":")
        if len(parts) != 3 or parts[0] != "abst":
            raise ManifestParseError(
                f"unrecognized bootstrapInfo {decoded!r}"
            )
        return float(parts[2])
