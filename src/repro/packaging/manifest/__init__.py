"""Manifest writers, parsers, and protocol detection (Table 1).

One writer/parser pair per HTTP adaptive-streaming protocol.  Use
:func:`manifest_writer_for` / :func:`parser_for` to obtain them by
:class:`~repro.constants.Protocol`.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.constants import Protocol
from repro.errors import ManifestError
from repro.packaging.manifest.base import (
    ManifestInfo,
    ManifestParser,
    ManifestWriter,
)
from repro.packaging.manifest.dash import DASHParser, DASHWriter
from repro.packaging.manifest.detect import (
    detect_protocol,
    detect_protocol_or_none,
    extension_for,
    sample_manifest_url,
)
from repro.packaging.manifest.hds import HDSParser, HDSWriter
from repro.packaging.manifest.hls import HLSParser, HLSWriter
from repro.packaging.manifest.mss import MSSParser, MSSWriter

_WRITERS: Dict[Protocol, Type[ManifestWriter]] = {
    Protocol.HLS: HLSWriter,
    Protocol.DASH: DASHWriter,
    Protocol.MSS: MSSWriter,
    Protocol.HDS: HDSWriter,
}

_PARSERS: Dict[Protocol, Type[ManifestParser]] = {
    Protocol.HLS: HLSParser,
    Protocol.DASH: DASHParser,
    Protocol.MSS: MSSParser,
    Protocol.HDS: HDSParser,
}


def manifest_writer_for(
    protocol: Protocol, chunk_duration_seconds: float = 6.0
) -> ManifestWriter:
    """Instantiate the writer for an HTTP adaptive protocol."""
    try:
        writer_cls = _WRITERS[protocol]
    except KeyError:
        raise ManifestError(
            f"{protocol} has no manifest format (HTTP adaptive only)"
        ) from None
    return writer_cls(chunk_duration_seconds=chunk_duration_seconds)


def parser_for(protocol: Protocol) -> ManifestParser:
    """Instantiate the parser for an HTTP adaptive protocol."""
    try:
        parser_cls = _PARSERS[protocol]
    except KeyError:
        raise ManifestError(
            f"{protocol} has no manifest format (HTTP adaptive only)"
        ) from None
    return parser_cls()


__all__ = [
    "ManifestInfo",
    "ManifestParser",
    "ManifestWriter",
    "HLSWriter",
    "HLSParser",
    "DASHWriter",
    "DASHParser",
    "MSSWriter",
    "MSSParser",
    "HDSWriter",
    "HDSParser",
    "detect_protocol",
    "detect_protocol_or_none",
    "extension_for",
    "sample_manifest_url",
    "manifest_writer_for",
    "parser_for",
]
