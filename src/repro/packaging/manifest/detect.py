"""Streaming-protocol inference from view URLs (Table 1, §3).

The paper infers each view's streaming protocol from the manifest file
extension in the (anonymized) URL: ``.m3u8``/``.m3u`` for HLS, ``.mpd``
for DASH, ``.ism``/``.isml`` for SmoothStreaming, ``.f4m`` for HDS.
Two exceptions (§3, footnote 5): RTMP is detected from the URL scheme,
and progressive download from media-file extensions such as ``.mp4``.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import urlparse

from repro.constants import (
    MANIFEST_EXTENSIONS,
    PROGRESSIVE_EXTENSIONS,
    Protocol,
)
from repro.errors import ProtocolDetectionError

#: extension (lowercase, with dot) -> protocol, built from Table 1.
_EXTENSION_TABLE = {
    ext: protocol
    for protocol, extensions in MANIFEST_EXTENSIONS.items()
    for ext in extensions
}
_EXTENSION_TABLE.update(
    {ext: Protocol.PROGRESSIVE for ext in PROGRESSIVE_EXTENSIONS}
)


def detect_protocol(url: str) -> Protocol:
    """Classify a view URL into a streaming protocol.

    Raises :class:`ProtocolDetectionError` for URLs that match no known
    scheme or extension; callers that want to tolerate unknowns should
    use :func:`detect_protocol_or_none`.
    """
    protocol = detect_protocol_or_none(url)
    if protocol is None:
        raise ProtocolDetectionError(
            f"cannot infer streaming protocol from URL {url!r}"
        )
    return protocol


def detect_protocol_or_none(url: str) -> Optional[Protocol]:
    """Like :func:`detect_protocol` but returns None for unknown URLs."""
    if not url:
        return None
    parsed = urlparse(url)
    scheme = parsed.scheme.lower()
    if scheme in ("rtmp", "rtmps", "rtmpe", "rtmpt"):
        return Protocol.RTMP
    path = parsed.path.lower()
    # MSS publishes `<name>.ism/manifest`; the manifest extension is not
    # the final suffix, so check every path component (Table 1 sample).
    for component in path.split("/"):
        ext = _suffix(component)
        if ext and ext in _EXTENSION_TABLE:
            return _EXTENSION_TABLE[ext]
    return None


def _suffix(component: str) -> Optional[str]:
    dot = component.rfind(".")
    if dot <= 0:
        return None
    return component[dot:]


def extension_for(protocol: Protocol) -> str:
    """Canonical manifest extension for a protocol (inverse of Table 1)."""
    if protocol is Protocol.RTMP:
        raise ProtocolDetectionError("RTMP is scheme-based, not extension-based")
    if protocol is Protocol.PROGRESSIVE:
        return PROGRESSIVE_EXTENSIONS[0]
    return MANIFEST_EXTENSIONS[protocol][0]


def sample_manifest_url(
    protocol: Protocol, video_id: str, cdn_hostname: str
) -> str:
    """Mint a manifest URL in the shape of the paper's Table 1 samples.

    The synthetic telemetry generator uses this so that the analysis
    side must genuinely run extension-based detection rather than being
    handed the protocol.
    """
    if protocol is Protocol.RTMP:
        return f"rtmp://{cdn_hostname}/live/{video_id}"
    if protocol is Protocol.MSS:
        return f"http://{cdn_hostname}/{video_id}.ism/manifest"
    ext = extension_for(protocol)
    return f"http://{cdn_hostname}/{video_id}/master{ext}"
