"""Chunking: splitting each rendition into fixed-duration pieces.

§2: "each encoded bitrate of the video is then broken into chunks (a
chunk is a fixed playback-duration portion of the video) for adaptive
streaming"; some publishers instead expose byte-range addressing where
clients request arbitrary byte ranges of a rendition.  Both schemes are
modeled here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.entities.ladder import Rendition
from repro.entities.video import Video
from repro.errors import PackagingError
from repro.units import kbps_to_bytes_per_second


@dataclass(frozen=True)
class Chunk:
    """One chunk of one rendition."""

    video_id: str
    bitrate_kbps: float
    index: int
    start_seconds: float
    duration_seconds: float
    size_bytes: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PackagingError("chunk index must be non-negative")
        if self.duration_seconds <= 0:
            raise PackagingError("chunk duration must be positive")
        if self.size_bytes < 0:
            raise PackagingError("chunk size must be non-negative")

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.duration_seconds


class Chunker:
    """Splits renditions into chunks of a fixed playback duration."""

    def __init__(self, chunk_duration_seconds: float = 6.0) -> None:
        if chunk_duration_seconds <= 0:
            raise PackagingError("chunk duration must be positive")
        self.chunk_duration_seconds = chunk_duration_seconds

    def chunk_count(self, video: Video) -> int:
        return int(
            math.ceil(video.duration_seconds / self.chunk_duration_seconds)
        )

    def chunks(self, video: Video, rendition: Rendition) -> Iterator[Chunk]:
        """Yield the chunk sequence for one rendition of a video.

        The final chunk is truncated to the video's end; chunk sizes
        follow the constant-bitrate approximation (bitrate x duration).
        """
        bytes_per_second = kbps_to_bytes_per_second(rendition.bitrate_kbps)
        n = self.chunk_count(video)
        for index in range(n):
            start = index * self.chunk_duration_seconds
            duration = min(
                self.chunk_duration_seconds,
                video.duration_seconds - start,
            )
            yield Chunk(
                video_id=video.video_id,
                bitrate_kbps=rendition.bitrate_kbps,
                index=index,
                start_seconds=start,
                duration_seconds=duration,
                size_bytes=bytes_per_second * duration,
            )

    def total_bytes(self, video: Video, rendition: Rendition) -> float:
        """Sum of chunk sizes; equals bitrate x full duration."""
        return sum(c.size_bytes for c in self.chunks(video, rendition))


class ByteRangeIndex:
    """Byte-range addressing over a single-file rendition.

    Publishers that support byte-range requests (§2) store one file per
    rendition; the index maps playback time to byte offsets so a client
    can fetch an arbitrary interval.
    """

    def __init__(self, video: Video, rendition: Rendition) -> None:
        self.video = video
        self.rendition = rendition
        self._bytes_per_second = kbps_to_bytes_per_second(
            rendition.bitrate_kbps
        )

    @property
    def total_bytes(self) -> float:
        return self._bytes_per_second * self.video.duration_seconds

    def byte_range(
        self, start_seconds: float, end_seconds: float
    ) -> Tuple[int, int]:
        """Inclusive-exclusive byte range covering a playback interval."""
        if not 0 <= start_seconds < end_seconds:
            raise PackagingError(
                f"bad interval [{start_seconds}, {end_seconds})"
            )
        if end_seconds > self.video.duration_seconds + 1e-9:
            raise PackagingError(
                f"interval end {end_seconds}s exceeds video duration "
                f"{self.video.duration_seconds}s"
            )
        start_byte = int(start_seconds * self._bytes_per_second)
        end_byte = int(math.ceil(end_seconds * self._bytes_per_second))
        return start_byte, end_byte

    def time_of_byte(self, offset: int) -> float:
        """Playback time corresponding to a byte offset."""
        if offset < 0 or offset > self.total_bytes:
            raise PackagingError(f"byte offset {offset} out of range")
        return offset / self._bytes_per_second
