"""Transcoding model: master file -> bitrate ladder of renditions.

§2: "the first packaging step transcodes the master video file into
multiple bitrates of encodings such as H.264, H.265 or VP9".  We model
the encoder's outputs (rendition sizes) and its costs (CPU-seconds and
added latency) because §4.1 notes packaging time adds delay to live
distribution and §5's packaging complexity is proportional to the
resources this stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video
from repro.errors import PackagingError
from repro.units import rendition_bytes

#: Relative CPU cost of encoding one output pixel-second, per codec.
#: H.265 and VP9 trade ~2.5-4x the compute for better compression.
_CODEC_COMPUTE_FACTOR: Dict[str, float] = {
    "h264": 1.0,
    "h265": 3.5,
    "vp9": 2.8,
}

#: Bitrate an x264-class encoder sustains per unit compute, used to
#: translate pixel work into CPU-seconds.  Arbitrary but fixed units:
#: one reference core encodes 1080p30 H.264 in ~1x real time.
_REFERENCE_PIXEL_RATE = 1920 * 1080 * 30.0


@dataclass(frozen=True)
class EncodeJob:
    """A request to encode one video into one ladder."""

    video: Video
    ladder: BitrateLadder
    frames_per_second: float = 30.0

    def __post_init__(self) -> None:
        if self.frames_per_second <= 0:
            raise PackagingError("frame rate must be positive")


@dataclass(frozen=True)
class EncodeResult:
    """Outputs and accounting for one encode job."""

    job: EncodeJob
    output_bytes: float
    cpu_seconds: float
    per_rendition_bytes: Tuple[float, ...]

    @property
    def realtime_factor(self) -> float:
        """CPU-seconds spent per second of source content.

        >1 means the job cannot keep up with a live stream on one core;
        live packaging then needs parallelism or adds latency (§4.1).
        """
        return self.cpu_seconds / self.job.video.duration_seconds


class Encoder:
    """Deterministic cost/size model of a transcoding farm.

    Parameters
    ----------
    cores:
        Parallel encode slots; rendition jobs are spread across them
        when estimating wall-clock latency for live content.
    """

    def __init__(self, cores: int = 8) -> None:
        if cores < 1:
            raise PackagingError("encoder needs at least one core")
        self.cores = cores

    def encode(self, job: EncodeJob) -> EncodeResult:
        """Run the cost model for one job."""
        per_rendition = tuple(
            rendition_bytes(r.bitrate_kbps, job.video.duration_seconds)
            for r in job.ladder
        )
        cpu = sum(
            self._rendition_cpu_seconds(r, job) for r in job.ladder
        )
        return EncodeResult(
            job=job,
            output_bytes=sum(per_rendition),
            cpu_seconds=cpu,
            per_rendition_bytes=per_rendition,
        )

    def live_latency_seconds(
        self, job: EncodeJob, chunk_duration_seconds: float
    ) -> float:
        """Added end-to-end latency for live content (§4.1).

        A live packager must finish encoding a chunk before publishing
        it: latency is one chunk duration plus the per-chunk encode time
        on the available cores.
        """
        if chunk_duration_seconds <= 0:
            raise PackagingError("chunk duration must be positive")
        per_second_cpu = sum(
            self._rendition_cpu_seconds(r, job) for r in job.ladder
        ) / job.video.duration_seconds
        encode_time = chunk_duration_seconds * per_second_cpu / self.cores
        return chunk_duration_seconds + encode_time

    def _rendition_cpu_seconds(
        self, rendition: Rendition, job: EncodeJob
    ) -> float:
        factor = _CODEC_COMPUTE_FACTOR.get(rendition.codec)
        if factor is None:
            raise PackagingError(f"unknown codec {rendition.codec!r}")
        pixel_rate = (
            rendition.width * rendition.height * job.frames_per_second
        )
        return (
            factor
            * pixel_rate
            / _REFERENCE_PIXEL_RATE
            * job.video.duration_seconds
        )
