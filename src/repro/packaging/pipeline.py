"""The end-to-end packaging pipeline of Fig 1.

Encode -> chunk -> (optional DRM) -> encapsulate per protocol ->
manifests, ready to push to CDN origins.  A publisher supporting ``k``
protocols runs this once per protocol per title — exactly the
duplication the §5 protocol-titles complexity metric counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import Protocol
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Video
from repro.errors import PackagingError
from repro.packaging.chunker import Chunk, Chunker
from repro.packaging.drm import DrmScheme, DrmWrapper
from repro.packaging.encoder import EncodeJob, EncodeResult, Encoder
from repro.packaging.manifest import manifest_writer_for


@dataclass
class PackagedAsset:
    """Everything produced by packaging one title for one protocol."""

    video: Video
    protocol: Protocol
    ladder: BitrateLadder
    manifest_url: str
    manifest_text: str
    chunks: Tuple[Chunk, ...]
    drm_scheme: DrmScheme = DrmScheme.NONE
    media_playlists: Tuple[str, ...] = ()

    @property
    def total_bytes(self) -> float:
        """Origin storage footprint of this packaging (all renditions)."""
        return sum(chunk.size_bytes for chunk in self.chunks)

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)


class PackagingPipeline:
    """Packages titles for a set of streaming protocols.

    Parameters
    ----------
    protocols:
        Protocols to encapsulate for; must be HTTP adaptive.
    chunk_duration_seconds:
        Playback duration per chunk (publishers commonly use 2-10 s).
    drm_scheme:
        Optional DRM applied across all protocols.
    encoder:
        Cost model for the transcode stage; a default farm when omitted.
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        chunk_duration_seconds: float = 6.0,
        drm_scheme: DrmScheme = DrmScheme.NONE,
        encoder: Optional[Encoder] = None,
    ) -> None:
        if not protocols:
            raise PackagingError("pipeline needs at least one protocol")
        for protocol in protocols:
            if not protocol.is_http_adaptive:
                raise PackagingError(
                    f"{protocol} is not an HTTP adaptive protocol"
                )
        if len(set(protocols)) != len(protocols):
            raise PackagingError("duplicate protocol in pipeline")
        self.protocols = tuple(protocols)
        self.chunk_duration_seconds = chunk_duration_seconds
        self.drm_scheme = drm_scheme
        self.encoder = encoder or Encoder()
        self.chunker = Chunker(chunk_duration_seconds)

    def package(
        self, video: Video, ladder: BitrateLadder, base_url: str
    ) -> List[PackagedAsset]:
        """Package one title for every configured protocol."""
        encode_result = self.encode(video, ladder)
        assets: List[PackagedAsset] = []
        for protocol in self.protocols:
            assets.append(
                self._encapsulate(video, ladder, base_url, protocol)
            )
        # Sanity: per-protocol chunk bytes must equal the encode output.
        for asset in assets:
            if abs(asset.total_bytes - encode_result.output_bytes) > 1.0:
                raise PackagingError(
                    "chunk accounting diverged from encoder output: "
                    f"{asset.total_bytes} vs {encode_result.output_bytes}"
                )
        return assets

    def encode(self, video: Video, ladder: BitrateLadder) -> EncodeResult:
        """Run (only) the transcode stage; exposed for cost studies."""
        return self.encoder.encode(EncodeJob(video=video, ladder=ladder))

    def packaging_overhead(
        self, video: Video, ladder: BitrateLadder
    ) -> Dict[str, float]:
        """Cost summary for §5-style packaging accounting.

        Returns the storage bytes (protocol count x encoded bytes, since
        every protocol stores its own encapsulation), encode CPU-seconds
        and, for live content, the added packaging latency.
        """
        result = self.encode(video, ladder)
        return {
            "storage_bytes": result.output_bytes * len(self.protocols),
            "cpu_seconds": result.cpu_seconds,
            "live_latency_seconds": self.encoder.live_latency_seconds(
                result.job, self.chunk_duration_seconds
            ),
        }

    def _encapsulate(
        self,
        video: Video,
        ladder: BitrateLadder,
        base_url: str,
        protocol: Protocol,
    ) -> PackagedAsset:
        writer = manifest_writer_for(
            protocol, chunk_duration_seconds=self.chunk_duration_seconds
        )
        chunks: List[Chunk] = []
        for rendition in ladder:
            chunks.extend(self.chunker.chunks(video, rendition))
        media_playlists: Tuple[str, ...] = ()
        if protocol is Protocol.HLS:
            media_playlists = tuple(
                writer.render_media(video, rendition, base_url)
                for rendition in ladder
            )
        return PackagedAsset(
            video=video,
            protocol=protocol,
            ladder=ladder,
            manifest_url=writer.manifest_url(video, base_url),
            manifest_text=writer.render(video, ladder, base_url),
            chunks=tuple(chunks),
            drm_scheme=self.drm_scheme,
            media_playlists=media_playlists,
        )
