"""Packaging: preparing content for adaptive streaming (§2).

Encoding into a bitrate ladder, chunking, optional DRM, encapsulation
per streaming protocol, and manifest generation.  The manifest
sub-package renders and parses real manifest documents for HLS, DASH,
SmoothStreaming, and HDS, and implements the Table 1 URL-extension
protocol detector that the paper's methodology relies on.
"""

from repro.packaging.encoder import Encoder, EncodeJob, EncodeResult
from repro.packaging.chunker import Chunker, Chunk, ByteRangeIndex
from repro.packaging.drm import DrmScheme, DrmWrapper
from repro.packaging.pipeline import PackagingPipeline, PackagedAsset
from repro.packaging.manifest import (
    detect_protocol,
    manifest_writer_for,
    parser_for,
)

__all__ = [
    "Encoder",
    "EncodeJob",
    "EncodeResult",
    "Chunker",
    "Chunk",
    "ByteRangeIndex",
    "DrmScheme",
    "DrmWrapper",
    "PackagingPipeline",
    "PackagedAsset",
    "detect_protocol",
    "manifest_writer_for",
    "parser_for",
]
