"""Digital Rights Management wrapper.

§2: "publishers optionally use DRM software to encrypt the video so
that only authenticated users can access it" — orthogonal to transport
TLS.  The paper's dataset lacked DRM analytics (§3 limitations), so no
analysis depends on this module; it exists so the packaging pipeline is
complete end to end and so tests can exercise the encrypt/authorize
path.  The "encryption" here is a keyed XOR placeholder — this is a
simulation of the *pipeline stage*, not a cryptosystem.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import FrozenSet

from repro.errors import PackagingError


class DrmScheme(enum.Enum):
    """DRM schemes commonly attached to each streaming protocol."""

    NONE = "none"
    FAIRPLAY = "fairplay"  # Apple / HLS
    WIDEVINE = "widevine"  # Google / DASH
    PLAYREADY = "playready"  # Microsoft / MSS and DASH


@dataclass(frozen=True)
class DrmLicense:
    """A playback license bound to a video and a device class."""

    video_id: str
    scheme: DrmScheme
    device_classes: FrozenSet[str]
    key_id: str

    def authorizes(self, video_id: str, device_class: str) -> bool:
        return (
            video_id == self.video_id and device_class in self.device_classes
        )


class DrmWrapper:
    """Encrypts chunk payloads and issues licenses for one scheme."""

    def __init__(self, scheme: DrmScheme, secret: str = "repro-drm") -> None:
        if scheme is DrmScheme.NONE:
            raise PackagingError("use no wrapper at all for unencrypted content")
        self.scheme = scheme
        self._secret = secret

    def content_key(self, video_id: str) -> bytes:
        """Derive the per-title content key."""
        material = f"{self.scheme.value}:{self._secret}:{video_id}"
        return hashlib.sha256(material.encode()).digest()

    def encrypt(self, video_id: str, payload: bytes) -> bytes:
        """Keyed-XOR placeholder encryption of a chunk payload."""
        key = self.content_key(video_id)
        return bytes(
            byte ^ key[i % len(key)] for i, byte in enumerate(payload)
        )

    def decrypt(self, video_id: str, payload: bytes) -> bytes:
        """XOR is an involution, so decryption mirrors encryption."""
        return self.encrypt(video_id, payload)

    def issue_license(
        self, video_id: str, device_classes: FrozenSet[str]
    ) -> DrmLicense:
        if not device_classes:
            raise PackagingError("license must authorize some device class")
        key_id = hashlib.sha256(self.content_key(video_id)).hexdigest()[:16]
        return DrmLicense(
            video_id=video_id,
            scheme=self.scheme,
            device_classes=device_classes,
            key_id=key_id,
        )
