"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ManifestError(ReproError):
    """A manifest could not be rendered or parsed."""


class ManifestParseError(ManifestError):
    """A manifest document is syntactically or semantically invalid."""


class ProtocolDetectionError(ReproError):
    """A URL could not be mapped to a streaming protocol (Table 1)."""


class PackagingError(ReproError):
    """The packaging pipeline was misconfigured or failed."""


class LadderError(ReproError):
    """A bitrate ladder violates its invariants."""


class DatasetError(ReproError):
    """A telemetry dataset could not be loaded, saved, or validated."""


class CalibrationError(ReproError):
    """Ecosystem-generator calibration parameters are inconsistent."""


class DeliveryError(ReproError):
    """CDN/origin/edge delivery model failure."""


class PlaybackError(ReproError):
    """Playback-session simulation failure."""


class AnalysisError(ReproError):
    """An analysis was run against data that cannot support it."""


class IngestError(DatasetError):
    """The fault-tolerant ingestion pipeline was misconfigured."""


class TestkitError(ReproError):
    """The scenario/oracle harness was misconfigured."""

    # The Test* name would otherwise be collected by pytest when
    # imported into a test module's namespace.
    __test__ = False


class OracleFailure(TestkitError):
    """An oracle's equivalence or metamorphic relation was violated.

    Raised by :class:`repro.testkit.oracles.Check` at the first failing
    elementary assertion; the message names the scenario-independent
    inequality found so a report line is actionable on its own.
    """


class ParallelError(ReproError):
    """The parallel execution layer was misused (bad jobs/chunking)."""


class ChaosError(ReproError):
    """The chaos plane was misconfigured (bad plan, layer, or window)."""


class ContractViolation(ChaosError):
    """A degradation contract's graceful-degradation invariant failed.

    Raised at the first failing elementary assertion; the message names
    the violated invariant so a degradation-report line is actionable
    on its own.
    """


class TransportError(ReproError):
    """A (possibly transient) transport-level delivery failure."""


class ResilienceError(ReproError):
    """Base class for resilience-primitive failures."""


class RetryExhaustedError(ResilienceError):
    """All retry attempts failed; ``last_error`` holds the final cause."""

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "Exception | None" = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open and rejected the call without trying."""


class AllCdnsFailedError(DeliveryError):
    """Every eligible CDN failed or was circuit-open.

    ``attribution`` carries one entry per CDN tried or skipped, in the
    order the fetcher considered them, so the caller (and the incident
    report) can see *why* each CDN was unavailable rather than only the
    last attempt's error.  Entries are
    :class:`repro.delivery.multicdn.CdnAttempt` instances.
    """

    def __init__(self, message: str, attribution: "tuple" = ()) -> None:
        super().__init__(message)
        self.attribution = tuple(attribution)


class DeadlineExceededError(ResilienceError):
    """An operation ran past its deadline."""
