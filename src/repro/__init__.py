"""repro: a reproduction of "Understanding Video Management Planes" (IMC 2018).

The package has three layers:

* **Substrates** — ``packaging`` (encode/chunk/DRM/manifests),
  ``delivery`` (origins, edges, multi-CDN, anycast, network paths),
  ``playback`` (ABR + session simulation), ``telemetry`` (the
  Conviva-like measurement platform), ``entities`` and ``stats``.
* **Synthesis** — ``synthesis``: a generative model of the video
  ecosystem calibrated to the paper's reported statistics, replacing
  the proprietary multi-publisher dataset.
* **Core** — ``core``: the paper's analyses; every table and figure has
  a regenerating function, indexed in ``repro.figures``.

Quickstart::

    from repro import generate_default_dataset
    from repro.core import prevalence

    result = generate_default_dataset(snapshot_limit=12)
    shares = prevalence.protocol_view_hour_shares(result.dataset)
"""

from repro.constants import (
    ConnectionType,
    ContentType,
    Platform,
    Protocol,
    SyndicationRole,
)
from repro.synthesis import (
    EcosystemConfig,
    EcosystemGenerator,
    EcosystemResult,
    generate_default_dataset,
)
from repro.telemetry import Dataset, ViewRecord

__version__ = "1.0.0"

__all__ = [
    "ConnectionType",
    "ContentType",
    "Platform",
    "Protocol",
    "SyndicationRole",
    "EcosystemConfig",
    "EcosystemGenerator",
    "EcosystemResult",
    "generate_default_dataset",
    "Dataset",
    "ViewRecord",
    "__version__",
]
