"""Command-line interface.

::

    repro generate --out dataset.jsonl.gz [--seed N] [--snapshots K]
    repro figure F2a [--dataset dataset.jsonl.gz] [--seed N]
    repro figures                # list ids
    repro summary [--seed N]     # §4.4 roll-up

Figures that need generator ground truth (catalogue sizes, the case
study) regenerate the ecosystem from the seed; pure-dataset figures can
run against a saved dataset file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import figures
from repro.core.report import format_table
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator, EcosystemResult


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding Video Management Planes' "
            "(IMC 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    generate.add_argument("--out", required=True, help="output .jsonl[.gz]")
    _add_generator_args(generate)

    fig = sub.add_parser("figure", help="regenerate one figure/table")
    fig.add_argument("figure_id", help="e.g. F2a, F13, T1 (see `figures`)")
    _add_generator_args(fig)

    sub.add_parser("figures", help="list known figure ids")

    summary = sub.add_parser("summary", help="print the §4.4 roll-up")
    _add_generator_args(summary)

    experiments = sub.add_parser(
        "experiments", help="paper-vs-measured verification report"
    )
    _add_generator_args(experiments)

    return parser


def _add_generator_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--snapshots",
        type=int,
        default=0,
        help="0 = full 59-snapshot schedule; >=2 thins it for speed",
    )
    parser.add_argument(
        "--publishers", type=int, default=110, help="population size"
    )


def _generate(args: argparse.Namespace) -> EcosystemResult:
    config = EcosystemConfig(
        seed=args.seed,
        snapshot_limit=args.snapshots,
        n_publishers=args.publishers,
    )
    return EcosystemGenerator(config).generate()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "figures":
        for figure_id in figures.figure_ids():
            print(f"{figure_id:6s} {figures.describe(figure_id)}")
        return 0

    if args.command == "generate":
        result = _generate(args)
        result.dataset.save(args.out)
        print(
            f"wrote {len(result.dataset)} records "
            f"({len(result.dataset.snapshots())} snapshots, "
            f"{len(result.dataset.publishers())} publishers) to {args.out}"
        )
        return 0

    if args.command == "figure":
        result = _generate(args)
        rows = figures.run_figure(args.figure_id, result)
        print(f"== {args.figure_id}: {figures.describe(args.figure_id)} ==")
        print(format_table(rows))
        return 0

    if args.command == "summary":
        result = _generate(args)
        rows = figures.run_figure("S44", result)
        print(format_table(rows))
        return 0

    if args.command == "experiments":
        from repro.experiments import build_report, fraction_within_band

        result = _generate(args)
        comparisons = build_report(result)
        print(format_table([c.row() for c in comparisons]))
        within = fraction_within_band(comparisons)
        print(
            f"\n{within:.0%} of {len(comparisons)} comparisons inside "
            "their acceptance band"
        )
        return 0 if within > 0.8 else 1

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
