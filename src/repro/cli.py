"""Command-line interface.

::

    repro generate --out dataset.jsonl.gz [--seed N] [--snapshots K]
    repro figure F2a [--dataset dataset.jsonl.gz] [--seed N]
    repro figures                # list ids
    repro summary [--seed N]     # §4.4 roll-up
    repro ingest --policy quarantine --fault-rate 0.2   # robustness demo
    repro metrics                # instrument taxonomy + snapshot
    repro lint [paths...]        # per-file replint rules (RPL00x)
    repro analyze [paths...]     # whole-program repgraph pass (RPL1xx)

Figures that need generator ground truth (catalogue sizes, the case
study) regenerate the ecosystem from the seed; pure-dataset figures can
run against a saved dataset file.

Every subcommand accepts ``--trace`` (print the span tree of the run)
and ``--metrics-out PATH`` (write the metrics snapshot as JSON); either
flag switches the :mod:`repro.obs` layer on for the process.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import figures, obs
from repro.core.report import format_table
from repro.errors import DatasetError, ParallelError
from repro.parallel import parse_jobs
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator, EcosystemResult
from repro.telemetry.backend import TelemetryBackend
from repro.telemetry.faults import FaultInjector, FaultMix
from repro.telemetry.ingest import ErrorPolicy, events_from_records


def _jobs_flag(value: str) -> int:
    """``--jobs`` argparse type: the shared validator, CLI-shaped.

    :func:`repro.parallel.parse_jobs` is the one typed gate for worker
    counts; argparse only renders :class:`argparse.ArgumentTypeError`
    messages nicely, so the :class:`~repro.errors.ParallelError` is
    re-raised in that shape (same message, exit code 2).
    """
    try:
        return parse_jobs(value)
    except ParallelError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_jobs_arg(
    parser: argparse.ArgumentParser,
    default: Optional[int] = 1,
    help_text: str = "worker processes (default: serial)",
) -> None:
    """The one ``--jobs`` flag every parallel subcommand shares."""
    parser.add_argument(
        "--jobs",
        type=_jobs_flag,
        default=default,
        metavar="N",
        help=help_text,
    )


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace",
        action="store_true",
        help="record spans and print the span tree after the command",
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics snapshot (and spans, with --trace) as JSON",
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log events to stderr",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding Video Management Planes' "
            "(IMC 2018)"
        ),
    )
    obs_parent = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate",
        help="generate a synthetic dataset and save it",
        parents=[obs_parent],
    )
    generate.add_argument("--out", required=True, help="output .jsonl[.gz]")
    _add_generator_args(generate)

    fig = sub.add_parser(
        "figure", help="regenerate one figure/table", parents=[obs_parent]
    )
    fig.add_argument("figure_id", help="e.g. F2a, F13, T1 (see `figures`)")
    _add_generator_args(fig)

    figs = sub.add_parser(
        "figures",
        help="list known figure ids, or run the whole suite (--run)",
        parents=[obs_parent],
    )
    figs.add_argument(
        "--run",
        action="store_true",
        help="regenerate every figure and print its table",
    )
    _add_generator_args(figs, jobs_default=None)

    summary = sub.add_parser(
        "summary", help="print the §4.4 roll-up", parents=[obs_parent]
    )
    _add_generator_args(summary)

    experiments = sub.add_parser(
        "experiments",
        help="paper-vs-measured verification report",
        parents=[obs_parent],
    )
    _add_generator_args(experiments)

    metrics = sub.add_parser(
        "metrics",
        help="dump the obs instrument taxonomy and current snapshot",
        parents=[obs_parent],
    )
    metrics.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="taxonomy output format (default: text)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="fault-injected event ingestion demo (robustness path)",
        parents=[obs_parent],
    )
    _add_generator_args(ingest)
    ingest.add_argument(
        "--policy",
        choices=[policy.value for policy in ErrorPolicy],
        default=ErrorPolicy.QUARANTINE.value,
        help="error policy for bad events (default: quarantine)",
    )
    ingest.add_argument(
        "--fault-rate",
        type=float,
        default=0.2,
        help="fraction of events corrupted by the injector (default: 0.2)",
    )
    ingest.add_argument(
        "--sessions",
        type=int,
        default=200,
        help="number of view sessions to replay as events (default: 200)",
    )
    ingest.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed for the fault injector RNG (default: 7)",
    )
    # The demo only needs a couple of snapshots' worth of sessions.
    ingest.set_defaults(snapshots=2)

    testkit = sub.add_parser(
        "testkit",
        help="scenario harness: differential + metamorphic oracle matrix",
        parents=[obs_parent],
    )
    testkit.add_argument(
        "action",
        choices=["run", "list"],
        help="run the oracle matrix, or list scenarios and oracles",
    )
    testkit.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario to run (repeatable; default: all registered)",
    )
    testkit.add_argument(
        "--oracle",
        action="append",
        dest="oracle_names",
        metavar="NAME",
        help="oracle to run (repeatable; default: all registered)",
    )
    testkit.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable oracle report on stdout",
    )
    testkit.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON oracle report to PATH",
    )
    _add_jobs_arg(
        testkit,
        help_text="worker processes for the oracle matrix "
        "(default: serial)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="chaos plane: fault plans, injectors, degradation contracts",
        parents=[obs_parent],
    )
    chaos.add_argument(
        "action",
        choices=["run", "list", "plan"],
        help=(
            "run the degradation contracts, list the scenario zoo, or "
            "print a scenario's fault plan as JSON"
        ),
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="chaos scenario to run (repeatable; implies a subset)",
    )
    chaos.add_argument(
        "--all",
        action="store_true",
        dest="run_all",
        help="run every scenario that declares a fault plan (default)",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable degradation report on stdout",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON degradation report to PATH",
    )

    analyze = sub.add_parser(
        "analyze",
        help=(
            "repgraph whole-program analysis: call graph + RNG/clock/"
            "purity dataflow (RPL1xx)"
        ),
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.replint] analysis_paths)",
    )
    analyze.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    analyze.add_argument(
        "--baseline",
        action="store_true",
        help="snapshot current findings into the analysis baseline, exit 0",
    )
    analyze.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the analysis baseline file",
    )
    analyze.add_argument(
        "--graph-out",
        default=None,
        metavar="PATH",
        help="also write the resolved call graph as JSON to PATH",
    )
    analyze.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the report (in the chosen format) to PATH",
    )
    analyze.add_argument(
        "--root",
        default=".",
        help="project root containing pyproject.toml (default: cwd)",
    )

    lint = sub.add_parser(
        "lint",
        help="replint static analysis: determinism/units/error hygiene",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.replint] paths)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="project root containing pyproject.toml (default: cwd)",
    )

    return parser


def _add_generator_args(
    parser: argparse.ArgumentParser, jobs_default: Optional[int] = 1
) -> None:
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--snapshots",
        type=int,
        default=0,
        help="0 = full 59-snapshot schedule; >=2 thins it for speed",
    )
    parser.add_argument(
        "--publishers", type=int, default=110, help="population size"
    )
    _add_jobs_arg(
        parser,
        default=jobs_default,
        help_text="worker processes for the pipeline (default: serial)",
    )


def _generate(args: argparse.Namespace) -> EcosystemResult:
    config = EcosystemConfig(
        seed=args.seed,
        snapshot_limit=args.snapshots,
        n_publishers=args.publishers,
    )
    return EcosystemGenerator(config).generate(jobs=args.jobs)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    trace = getattr(args, "trace", False)
    metrics_out = getattr(args, "metrics_out", None)
    log_json = getattr(args, "log_json", False)
    obs_on = bool(
        trace or metrics_out or log_json or args.command == "metrics"
    )
    if obs_on:
        obs.configure(
            enabled=True,
            seed=getattr(args, "seed", None),
            log_stream=sys.stderr if log_json else None,
        )
    try:
        code = _dispatch(args)
    finally:
        if obs_on:
            spans = obs.tracer().finished
            if trace and spans:
                print(obs.render_tree(spans), file=sys.stderr)
            if metrics_out:
                obs.write_snapshot(
                    metrics_out,
                    obs.metrics(),
                    spans=spans if trace else (),
                    meta={
                        "command": args.command,
                        "seed": getattr(args, "seed", None),
                    },
                )
                print(f"wrote metrics snapshot to {metrics_out}",
                      file=sys.stderr)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figures":
        # A --jobs value implies --run: listing ids needs no workers.
        if args.run or args.jobs is not None:
            config = EcosystemConfig(
                seed=args.seed,
                snapshot_limit=args.snapshots,
                n_publishers=args.publishers,
            )
            suite = figures.run_suite(
                config, jobs=args.jobs if args.jobs is not None else 1
            )
            for figure_id, rows in suite.items():
                print(
                    f"== {figure_id}: {figures.describe(figure_id)} =="
                )
                print(format_table(rows))
            return 0
        for figure_id in figures.figure_ids():
            print(f"{figure_id:6s} {figures.describe(figure_id)}")
        return 0

    if args.command == "generate":
        result = _generate(args)
        result.dataset.save(args.out)
        print(
            f"wrote {len(result.dataset)} records "
            f"({len(result.dataset.snapshots())} snapshots, "
            f"{len(result.dataset.publishers())} publishers) to {args.out}"
        )
        return 0

    if args.command == "figure":
        result = _generate(args)
        rows = figures.run_figure(args.figure_id, result)
        print(f"== {args.figure_id}: {figures.describe(args.figure_id)} ==")
        print(format_table(rows))
        return 0

    if args.command == "summary":
        result = _generate(args)
        rows = figures.run_figure("S44", result)
        print(format_table(rows))
        return 0

    if args.command == "experiments":
        from repro.experiments import build_report, fraction_within_band

        result = _generate(args)
        comparisons = build_report(result)
        print(format_table([c.row() for c in comparisons]))
        within = fraction_within_band(comparisons)
        print(
            f"\n{within:.0%} of {len(comparisons)} comparisons inside "
            "their acceptance band"
        )
        return 0 if within > 0.8 else 1

    if args.command == "ingest":
        return _ingest(args)

    if args.command == "metrics":
        return _metrics(args)

    if args.command == "testkit":
        return _testkit(args)

    if args.command == "chaos":
        return _chaos(args)

    if args.command == "analyze":
        return _analyze(args)

    if args.command == "lint":
        return _lint(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _testkit(args: argparse.Namespace) -> int:
    """Run (or list) the scenario x oracle matrix; exit 1 on failure."""
    from pathlib import Path

    from repro.errors import TestkitError
    from repro.testkit import (
        get_oracle,
        get_scenario,
        oracle_names,
        run_matrix,
        scenario_names,
    )

    if args.action == "list":
        scenario_rows = [
            {
                "scenario": name,
                "description": get_scenario(name).description,
            }
            for name in scenario_names()
        ]
        oracle_rows = [
            {
                "oracle": name,
                "kind": get_oracle(name).kind,
                "description": get_oracle(name).description,
            }
            for name in oracle_names()
        ]
        print(format_table(scenario_rows))
        print()
        print(format_table(oracle_rows))
        return 0

    try:
        report = run_matrix(
            scenarios=args.scenarios or None,
            oracles=args.oracle_names or None,
            jobs=args.jobs,
        )
    except TestkitError as error:
        print(f"testkit: {error}", file=sys.stderr)
        return 2
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"wrote oracle report to {args.out}", file=sys.stderr)
    print(report.to_json() if args.as_json else report.format_text())
    return 0 if report.ok else 1


def _chaos(args: argparse.Namespace) -> int:
    """Run (or inspect) the chaos plane; exit 1 on contract violation."""
    from pathlib import Path

    # Lazy import: the chaos plane pulls in testkit and the zoo.
    from repro.chaos import chaos_scenario_names, run_chaos
    from repro.chaos.contracts import contracts_for
    from repro.errors import ChaosError, TestkitError
    from repro.testkit.scenario import get_scenario

    if args.action == "list":
        rows = []
        for name in chaos_scenario_names():
            spec = get_scenario(name)
            plan = spec.chaos_plan
            rows.append(
                {
                    "scenario": name,
                    "specs": len(plan.specs),
                    "layers": ",".join(
                        layer.value for layer in plan.layers()
                    ),
                    "contracts": len(contracts_for(name)),
                    "perturbation": spec.perturb or "-",
                }
            )
        print(format_table(rows))
        return 0

    if args.action == "plan":
        names = args.scenarios or chaos_scenario_names()
        try:
            for name in names:
                print(get_scenario(name).chaos_plan.to_json())
        except (TestkitError, AttributeError) as error:
            print(f"chaos: {error}", file=sys.stderr)
            return 2
        return 0

    scenarios = None if (args.run_all or not args.scenarios) else args.scenarios
    try:
        report = run_chaos(scenarios)
    except (ChaosError, TestkitError) as error:
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"wrote degradation report to {args.out}", file=sys.stderr)
    print(report.to_json() if args.as_json else report.format_text())
    return 0 if report.ok else 1


def _metrics(args: argparse.Namespace) -> int:
    """Dump the instrument taxonomy plus the live registry snapshot."""
    import json

    from repro.obs.instruments import CATALOG

    snapshot = obs.metrics().snapshot()
    if args.output_format == "json":
        payload = {
            "catalog": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "description": spec.description,
                    "labels": list(spec.labels),
                }
                for spec in CATALOG
            ],
            "snapshot": snapshot,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        {
            "instrument": spec.name,
            "kind": spec.kind,
            "labels": ",".join(spec.labels) or "-",
            "description": spec.description,
        }
        for spec in CATALOG
    ]
    print(format_table(rows))
    populated = sum(len(section) for section in snapshot.values())
    print(f"\n{len(rows)} instruments in catalog; "
          f"{populated} series populated this process")
    return 0


def _analyze(args: argparse.Namespace) -> int:
    """Run repgraph; see repro.analysis for the RPL1xx analyses."""
    import os
    from pathlib import Path

    from repro.analysis import (
        format_json,
        format_text,
        graph_json,
        run_analysis,
    )
    from repro.lint import LintConfig, write_baseline
    from repro.lint.registry import LintRuleError

    try:
        config = LintConfig.load(args.root)
        result = run_analysis(
            args.paths or None,
            config=config,
            use_baseline=not args.no_baseline,
        )
        if args.baseline:
            baseline_path = os.path.join(
                args.root, config.analysis_baseline_path
            )
            count = write_baseline(
                baseline_path, result.findings + result.baselined
            )
            print(f"wrote {count} suppression(s) to {baseline_path}")
            return 0
    except LintRuleError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    report = (
        format_json(result)
        if args.output_format == "json"
        else format_text(result)
    )
    if args.out:
        Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(f"wrote analysis report to {args.out}", file=sys.stderr)
    if args.graph_out:
        Path(args.graph_out).write_text(
            graph_json(result) + "\n", encoding="utf-8"
        )
        print(f"wrote call graph to {args.graph_out}", file=sys.stderr)
    print(report)
    return result.exit_code


def _lint(args: argparse.Namespace) -> int:
    """Run the replint rule pack; see repro.lint for the rule codes."""
    import os

    from repro.lint import LintConfig, run_lint, write_baseline
    from repro.lint.registry import LintRuleError
    from repro.lint.report import format_json, format_text

    try:
        config = LintConfig.load(args.root)
        result = run_lint(
            args.paths or None,
            config=config,
            use_baseline=not args.no_baseline,
        )
        if args.baseline:
            baseline_path = os.path.join(args.root, config.baseline_path)
            count = write_baseline(
                baseline_path, result.findings + result.baselined
            )
            print(f"wrote {count} suppression(s) to {baseline_path}")
            return 0
    except LintRuleError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return result.exit_code


def _ingest(args: argparse.Namespace) -> int:
    """Replay generated views as raw events through the robust path."""
    if args.sessions < 1:
        print("ingest: --sessions must be >= 1", file=sys.stderr)
        return 2
    try:
        mix = FaultMix.uniform(args.fault_rate)
    except DatasetError as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return 2
    result = _generate(args)
    records = [
        r
        for r in result.dataset.records
        if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
    ][: args.sessions]
    events = list(events_from_records(records))
    injector = FaultInjector(mix, seed=args.fault_seed)
    corrupted = injector.apply(events)
    backend = TelemetryBackend()
    # When observability is on, the pipeline counts into the global
    # registry so a --metrics-out snapshot and the printed report are
    # literally the same instruments.
    metrics = obs.metrics() if obs.enabled() else None
    try:
        report = backend.ingest_events(
            corrupted, policy=args.policy, metrics=metrics
        )
    except DatasetError as exc:
        print(f"strict ingestion aborted: {exc}", file=sys.stderr)
        return 1
    print(
        f"replayed {len(records)} sessions as {len(events)} events; "
        f"fault rate {args.fault_rate:.0%} corrupted "
        f"{len(injector.corrupted_sessions)} sessions "
        f"({len(injector.log)} faults applied)"
    )
    print(report.summary())
    if report.dead_letters:
        rows = [
            {"reason": reason, "events": count}
            for reason, count in sorted(report.reason_counts().items())
        ]
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
