"""Command-line interface.

::

    repro generate --out dataset.jsonl.gz [--seed N] [--snapshots K]
    repro figure F2a [--dataset dataset.jsonl.gz] [--seed N]
    repro figures                # list ids
    repro summary [--seed N]     # §4.4 roll-up
    repro ingest --policy quarantine --fault-rate 0.2   # robustness demo

Figures that need generator ground truth (catalogue sizes, the case
study) regenerate the ecosystem from the seed; pure-dataset figures can
run against a saved dataset file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import figures
from repro.core.report import format_table
from repro.errors import DatasetError
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator, EcosystemResult
from repro.telemetry.backend import TelemetryBackend
from repro.telemetry.faults import FaultInjector, FaultMix
from repro.telemetry.ingest import ErrorPolicy, events_from_records


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding Video Management Planes' "
            "(IMC 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    generate.add_argument("--out", required=True, help="output .jsonl[.gz]")
    _add_generator_args(generate)

    fig = sub.add_parser("figure", help="regenerate one figure/table")
    fig.add_argument("figure_id", help="e.g. F2a, F13, T1 (see `figures`)")
    _add_generator_args(fig)

    sub.add_parser("figures", help="list known figure ids")

    summary = sub.add_parser("summary", help="print the §4.4 roll-up")
    _add_generator_args(summary)

    experiments = sub.add_parser(
        "experiments", help="paper-vs-measured verification report"
    )
    _add_generator_args(experiments)

    ingest = sub.add_parser(
        "ingest",
        help="fault-injected event ingestion demo (robustness path)",
    )
    _add_generator_args(ingest)
    ingest.add_argument(
        "--policy",
        choices=[policy.value for policy in ErrorPolicy],
        default=ErrorPolicy.QUARANTINE.value,
        help="error policy for bad events (default: quarantine)",
    )
    ingest.add_argument(
        "--fault-rate",
        type=float,
        default=0.2,
        help="fraction of events corrupted by the injector (default: 0.2)",
    )
    ingest.add_argument(
        "--sessions",
        type=int,
        default=200,
        help="number of view sessions to replay as events (default: 200)",
    )
    ingest.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed for the fault injector RNG (default: 7)",
    )
    # The demo only needs a couple of snapshots' worth of sessions.
    ingest.set_defaults(snapshots=2)

    lint = sub.add_parser(
        "lint",
        help="replint static analysis: determinism/units/error hygiene",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.replint] paths)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="project root containing pyproject.toml (default: cwd)",
    )

    return parser


def _add_generator_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--snapshots",
        type=int,
        default=0,
        help="0 = full 59-snapshot schedule; >=2 thins it for speed",
    )
    parser.add_argument(
        "--publishers", type=int, default=110, help="population size"
    )


def _generate(args: argparse.Namespace) -> EcosystemResult:
    config = EcosystemConfig(
        seed=args.seed,
        snapshot_limit=args.snapshots,
        n_publishers=args.publishers,
    )
    return EcosystemGenerator(config).generate()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "figures":
        for figure_id in figures.figure_ids():
            print(f"{figure_id:6s} {figures.describe(figure_id)}")
        return 0

    if args.command == "generate":
        result = _generate(args)
        result.dataset.save(args.out)
        print(
            f"wrote {len(result.dataset)} records "
            f"({len(result.dataset.snapshots())} snapshots, "
            f"{len(result.dataset.publishers())} publishers) to {args.out}"
        )
        return 0

    if args.command == "figure":
        result = _generate(args)
        rows = figures.run_figure(args.figure_id, result)
        print(f"== {args.figure_id}: {figures.describe(args.figure_id)} ==")
        print(format_table(rows))
        return 0

    if args.command == "summary":
        result = _generate(args)
        rows = figures.run_figure("S44", result)
        print(format_table(rows))
        return 0

    if args.command == "experiments":
        from repro.experiments import build_report, fraction_within_band

        result = _generate(args)
        comparisons = build_report(result)
        print(format_table([c.row() for c in comparisons]))
        within = fraction_within_band(comparisons)
        print(
            f"\n{within:.0%} of {len(comparisons)} comparisons inside "
            "their acceptance band"
        )
        return 0 if within > 0.8 else 1

    if args.command == "ingest":
        return _ingest(args)

    if args.command == "lint":
        return _lint(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _lint(args: argparse.Namespace) -> int:
    """Run the replint rule pack; see repro.lint for the rule codes."""
    import os

    from repro.lint import LintConfig, run_lint, write_baseline
    from repro.lint.registry import LintRuleError
    from repro.lint.report import format_json, format_text

    try:
        config = LintConfig.load(args.root)
        result = run_lint(
            args.paths or None,
            config=config,
            use_baseline=not args.no_baseline,
        )
        if args.baseline:
            baseline_path = os.path.join(args.root, config.baseline_path)
            count = write_baseline(
                baseline_path, result.findings + result.baselined
            )
            print(f"wrote {count} suppression(s) to {baseline_path}")
            return 0
    except LintRuleError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return result.exit_code


def _ingest(args: argparse.Namespace) -> int:
    """Replay generated views as raw events through the robust path."""
    if args.sessions < 1:
        print("ingest: --sessions must be >= 1", file=sys.stderr)
        return 2
    try:
        mix = FaultMix.uniform(args.fault_rate)
    except DatasetError as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return 2
    result = _generate(args)
    records = [
        r
        for r in result.dataset.records
        if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
    ][: args.sessions]
    events = list(events_from_records(records))
    injector = FaultInjector(mix, seed=args.fault_seed)
    corrupted = injector.apply(events)
    backend = TelemetryBackend()
    try:
        report = backend.ingest_events(corrupted, policy=args.policy)
    except DatasetError as exc:
        print(f"strict ingestion aborted: {exc}", file=sys.stderr)
        return 1
    print(
        f"replayed {len(records)} sessions as {len(events)} events; "
        f"fault rate {args.fault_rate:.0%} corrupted "
        f"{len(injector.corrupted_sessions)} sessions "
        f"({len(injector.log)} faults applied)"
    )
    print(report.summary())
    if report.dead_letters:
        rows = [
            {"reason": reason, "events": count}
            for reason, count in sorted(report.reason_counts().items())
        ]
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
