"""Time-varying adoption and share curves.

The generator expresses every longitudinal trend in the paper (DASH
adoption rising, HDS falling, Flash giving way to HTML5, set-top boxes
growing, CDN share shifts) as a curve over study progress ``t`` in
[0, 1] (0 = January 2016, 1 = March 2018).

Two shapes cover everything observed: a logistic S-curve for adoption
(technology uptake/decline) and a linear drift for slow share shifts.
Adoption of a technology by a *population* is tied to per-entity
thresholds: entity ``e`` with threshold ``u_e ~ U(0,1)`` supports the
technology at time ``t`` iff ``u_e < level(t)``.  Because ``level`` is
monotone for these curves, each entity adopts (or abandons) at most
once — publishers do not flip-flop support, matching how management
planes actually change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CalibrationError


def _check_unit_interval(t: float) -> None:
    if not 0.0 <= t <= 1.0:
        raise CalibrationError(f"study progress must be in [0, 1], got {t}")


@dataclass(frozen=True)
class AdoptionCurve:
    """Logistic interpolation between a start and an end level.

    ``level(0) = start``, ``level(1) = end`` (exactly, via rescaling of
    the logistic), with the steepest change around ``midpoint``.
    A declining technology simply has ``end < start``.
    """

    start: float
    end: float
    midpoint: float = 0.5
    steepness: float = 6.0

    def __post_init__(self) -> None:
        for name, value in (("start", self.start), ("end", self.end)):
            if not 0.0 <= value <= 1.0:
                raise CalibrationError(f"{name} level must be in [0,1]")
        if not 0.0 < self.midpoint < 1.0:
            raise CalibrationError("midpoint must be in (0, 1)")
        if self.steepness <= 0:
            raise CalibrationError("steepness must be positive")

    def level(self, t: float) -> float:
        """Adoption level at study progress t in [0, 1]."""
        _check_unit_interval(t)
        raw_0 = self._raw(0.0)
        raw_1 = self._raw(1.0)
        if raw_1 == raw_0:
            return self.start
        fraction = (self._raw(t) - raw_0) / (raw_1 - raw_0)
        return self.start + (self.end - self.start) * fraction

    def _raw(self, t: float) -> float:
        return 1.0 / (1.0 + math.exp(-self.steepness * (t - self.midpoint)))

    @property
    def is_rising(self) -> bool:
        return self.end > self.start


@dataclass(frozen=True)
class LinearDrift:
    """Linear interpolation between a start and an end value.

    Used for share *weights* (not probabilities), so values may exceed
    one; they only need to be non-negative.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise CalibrationError("drift values must be non-negative")

    def level(self, t: float) -> float:
        _check_unit_interval(t)
        return self.start + (self.end - self.start) * t


def supports(curve: AdoptionCurve, threshold: float, t: float) -> bool:
    """Threshold-adoption rule: entity supports the tech iff its
    threshold is under the population level at time t.

    With ``threshold ~ U(0,1)`` the population support fraction at time
    ``t`` is exactly ``curve.level(t)``; biasing thresholds (e.g. by
    publisher size) biases *who* adopts without changing the aggregate.
    """
    if not 0.0 <= threshold <= 1.0:
        raise CalibrationError("threshold must be in [0, 1]")
    return threshold < curve.level(t)
