"""Catalogue and bitrate-ladder generation.

Every publisher gets a standard encoding ladder (bigger publishers run
deeper ladders, following the HLS authoring guidance the paper cites)
and a catalogue of titles whose IDs the session sampler draws from with
a Zipf popularity bias.  The §6 case-study catalogue is built to the
calibrated size that yields Fig 18's ~1916 TB of origin storage.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.constants import ContentType
from repro.entities.ladder import BitrateLadder
from repro.entities.publisher import Publisher
from repro.entities.video import Catalogue, Video
from repro.synthesis import calibration as cal
from repro.synthesis.population import size_decade
from repro.units import hours_to_seconds

#: Ladder depth per size decade (rungs); big publishers encode more.
_LADDER_RUNGS_BY_DECADE = (3, 4, 4, 5, 6, 7, 9)

#: Top rung in kbps per size decade.
_LADDER_TOP_BY_DECADE = (1800, 2400, 3200, 4500, 6000, 7500, 8600)


def publisher_ladder(
    rng: np.random.Generator, publisher: Publisher
) -> BitrateLadder:
    """The publisher's standard encoding ladder.

    Rungs are geometric from a sub-192 kbps floor to a size-dependent
    top, with multiplicative jitter — publishers follow the protocol
    guidelines but make independent choices (§6).
    """
    decade = size_decade(publisher.daily_view_hours)
    rungs = _LADDER_RUNGS_BY_DECADE[decade]
    top = _LADDER_TOP_BY_DECADE[decade] * float(
        np.exp(rng.normal(0.0, 0.12))
    )
    floor = 150.0 * float(np.exp(rng.normal(0.0, 0.10)))
    ratios = np.linspace(0.0, 1.0, rungs)
    bitrates = floor * (top / floor) ** ratios
    jitter = np.exp(rng.normal(0.0, 0.05, size=rungs))
    bitrates = np.sort(bitrates * jitter)
    # Enforce strict monotonicity after jitter.
    for i in range(1, rungs):
        if bitrates[i] <= bitrates[i - 1]:
            bitrates[i] = bitrates[i - 1] * 1.05
    return BitrateLadder.from_bitrates([round(b, 1) for b in bitrates])


def video_id_for(publisher_id: str, index: int) -> str:
    """Stable video-ID scheme: owner content keeps its ID when
    syndicated, which is how §6 matches content across publishers."""
    return f"vid_{publisher_id}_{index:05d}"


#: Cached Zipf CDFs keyed by (catalogue size, exponent); the sampler
#: calls this for every record, so rebuilding the weights would
#: dominate generation time.
_ZIPF_CDF_CACHE: dict = {}


def sample_video_index(
    rng: np.random.Generator, catalogue_size: int, zipf_s: float = 1.1
) -> int:
    """Zipf-biased title index: a few titles get most views."""
    if catalogue_size <= 1:
        return 0
    key = (catalogue_size, zipf_s)
    cdf = _ZIPF_CDF_CACHE.get(key)
    if cdf is None:
        ranks = np.arange(1, catalogue_size + 1, dtype=float)
        weights = ranks**-zipf_s
        cdf = np.cumsum(weights / weights.sum())
        _ZIPF_CDF_CACHE[key] = cdf
    return int(np.searchsorted(cdf, rng.uniform(), side="left"))


def build_case_catalogue(rng: np.random.Generator) -> Catalogue:
    """The §6 popular video catalogue used for the storage study.

    Sized (titles x duration) so that the owner's 9-rung copy plus the
    two syndicators' copies total about the paper's 1916 TB per common
    CDN.
    """
    catalogue = Catalogue("case-study")
    for index in range(cal.CASE_CATALOGUE_TITLES):
        hours = cal.CASE_CATALOGUE_MEAN_HOURS * float(
            np.exp(rng.normal(0.0, 0.05))
        )
        catalogue.add(
            Video(
                video_id=f"vid_case_{index:05d}",
                duration_seconds=hours_to_seconds(hours),
                content_type=ContentType.VOD,
            )
        )
    return catalogue


def case_video_id() -> str:
    """The single video ID examined in Figs 15-17."""
    return "vid_case_00000"
