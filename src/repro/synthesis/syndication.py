"""Syndication graph and the §6 case study.

Owners license content to full syndicators (Fig 14's bipartite graph);
a designated popular catalogue with one owner (O) and ten syndicators
(S1-S10) drives the bitrate-divergence (Fig 17), QoE (Figs 15/16) and
storage-redundancy (Fig 18) analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple

import numpy as np

from repro.constants import SyndicationRole
from repro.entities.ladder import BitrateLadder
from repro.entities.publisher import Publisher
from repro.entities.video import Catalogue
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import build_case_catalogue


def build_syndication_graph(
    rng: np.random.Generator, publishers: Sequence[Publisher]
) -> Dict[str, FrozenSet[str]]:
    """owner_id -> syndicator_ids licensing that owner's content.

    Calibrated to Fig 14: >80% of owners use at least one syndicator,
    and the top ~20% of owners reach about a third of all syndicators.
    """
    owners = [
        p.publisher_id for p in publishers if p.role is SyndicationRole.OWNER
    ]
    syndicators = [
        p.publisher_id
        for p in publishers
        if p.role is SyndicationRole.FULL_SYNDICATOR
    ]
    if not owners or not syndicators:
        raise CalibrationError("population lacks owners or syndicators")
    graph: Dict[str, FrozenSet[str]] = {}
    a, b = cal.SYNDICATION_BETA
    for owner in owners:
        if rng.uniform() < cal.PCT_OWNERS_WITHOUT_SYNDICATION:
            graph[owner] = frozenset()
            continue
        fraction = float(rng.beta(a, b))
        count = max(int(round(fraction * len(syndicators))), 1)
        count = min(count, len(syndicators))
        picked = rng.choice(len(syndicators), size=count, replace=False)
        graph[owner] = frozenset(syndicators[int(i)] for i in picked)
    return graph


def invert_graph(
    graph: Mapping[str, FrozenSet[str]]
) -> Dict[str, Tuple[str, ...]]:
    """syndicator_id -> owner_ids whose content it carries."""
    inverse: Dict[str, List[str]] = {}
    for owner, syndicators in graph.items():
        for syndicator in syndicators:
            inverse.setdefault(syndicator, []).append(owner)
    return {k: tuple(sorted(v)) for k, v in inverse.items()}


@dataclass(frozen=True)
class CaseStudy:
    """The designated popular catalogue of §6.

    ``labels`` maps the paper's anonymized labels (O, S1..S10) onto the
    publisher IDs playing those roles in this dataset build.
    """

    labels: Mapping[str, str]  # label -> publisher_id
    ladders: Mapping[str, BitrateLadder]  # label -> iPad/WiFi ladder
    catalogue: Catalogue
    qoe_syndicator_label: str = "S7"

    def __post_init__(self) -> None:
        if "O" not in self.labels:
            raise CalibrationError("case study needs an owner label O")
        missing = set(self.labels) - set(self.ladders)
        if missing:
            raise CalibrationError(f"labels without ladders: {missing}")

    @property
    def owner_id(self) -> str:
        return self.labels["O"]

    @property
    def syndicator_labels(self) -> Tuple[str, ...]:
        return tuple(sorted(
            (label for label in self.labels if label != "O"),
            key=lambda s: int(s[1:]),
        ))

    def publisher_id(self, label: str) -> str:
        try:
            return self.labels[label]
        except KeyError:
            raise CalibrationError(f"unknown case-study label {label!r}")

    def ladder(self, label: str) -> BitrateLadder:
        return self.ladders[label]

    def storage_participants(self) -> Tuple[Tuple[str, str], ...]:
        """(label, publisher_id) for the Fig 18 storage study."""
        participants = [("O", self.owner_id)]
        participants.extend(
            (label, self.labels[label])
            for label in cal.STORAGE_STUDY_SYNDICATORS
        )
        return tuple(participants)


def assign_case_study(
    rng: np.random.Generator,
    publishers: Sequence[Publisher],
    graph: Dict[str, FrozenSet[str]],
) -> CaseStudy:
    """Pick the owner and ten syndicators and wire the graph to match.

    The owner is the largest owner-role publisher; the ten syndicators
    are the largest full-syndicator publishers.  The graph is augmented
    so all ten genuinely carry the owner's content.
    """
    owners = sorted(
        (p for p in publishers if p.role is SyndicationRole.OWNER),
        key=lambda p: p.daily_view_hours,
        reverse=True,
    )
    syndicators = sorted(
        (p for p in publishers if p.role is SyndicationRole.FULL_SYNDICATOR),
        key=lambda p: p.daily_view_hours,
        reverse=True,
    )
    if not owners:
        raise CalibrationError("no owner-role publisher available")
    owner = owners[0]
    if len(syndicators) < 10:
        # Small test populations may draw too few full syndicators;
        # promote the largest unaffiliated publishers so the case study
        # always has its ten (the paper's catalogue has exactly ten).
        fallback = sorted(
            (
                p
                for p in publishers
                if p.role is SyndicationRole.NONE
                or (
                    p.role is SyndicationRole.OWNER
                    and p.publisher_id != owner.publisher_id
                )
            ),
            key=lambda p: p.daily_view_hours,
            reverse=True,
        )
        syndicators = syndicators + fallback[: 10 - len(syndicators)]
    if len(syndicators) < 10:
        raise CalibrationError(
            f"need 10 case-study syndicators, have {len(syndicators)}"
        )
    chosen = syndicators[:10]
    labels = {"O": owner.publisher_id}
    for i, publisher in enumerate(chosen, start=1):
        labels[f"S{i}"] = publisher.publisher_id
    graph[owner.publisher_id] = frozenset(
        set(graph.get(owner.publisher_id, frozenset()))
        | {p.publisher_id for p in chosen}
    )
    ladders = {
        label: BitrateLadder.from_bitrates(rates)
        for label, rates in cal.CASE_STUDY_LADDERS.items()
    }
    return CaseStudy(
        labels=labels,
        ladders=ladders,
        catalogue=build_case_catalogue(rng),
    )
