"""Calibration constants: every number the generator aims to reproduce.

The synthetic ecosystem is calibrated against the *reported* statistics
of the paper — the prevalence levels, trends, distributions, slopes and
case-study values quoted in §§4-6.  Keeping them all here (a) makes the
substitution auditable against the paper, and (b) lets tests and
benches compare measured values with paper values from one place.

``PAPER`` holds what the paper reports; ``DEFAULT_CONFIG`` holds the
generator parameters chosen so the analyses land near those values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.constants import Platform, Protocol
from repro.errors import CalibrationError
from repro.synthesis.trends import AdoptionCurve, LinearDrift

# ---------------------------------------------------------------------------
# Paper-reported targets (§§4-6), used for verification and reporting.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PaperTargets:
    """Values the paper reports, with our measured analogues benched
    against them in EXPERIMENTS.md."""

    # §4.1 protocols (latest snapshot unless a range is given)
    publisher_share_latest: Mapping[Protocol, float] = field(
        default_factory=lambda: {
            Protocol.HLS: 91.0,
            Protocol.DASH: 43.0,
            Protocol.MSS: 40.0,
            Protocol.HDS: 19.0,
        }
    )
    dash_publisher_share_first: float = 10.0
    view_hour_share_latest: Mapping[Protocol, float] = field(
        default_factory=lambda: {
            Protocol.HLS: 42.0,  # "38-45%"
            Protocol.DASH: 38.0,
            Protocol.MSS: 12.0,
            Protocol.HDS: 6.0,
        }
    )
    dash_view_hour_share_first: float = 3.0
    dash_share_excluding_drivers: float = 5.0  # Fig 2c: "< 5%"
    rtmp_view_hour_share_first: float = 1.6
    rtmp_view_hour_share_latest: float = 0.1
    # Fig 3a: % publishers using n protocols / % view-hours from them
    pct_publishers_one_protocol: float = 38.0
    pct_view_hours_one_protocol: float = 10.0  # "< 10%"
    pct_publishers_two_protocols: float = 38.0
    pct_view_hours_two_protocols: float = 60.0
    # Fig 3c / §4.4 weighted averages in the latest snapshot
    weighted_avg_protocols: float = 2.2
    weighted_avg_platforms: float = 4.5
    weighted_avg_cdns: float = 4.5
    # Fig 4: among HLS publishers, median HLS share of their view-hours
    median_hls_share_among_supporters: float = 85.0
    median_dash_share_among_supporters: float = 20.0  # "at most 20%"
    # §4.2 platforms
    platform_view_hour_share_latest: Mapping[Platform, float] = field(
        default_factory=lambda: {
            Platform.BROWSER: 25.0,
            Platform.SET_TOP: 40.0,
            Platform.MOBILE: 22.0,
            Platform.SMART_TV: 5.0,
            Platform.CONSOLE: 8.0,
        }
    )
    browser_view_hour_share_first: float = 60.0
    set_top_views_share_latest: float = 20.0
    pct_publishers_multi_platform: float = 85.0
    pct_view_hours_multi_platform: float = 95.0
    pct_publishers_all_platforms: float = 30.0
    pct_view_hours_all_platforms: float = 60.0
    long_view_fraction_mobile: float = 0.24  # P[view > 0.2 h], Fig 8
    long_view_fraction_set_top: float = 0.60
    flash_share_first: float = 60.0  # Fig 10a, % of browser view-hours
    flash_share_latest: float = 40.0
    html5_share_first: float = 25.0
    html5_share_latest: float = 60.0
    # §4.3 CDNs
    cdn_publisher_share_latest: Mapping[str, float] = field(
        default_factory=lambda: {"A": 80.0, "C": 30.0, "B": 25.0}
    )
    top5_view_hour_share: float = 93.0
    pct_publishers_one_cdn: float = 40.0  # "> 40%"
    pct_view_hours_one_cdn: float = 5.0  # "< 5%"
    pct_publishers_five_cdns: float = 10.0  # "< 10%"
    pct_view_hours_five_cdns: float = 50.0  # "> 50%"
    pct_view_hours_4_or_5_cdns: float = 80.0
    pct_vod_only_cdn_publishers: float = 30.0
    pct_live_only_cdn_publishers: float = 19.0
    # §5 complexity: per-decade growth factors and fit quality
    combos_factor_per_decade: float = 1.72
    protocol_titles_factor_per_decade: float = 3.8
    unique_sdks_factor_per_decade: float = 1.8
    max_unique_sdks: float = 85.0
    complexity_p_value_bound: float = 1e-9
    # §6 syndication
    pct_owners_with_syndicator: float = 80.0
    pct_owners_third_of_syndicators: float = 20.0
    owner_median_bitrate_gain: float = 2.5  # Fig 15
    owner_p90_rebuffer_reduction: float = 0.40  # Fig 16
    owner_ladder_size: int = 9
    syndicator_ladder_sizes: Tuple[int, ...] = (
        5, 3, 6, 7, 8, 10, 3, 4, 14, 6,
    )
    catalogue_storage_tb: float = 1916.0
    savings_tb_5pct: float = 316.1
    savings_pct_5pct: float = 16.5
    savings_tb_10pct: float = 865.0
    savings_pct_10pct: float = 45.2
    savings_tb_integrated: float = 1257.0
    savings_pct_integrated: float = 65.6


PAPER = PaperTargets()

# ---------------------------------------------------------------------------
# Generator configuration.
# ---------------------------------------------------------------------------

#: The confidential "X" of Figs 3b/9b/12b: daily view-hours of the
#: smallest publisher bucket.
VIEW_HOUR_BASE_X = 100.0

#: Fraction of publishers per decade bucket (<=X, X-10X, ..., >1e5X).
#: The modal bucket is 100X-1000X with >35% of publishers (§4.1).
SIZE_BUCKET_FRACTIONS = (0.07, 0.10, 0.17, 0.36, 0.17, 0.09, 0.04)

#: Protocol adoption curves: fraction of publishers supporting each
#: protocol across the study (Fig 2a endpoints).
PROTOCOL_ADOPTION: Dict[Protocol, AdoptionCurve] = {
    Protocol.HLS: AdoptionCurve(start=0.88, end=0.91, steepness=2.0),
    Protocol.DASH: AdoptionCurve(start=0.10, end=0.43, midpoint=0.55),
    Protocol.MSS: AdoptionCurve(start=0.42, end=0.40, steepness=2.0),
    Protocol.HDS: AdoptionCurve(start=0.35, end=0.19, midpoint=0.5),
    Protocol.RTMP: AdoptionCurve(start=0.12, end=0.02, midpoint=0.4),
}

#: Per-publisher view-hour split weight for a supported protocol
#: (normalized within each publisher).  HLS dominance among ordinary
#: publishers produces Fig 4's contrast: HLS supporters put a median
#: ~85% of view-hours on it, DASH supporters a median <=20%.
PROTOCOL_BASE_WEIGHT: Dict[Protocol, float] = {
    Protocol.HLS: 1.0,
    Protocol.DASH: 0.10,
    Protocol.MSS: 0.21,
    Protocol.HDS: 0.16,
    Protocol.RTMP: 0.30,
}

#: Large publishers spread view-hours more evenly across their
#: protocols (their per-device player fleets differ); small publishers
#: are HLS-dominant.  Secondary-protocol weights are multiplied by
#: ``1 + SPREAD * size_percentile``.
PROTOCOL_SPREAD_BY_SIZE = 2.2

#: Number of large publishers that drive DASH growth (the paper's
#: unnamed small N; Fig 2b vs 2c).
DASH_DRIVER_COUNT = 4

#: DASH view-hour weight of the driver publishers over time; by the last
#: snapshot they put most of their traffic on DASH.
DASH_DRIVER_WEIGHT = LinearDrift(start=0.05, end=2.2)

#: Platform adoption curves (Fig 7 endpoints).
PLATFORM_ADOPTION: Dict[Platform, AdoptionCurve] = {
    Platform.BROWSER: AdoptionCurve(start=0.96, end=0.97, steepness=2.0),
    Platform.MOBILE: AdoptionCurve(start=0.82, end=0.95, steepness=3.0),
    Platform.SET_TOP: AdoptionCurve(start=0.18, end=0.55, midpoint=0.5),
    Platform.SMART_TV: AdoptionCurve(start=0.19, end=0.63, midpoint=0.5),
    Platform.CONSOLE: AdoptionCurve(start=0.22, end=0.34, steepness=3.0),
}

#: Platform view-hour weights over time (Fig 6a shape), normalized per
#: publisher over supported platforms.
PLATFORM_WEIGHT: Dict[Platform, LinearDrift] = {
    Platform.BROWSER: LinearDrift(start=1.30, end=0.62),
    Platform.MOBILE: LinearDrift(start=0.55, end=0.62),
    Platform.SET_TOP: LinearDrift(start=0.33, end=0.52),
    Platform.SMART_TV: LinearDrift(start=0.05, end=0.08),
    Platform.CONSOLE: LinearDrift(start=0.10, end=0.13),
}

#: Extra multiplier applied to the three largest publishers' platform
#: weights, so they drive part (but not all) of the set-top surge
#: (Fig 6a vs Fig 6b).
TOP3_PLATFORM_TILT: Dict[Platform, LinearDrift] = {
    Platform.BROWSER: LinearDrift(start=1.0, end=0.70),
    Platform.MOBILE: LinearDrift(start=1.0, end=0.55),
    Platform.SET_TOP: LinearDrift(start=1.0, end=2.20),
    Platform.SMART_TV: LinearDrift(start=1.0, end=1.0),
    Platform.CONSOLE: LinearDrift(start=1.0, end=1.0),
}

#: Individual view-duration lognormals per platform: (median hours,
#: sigma of log).  Chosen so P[view > 0.2 h] matches Fig 8 (~24% for
#: mobile/browser, >60% for set-top) and so set-top view-hours outpace
#: set-top views (Fig 6a vs 6c).
VIEW_DURATION_LOGNORMAL: Dict[Platform, Tuple[float, float]] = {
    Platform.BROWSER: (0.090, 1.10),
    Platform.MOBILE: (0.095, 1.10),
    Platform.SET_TOP: (0.260, 1.00),
    Platform.SMART_TV: (0.240, 1.00),
    Platform.CONSOLE: (0.150, 1.00),
}

#: Browser player-technology weights over time (Fig 10a: Flash declines
#: from ~60% to ~40% of browser view-hours, HTML5 rises 25%->60%).
BROWSER_FAMILY_WEIGHT: Dict[str, LinearDrift] = {
    "flash": LinearDrift(start=0.60, end=0.37),
    "html5": LinearDrift(start=0.25, end=0.58),
    "silverlight": LinearDrift(start=0.10, end=0.03),
    "other_plugin": LinearDrift(start=0.05, end=0.02),
}

#: Mobile OS weights over time (Fig 10b: Android grows to parity).
MOBILE_FAMILY_WEIGHT: Dict[str, LinearDrift] = {
    "android": LinearDrift(start=0.35, end=0.50),
    "ios": LinearDrift(start=0.60, end=0.48),
    "other_mobile": LinearDrift(start=0.05, end=0.02),
}

#: Set-top family weights over time (Fig 10c: Roku dominant, AppleTV
#: and FireTV non-negligible).
SET_TOP_FAMILY_WEIGHT: Dict[str, LinearDrift] = {
    "roku": LinearDrift(start=0.60, end=0.52),
    "appletv": LinearDrift(start=0.18, end=0.20),
    "firetv": LinearDrift(start=0.10, end=0.18),
    "chromecast": LinearDrift(start=0.09, end=0.08),
    "other_settop": LinearDrift(start=0.03, end=0.02),
}

SMART_TV_FAMILY_WEIGHT: Dict[str, LinearDrift] = {
    "samsung_tv": LinearDrift(start=0.45, end=0.45),
    "lg_tv": LinearDrift(start=0.25, end=0.25),
    "android_tv": LinearDrift(start=0.15, end=0.20),
    "other_tv": LinearDrift(start=0.15, end=0.10),
}

CONSOLE_FAMILY_WEIGHT: Dict[str, LinearDrift] = {
    "xbox": LinearDrift(start=0.55, end=0.50),
    "playstation": LinearDrift(start=0.40, end=0.45),
    "other_console": LinearDrift(start=0.05, end=0.05),
}

#: Probability a publisher uses each top CDN, given it draws another CDN
#: (Fig 11a: A ~80% of publishers, C ~30%, B ~25%, D/E less).  Values
#: are sampling weights for choosing which CDNs fill a publisher's CDN
#: budget; 'OTHER' stands for the long tail of 31 regional CDNs.
CDN_POPULARITY: Dict[str, float] = {
    "A": 3.2,
    "C": 0.55,
    "B": 0.40,
    "D": 0.28,
    "E": 0.22,
    "OTHER": 0.20,
}

#: Per-publisher view-hour weight for each used CDN; drifts reproduce
#: Fig 11b (A's share falls while B and C rise to comparability).
CDN_WEIGHT: Dict[str, LinearDrift] = {
    "A": LinearDrift(start=0.95, end=0.72),
    "B": LinearDrift(start=0.38, end=0.70),
    "C": LinearDrift(start=0.52, end=0.95),
    "D": LinearDrift(start=0.22, end=0.18),
    "E": LinearDrift(start=0.18, end=0.12),
    "OTHER": LinearDrift(start=0.10, end=0.08),
}

#: CDN-count model: expected CDNs as a function of size decade
#: (0 = smallest bucket).  Fig 12b: smallest bucket all single-CDN,
#: largest all 4-5 CDNs; weighted average ~4.5 (§4.4).
CDN_COUNT_BY_DECADE = (1.0, 1.0, 1.3, 1.7, 2.6, 4.4, 5.4)

#: Protocol-count shaping: bias added to large publishers' adoption
#: thresholds so count grows with size (Fig 3b) but stays modest.
SIZE_BIAS_PROTOCOL = 0.55
SIZE_BIAS_PLATFORM = 0.75

#: Catalogue size model: titles = CATALOGUE_BASE * (vh/X)**CATALOGUE_EXP
#: (lognormal noise on top).  With the protocol count's mild growth this
#: lands the Fig 13b protocol-titles slope near 3.8x per decade.
CATALOGUE_BASE = 18.0
CATALOGUE_EXP = 0.52

#: SDK-version model: unique SDK versions = SDK_BASE * (vh/X)**SDK_EXP,
#: spread over the publisher's app devices; Fig 13c slope ~1.8x per
#: decade with the biggest publishers near 85 code bases.
SDK_BASE = 1.9
SDK_EXP = 0.31

#: Device-model breadth per (platform, protocol) cell by size decade.
DEVICES_PER_CELL_BY_DECADE = (1, 1, 1, 2, 2, 2, 2)

#: Probability that a multi-CDN live+VoD publisher dedicates a CDN to
#: one content type.  Slightly above the paper's observed 30%/19%
#: because observation through sampled views attrits a little.
VOD_ONLY_CDN_PROB = 0.42
LIVE_ONLY_CDN_PROB = 0.20

#: Syndication graph: publisher role mix and linkage (Fig 14).
OWNER_FRACTION = 0.42
SYNDICATOR_FRACTION = 0.24
PCT_OWNERS_WITHOUT_SYNDICATION = 0.18
SYNDICATION_BETA = (1.1, 4.0)  # Beta params for fraction of syndicators

#: Share of a syndicator's view-hours spent on syndicated content.
SYNDICATED_VIEW_SHARE = 0.35

#: Case-study bitrate ladders (Fig 17): owner O and syndicators S1-S10
#: for one popular video ID on iPad over WiFi.  O spans 9 rungs past
#: 8192 kbps; S1 tops out a bit above 1024 kbps (7x below O); S2 uses
#: only 3 rungs; S9 uses 14.  S7, the Fig 15/16 comparison syndicator,
#: has a coarse ladder with a high floor — the mechanism behind both
#: its lower average bitrates and its higher rebuffering.
CASE_STUDY_LADDERS: Dict[str, Tuple[float, ...]] = {
    "O": (145, 250, 420, 730, 1300, 2350, 4300, 6500, 8600),
    "S1": (180, 320, 560, 780, 1100),
    "S2": (400, 800, 1600),
    "S3": (250, 500, 1000, 2000, 3500, 5200),
    # S4 tracks the owner's ladder ~4% high: merges at 5% tolerance.
    "S4": (150.8, 260.0, 436.8, 759.2, 1352.0, 2444.0, 6760.0),
    "S5": (200, 350, 600, 1050, 1800, 3000, 4800, 6200),
    "S6": (
        160, 270, 450, 760, 1280, 2150, 3600, 5000, 6800, 8000,
    ),
    "S7": (800, 1400, 2000),
    "S8": (300, 700, 1500, 3100),
    # S9 tracks the owner's ladder ~9% high (merges only at the 10%
    # tolerance) plus independent rungs that never merge; together with
    # S4 this lands Fig 18's 16.5% / 45.2% / 65.6% savings points.
    "S9": (
        158.05, 200, 272.5, 340, 457.8, 570, 795.7, 980, 1417,
        2561.5, 2732.65, 7085, 7795, 9374,
    ),
    "S10": (220, 440, 880, 1760, 3520, 7040),
}

#: Which syndicators participate in the Fig 18 storage study (7- and
#: 14-rung ladders, as in the paper) and where everyone pushes.
STORAGE_STUDY_SYNDICATORS = ("S4", "S9")
STORAGE_STUDY_COMMON_CDNS = ("A", "B")
OWNER_EXTRA_CDNS: Tuple[str, ...] = ()
SYNDICATOR_EXTRA_CDNS: Dict[str, Tuple[str, ...]] = {
    "S4": ("C",),
    "S9": ("D",),
}

#: Case-study catalogue: sized so the three publishers' copies total
#: ~1916 TB on each common CDN, as in Fig 18.
CASE_CATALOGUE_TITLES = 425
CASE_CATALOGUE_MEAN_HOURS = 140.0  # per-title seasons-worth of content

#: QoE study sessions per (publisher, ISP/CDN combination) — Figs 15/16.
QOE_SESSIONS_PER_COMBO = 160
QOE_COMBOS: Tuple[Tuple[str, str], ...] = (("X", "A"), ("Y", "B"))


@dataclass(frozen=True)
class EcosystemConfig:
    """Tunable knobs of one synthetic dataset build.

    ``dash_driver_count`` defaults to the paper's (unnamed) small N;
    setting it to 0 builds the counterfactual world in which no large
    publisher pushes DASH — the Fig 2b surge should then disappear,
    which is exactly the causal claim behind Fig 2c.
    """

    seed: int = 2018
    n_publishers: int = 110
    snapshot_limit: int = 0  # 0 = full 59-snapshot schedule
    records_scale: float = 1.0
    include_case_study: bool = True
    qoe_sessions: int = QOE_SESSIONS_PER_COMBO
    dash_driver_count: int = DASH_DRIVER_COUNT

    def __post_init__(self) -> None:
        if self.n_publishers < 20:
            raise CalibrationError(
                "need at least 20 publishers for stable statistics"
            )
        if self.snapshot_limit < 0:
            raise CalibrationError("snapshot_limit must be >= 0")
        if self.records_scale <= 0:
            raise CalibrationError("records_scale must be positive")
        if self.qoe_sessions < 10:
            raise CalibrationError("need at least 10 QoE sessions")
        if self.dash_driver_count < 0:
            raise CalibrationError("driver count must be non-negative")


DEFAULT_CONFIG = EcosystemConfig()


def validate_calibration() -> None:
    """Cross-check calibration invariants; raises CalibrationError."""
    if abs(sum(SIZE_BUCKET_FRACTIONS) - 1.0) > 1e-9:
        raise CalibrationError("size bucket fractions must sum to 1")
    if len(CDN_COUNT_BY_DECADE) != len(SIZE_BUCKET_FRACTIONS):
        raise CalibrationError("CDN count table must cover every decade")
    if len(DEVICES_PER_CELL_BY_DECADE) != len(SIZE_BUCKET_FRACTIONS):
        raise CalibrationError("device table must cover every decade")
    for name, ladder in CASE_STUDY_LADDERS.items():
        if list(ladder) != sorted(ladder):
            raise CalibrationError(f"ladder {name} must be ascending")
        if len(set(ladder)) != len(ladder):
            raise CalibrationError(f"ladder {name} has duplicate rungs")
    if len(CASE_STUDY_LADDERS["O"]) != PAPER.owner_ladder_size:
        raise CalibrationError("owner ladder size must match the paper")
    for syndicator in STORAGE_STUDY_SYNDICATORS:
        if syndicator not in CASE_STUDY_LADDERS:
            raise CalibrationError(f"unknown storage syndicator {syndicator}")
