"""Per-publisher management-plane portfolios.

Assigns each publisher its protocols (time-varying via adoption
thresholds), platforms, CDN footprint (an ordered list whose active
prefix grows over the study, matching Fig 12c's rising averages while
Fig 11a's per-CDN publisher shares stay roughly steady), SDK version
matrix, and device models — everything a :class:`PublisherProfile`
carries.

Adoption thresholds are assigned by *rank*: for each technology the
publishers are ordered by an affinity score (plus noise) and receive
evenly spaced thresholds, so the population-level support fraction at
time ``t`` equals the calibration curve exactly, while *who* adopts is
shaped by the affinity.  Platform affinity grows with publisher size
(Fig 9b); protocol affinity peaks at mid-size publishers — the paper's
Fig 3b shows the very largest publishers consolidated onto two
protocols while mid-size publishers juggle up to four.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.constants import (
    ContentType,
    Platform,
    Protocol,
    TOP_CDN_NAMES,
)
from repro.entities.cdn import CDN, CdnAssignment
from repro.entities.device import SDK, DeviceRegistry
from repro.entities.publisher import Publisher, PublisherProfile
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.population import size_decade, size_rank_percentile
from repro.synthesis.trends import supports

#: Long-tail regional CDN names (36 total CDNs in the dataset, §4.3).
REGIONAL_CDN_NAMES = tuple(f"R{i:02d}" for i in range(6, 37))

#: SDK version pools per SDK name; publishers keep a contiguous window
#: of these alive (users upgrade slowly, §2).
_SDK_VERSION_POOL = [
    f"{major}.{minor}" for major in range(2, 12) for minor in range(0, 8)
]

#: Blend between affinity ordering and pure noise in threshold ranks.
_PROTOCOL_RHO = 0.35
_PLATFORM_RHO = 0.60


def _rank_thresholds(
    rng: np.random.Generator, affinities: np.ndarray, rho: float
) -> np.ndarray:
    """Evenly spaced adoption thresholds ordered by noisy affinity.

    Returns one threshold per publisher in [0, 1); higher affinity
    means a lower threshold (earlier adoption).  Because the thresholds
    form a uniform grid, the fraction of publishers under the adoption
    curve's level equals the level itself.
    """
    n = affinities.size
    noise = rng.uniform(size=n)
    scores = rho * (1.0 - affinities) + (1 - rho) * noise
    ranks = np.argsort(np.argsort(scores, kind="stable"), kind="stable")
    return (ranks + 0.5) / n


def _protocol_affinity(size_pct: float) -> float:
    """Protocol breadth peaks at large-but-not-largest publishers.

    Fig 3b: the right-most size bucket consolidated onto two protocols
    while the buckets just below juggle up to four.
    """
    return max(0.0, 1.0 - abs(size_pct - 0.78) / 0.55)


class PortfolioAssigner:
    """Draws and serves per-publisher portfolios."""

    def __init__(
        self,
        rng: np.random.Generator,
        publishers: Sequence[Publisher],
        registry: DeviceRegistry,
    ) -> None:
        if not publishers:
            raise CalibrationError("no publishers to assign portfolios to")
        ids = [p.publisher_id for p in publishers]
        if len(set(ids)) != len(ids):
            raise CalibrationError("duplicate publisher IDs")
        self._registry = registry
        self._publishers: Dict[str, Publisher] = {
            p.publisher_id: p for p in publishers
        }
        self._order: List[str] = ids
        size_pcts = np.array(
            [
                size_rank_percentile(p.daily_view_hours)
                for p in publishers
            ]
        )

        self._protocol_thresholds: Dict[str, Dict[Protocol, float]] = {
            pid: {} for pid in ids
        }
        protocol_affinity = np.array(
            [_protocol_affinity(s) for s in size_pcts]
        )
        for protocol in cal.PROTOCOL_ADOPTION:
            if protocol is Protocol.RTMP:
                # RTMP's remaining users were large live broadcasters.
                affinity = size_pcts
            else:
                affinity = protocol_affinity
            thresholds = _rank_thresholds(rng, affinity, _PROTOCOL_RHO)
            for pid, threshold in zip(ids, thresholds):
                self._protocol_thresholds[pid][protocol] = float(threshold)

        self._platform_thresholds: Dict[str, Dict[Platform, float]] = {
            pid: {} for pid in ids
        }
        for platform in cal.PLATFORM_ADOPTION:
            thresholds = _rank_thresholds(rng, size_pcts, _PLATFORM_RHO)
            for pid, threshold in zip(ids, thresholds):
                self._platform_thresholds[pid][platform] = float(threshold)

        self._cdn_assignments: Dict[str, Tuple[CdnAssignment, ...]] = {}
        self._cdn_start_counts: Dict[str, int] = {}
        self._sdks: Dict[str, FrozenSet[SDK]] = {}
        self._device_models: Dict[str, FrozenSet[str]] = {}
        for publisher in publishers:
            pid = publisher.publisher_id
            assignments, start_count = self._draw_cdns(rng, publisher)
            self._cdn_assignments[pid] = assignments
            self._cdn_start_counts[pid] = start_count
            self._device_models[pid] = self._draw_devices(
                rng, publisher, self._platforms_ever(pid)
            )
            self._sdks[pid] = self._draw_sdks(rng, publisher, pid)

    def force_protocol(
        self, publisher_id: str, protocol: Protocol, threshold: float
    ) -> None:
        """Pin a publisher's adoption threshold for one protocol.

        The generator uses this for the large DASH drivers (Fig 2b/2c)
        and to make the top bucket consolidate onto two protocols
        (Fig 3b's right-most bar).
        """
        if publisher_id not in self._protocol_thresholds:
            raise CalibrationError(f"unknown publisher {publisher_id}")
        if not 0.0 <= threshold <= 1.0:
            raise CalibrationError("threshold must be in [0, 1]")
        self._protocol_thresholds[publisher_id][protocol] = threshold

    def ensure_cdns(self, publisher_id: str, cdn_names: Sequence[str]) -> None:
        """Guarantee a publisher's portfolio includes the named CDNs.

        Used for the §6 case-study participants, who all store the
        popular catalogue on the common CDNs A and B; regional/private
        CDNs are displaced first so the 5-CDN ceiling holds.
        """
        if publisher_id not in self._cdn_assignments:
            raise CalibrationError(f"unknown publisher {publisher_id}")
        assignments = list(self._cdn_assignments[publisher_id])
        present = {a.cdn.name for a in assignments}
        for name in cdn_names:
            if name in present:
                continue
            new_assignment = CdnAssignment(
                cdn=CDN(name=name, uses_anycast=(name == "B"))
            )
            if len(assignments) < 5:
                assignments.append(new_assignment)
            else:
                replaceable = [
                    i
                    for i, a in enumerate(assignments)
                    if a.cdn.name not in TOP_CDN_NAMES
                ] or [len(assignments) - 1]
                assignments[replaceable[0]] = new_assignment
            present.add(name)
        self._cdn_assignments[publisher_id] = tuple(assignments)
        # Case-study participants stored the catalogue on the common
        # CDNs for the whole study: the full footprint is active from
        # the first snapshot.
        self._cdn_start_counts[publisher_id] = len(assignments)

    # ------------------------------------------------------------------
    # Time-varying support sets
    # ------------------------------------------------------------------

    def protocols_at(self, publisher_id: str, t: float) -> FrozenSet[Protocol]:
        """Protocols supported at study progress t (HTTP + RTMP)."""
        thresholds = self._protocol_thresholds[publisher_id]
        publisher = self._publishers[publisher_id]
        chosen = {
            protocol
            for protocol, curve in cal.PROTOCOL_ADOPTION.items()
            if supports(curve, thresholds[protocol], t)
        }
        if Protocol.RTMP in chosen and not publisher.serves_live:
            chosen.discard(Protocol.RTMP)
        if not any(p.is_http_adaptive for p in chosen):
            chosen.add(Protocol.HLS)
        return frozenset(chosen)

    def platforms_at(self, publisher_id: str, t: float) -> FrozenSet[Platform]:
        thresholds = self._platform_thresholds[publisher_id]
        chosen = {
            platform
            for platform, curve in cal.PLATFORM_ADOPTION.items()
            if supports(curve, thresholds[platform], t)
        }
        if not chosen:
            chosen.add(Platform.BROWSER)
        return frozenset(chosen)

    def profile_at(self, publisher_id: str, t: float) -> PublisherProfile:
        """Full management-plane profile at study progress t."""
        publisher = self._publishers[publisher_id]
        platforms = self.platforms_at(publisher_id, t)
        protocols = self.protocols_at(publisher_id, t)
        models = frozenset(
            model
            for model in self._device_models[publisher_id]
            if self._registry.platform_of(model) in platforms
        )
        sdk_names_active = {
            self._registry.lookup(model).sdk_name
            for model in models
            if self._registry.lookup(model).sdk_name
        }
        sdks = frozenset(
            sdk
            for sdk in self._sdks[publisher_id]
            if sdk.name in sdk_names_active
        )
        return PublisherProfile(
            publisher=publisher,
            protocols=protocols,
            platforms=platforms,
            cdn_assignments=self._cdns_at(publisher_id, t),
            sdks=sdks,
            device_models=models,
        )

    def _cdns_at(self, publisher_id: str, t: float) -> Tuple[CdnAssignment, ...]:
        """Active CDN prefix at study progress t.

        Publishers add CDNs over the study — Fig 12c's weighted average
        grows from ~2 toward 4.5 — so the assignment list is orderly:
        the first entry (usually CDN A, always serving both content
        types) is active from day one and later entries activate as the
        publisher grows its delivery footprint.
        """
        assignments = self._cdn_assignments[publisher_id]
        start = self._cdn_start_counts[publisher_id]
        count = int(round(start + (len(assignments) - start) * t))
        count = min(max(count, 1), len(assignments))
        return assignments[:count]

    def _platforms_ever(self, publisher_id: str) -> FrozenSet[Platform]:
        """Platforms supported at any point (union over the study)."""
        return self.platforms_at(publisher_id, 0.0) | self.platforms_at(
            publisher_id, 1.0
        )

    # ------------------------------------------------------------------
    # Static draws
    # ------------------------------------------------------------------

    def _draw_cdns(
        self, rng: np.random.Generator, publisher: Publisher
    ) -> Tuple[CdnAssignment, ...]:
        decade = size_decade(publisher.daily_view_hours)
        expected = cal.CDN_COUNT_BY_DECADE[decade]
        count = int(round(expected + float(rng.normal(0.0, 0.45))))
        if decade == 0:
            count = 1
        elif decade >= len(cal.CDN_COUNT_BY_DECADE) - 1:
            count = max(count, 4)
        count = min(max(count, 1), 5)

        names = self._sample_cdn_names(rng, count, publisher)
        # Activate popular CDNs first: the early prefix is then A/C/B,
        # keeping Fig 11a's per-CDN publisher shares roughly steady
        # while the footprint grows.
        rank = {name: i for i, name in enumerate(TOP_CDN_NAMES)}
        names.sort(key=lambda name: rank.get(name, len(rank)))
        assignments = [
            CdnAssignment(cdn=CDN(name=name, uses_anycast=(name == "B")))
            for name in names
        ]
        assignments = self._apply_content_split(rng, publisher, assignments)
        # Multi-CDN publishers grew into their footprint over the study
        # (Fig 12c): the largest publishers started ~1-3 CDNs lighter,
        # small publishers were static (so Fig 11a stays steady).
        growth = min(max(decade - 3, 0), 3)
        start_count = max(len(assignments) - growth, 1)
        return tuple(assignments), start_count

    @staticmethod
    def _sample_cdn_names(
        rng: np.random.Generator, count: int, publisher: Publisher
    ) -> List[str]:
        pool = list(TOP_CDN_NAMES)
        weights = [cal.CDN_POPULARITY[name] for name in pool]
        names: List[str] = []
        for _ in range(count):
            # With a small probability, one slot goes to the long tail of
            # regional/private CDNs (31 of the 36 CDNs in the dataset).
            if rng.uniform() < 0.17 or not pool:
                if rng.uniform() < 0.2:
                    names.append(f"P_{publisher.publisher_id}")  # private CDN
                else:
                    names.append(
                        REGIONAL_CDN_NAMES[
                            int(rng.integers(len(REGIONAL_CDN_NAMES)))
                        ]
                    )
                continue
            probs = np.asarray(weights) / sum(weights)
            idx = int(rng.choice(len(pool), p=probs))
            names.append(pool.pop(idx))
            weights.pop(idx)
        # De-duplicate while preserving order (tail draws can repeat).
        unique: List[str] = []
        for name in names:
            if name not in unique:
                unique.append(name)
        return unique

    @staticmethod
    def _apply_content_split(
        rng: np.random.Generator,
        publisher: Publisher,
        assignments: List[CdnAssignment],
    ) -> List[CdnAssignment]:
        """Mark some CDNs live-only/VoD-only (§4.3: 30% / 19%)."""
        both_types = publisher.serves_live and publisher.serves_vod
        if not both_types or len(assignments) < 2:
            return assignments
        result = list(assignments)
        # Index 0 always serves both types so that any time-sliced
        # prefix of the assignment list covers the publisher's content.
        vod_marked = False
        if rng.uniform() < cal.VOD_ONLY_CDN_PROB:
            result[1] = CdnAssignment(
                cdn=result[1].cdn,
                content_types=frozenset({ContentType.VOD}),
            )
            vod_marked = True
        can_mark_live = len(result) >= 3 or not vod_marked
        if can_mark_live and rng.uniform() < cal.LIVE_ONLY_CDN_PROB:
            result[-1] = CdnAssignment(
                cdn=result[-1].cdn,
                content_types=frozenset({ContentType.LIVE}),
            )
        return result

    def _draw_devices(
        self,
        rng: np.random.Generator,
        publisher: Publisher,
        platforms: FrozenSet[Platform],
    ) -> FrozenSet[str]:
        decade = size_decade(publisher.daily_view_hours)
        per_family = cal.DEVICES_PER_CELL_BY_DECADE[decade]
        # Small publishers keep a minimal player fleet: mainstream
        # browser players and device families only.  Niche families are
        # a large-publisher luxury; without this, every publisher's
        # maintenance surface has the same floor and the Fig 13c slope
        # flattens out.
        niche_families = {
            "silverlight",
            "other_plugin",
            "other_settop",
            "other_tv",
            "other_console",
            "other_mobile",
            "chromecast",
        }
        models: List[str] = []
        for platform in sorted(platforms, key=lambda p: p.value):
            for family in self._registry.families(platform):
                if decade < 3 and family in niche_families:
                    continue
                family_models = [
                    model
                    for model in self._registry.models(platform)
                    if self._registry.lookup(model).family == family
                ]
                take = min(per_family, len(family_models))
                picked = rng.choice(
                    len(family_models), size=take, replace=False
                )
                models.extend(family_models[int(i)] for i in picked)
        return frozenset(models)

    def _draw_sdks(
        self,
        rng: np.random.Generator,
        publisher: Publisher,
        publisher_id: str,
    ) -> FrozenSet[SDK]:
        """Allocate SDK versions: total sub-linear in view-hours."""
        total = cal.SDK_BASE * (
            publisher.daily_view_hours / cal.VIEW_HOUR_BASE_X
        ) ** cal.SDK_EXP
        total = max(
            int(round(total * float(np.exp(rng.normal(0.0, 0.25))))), 1
        )
        sdk_names = sorted(
            {
                self._registry.lookup(model).sdk_name
                for model in self._device_models[publisher_id]
                if self._registry.lookup(model).sdk_name
            }
        )
        if not sdk_names:
            return frozenset()
        sdks: List[SDK] = []
        base, remainder = divmod(total, len(sdk_names))
        for i, name in enumerate(sdk_names):
            versions = base + (1 if i < remainder else 0)
            versions = min(max(versions, 1), len(_SDK_VERSION_POOL))
            start_max = len(_SDK_VERSION_POOL) - versions
            start = int(rng.integers(0, start_max + 1))
            for offset in range(versions):
                sdks.append(
                    SDK(name=name, version=_SDK_VERSION_POOL[start + offset])
                )
        return frozenset(sdks)
