"""Synthetic ecosystem generation (the proprietary-data substitute).

Calibrated to the paper's reported statistics; see
``repro.synthesis.calibration`` for the full target list and DESIGN.md
for the substitution rationale.
"""

from repro.synthesis.calibration import (
    DEFAULT_CONFIG,
    EcosystemConfig,
    PAPER,
    PaperTargets,
)
from repro.synthesis.generator import (
    EcosystemGenerator,
    EcosystemResult,
    generate_default_dataset,
)
from repro.synthesis.syndication import CaseStudy
from repro.synthesis.trends import AdoptionCurve, LinearDrift

__all__ = [
    "DEFAULT_CONFIG",
    "EcosystemConfig",
    "PAPER",
    "PaperTargets",
    "EcosystemGenerator",
    "EcosystemResult",
    "generate_default_dataset",
    "CaseStudy",
    "AdoptionCurve",
    "LinearDrift",
]
