"""Top-level ecosystem generator.

``EcosystemGenerator(config).generate()`` produces an
:class:`EcosystemResult`: the telemetry dataset (the Conviva-data
substitute) plus the ground-truth side information the §5/§6 analyses
legitimately had access to in the paper (catalogue sizes per publisher,
the syndication case-study definition, which publishers drive DASH).

Snapshot synthesis is embarrassingly parallel: every snapshot draws
from its own RNG stream, derived via
``np.random.SeedSequence(seed).spawn(...)``, and the sampler resets its
per-snapshot state between batches.  ``generate(jobs=N)`` fans the
snapshot loop out through :func:`repro.parallel.parallel_map`;
because each stream is independent of execution order, a parallel build
is byte-identical to the serial one (the determinism suite asserts
equality of the saved JSONL and of every figure's rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from functools import lru_cache, partial
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.parallel import parallel_map
from repro.constants import Protocol
from repro.entities.device import DeviceRegistry, default_registry
from repro.entities.publisher import Publisher, PublisherProfile
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.population import generate_publishers
from repro.synthesis.portfolios import PortfolioAssigner
from repro.synthesis.sessions import SessionSampler
from repro.synthesis.syndication import (
    CaseStudy,
    assign_case_study,
    build_syndication_graph,
    invert_graph,
)
from repro.telemetry.dataset import Dataset
from repro.telemetry.records import ViewRecord
from repro.telemetry.snapshots import SnapshotSchedule, default_schedule


@dataclass
class EcosystemResult:
    """One synthetic dataset build plus its ground truth."""

    dataset: Dataset
    publishers: Tuple[Publisher, ...]
    schedule: SnapshotSchedule
    snapshots: Tuple[date, ...]
    dash_driver_ids: FrozenSet[str]
    top3_ids: FrozenSet[str]
    syndication_graph: Mapping[str, FrozenSet[str]]
    catalogue_sizes: Mapping[str, int]
    case_study: Optional[CaseStudy]
    config: cal.EcosystemConfig

    def __post_init__(self) -> None:
        self._publisher_index: Dict[str, Publisher] = {
            p.publisher_id: p for p in self.publishers
        }

    def publisher(self, publisher_id: str) -> Publisher:
        try:
            return self._publisher_index[publisher_id]
        except KeyError:
            raise KeyError(f"unknown publisher {publisher_id!r}") from None


@dataclass
class _SynthesisPlan:
    """The deterministic pre-snapshot state of one build.

    Everything here is a pure function of the config (all RNG the plan
    consumes comes from ``default_rng(config.seed)`` in a fixed order),
    so parallel workers rebuild it bit-for-bit from the config alone.
    """

    publishers: List[Publisher]
    sampler: SessionSampler
    schedule: SnapshotSchedule
    snapshots: Tuple[date, ...]
    dash_driver_ids: FrozenSet[str]
    top3_ids: FrozenSet[str]
    syndication_graph: Mapping[str, FrozenSet[str]]
    case_study: Optional[CaseStudy]


def _build_plan(config: cal.EcosystemConfig) -> _SynthesisPlan:
    """Consume the seed-stream prefix: population, portfolios, graph."""
    rng = np.random.default_rng(config.seed)
    registry = default_registry()
    with obs.span("synthesis.population"):
        publishers = generate_publishers(rng, config.n_publishers)
    obs.gauge("synthesis.publishers").set(len(publishers))
    assigner = PortfolioAssigner(rng, publishers, registry)

    ranked = sorted(
        publishers, key=lambda p: p.daily_view_hours, reverse=True
    )
    top3_ids = frozenset(p.publisher_id for p in ranked[:3])
    dash_drivers = frozenset(
        p.publisher_id for p in ranked[: config.dash_driver_count]
    )
    for publisher_id in dash_drivers:
        # The drivers adopted DASH early and, per Fig 3b's right-most
        # bar, the biggest publishers consolidated onto two protocols
        # (HLS + DASH) by the latest snapshot.
        assigner.force_protocol(publisher_id, Protocol.DASH, 0.05)
        assigner.force_protocol(publisher_id, Protocol.MSS, 0.99)
        assigner.force_protocol(publisher_id, Protocol.HDS, 0.99)

    graph = build_syndication_graph(rng, publishers)
    case_study: Optional[CaseStudy] = None
    if config.include_case_study:
        case_study = assign_case_study(rng, publishers, graph)
        # Every participant stores the catalogue on the common CDNs
        # (Fig 18), so their QoE views on A/B are self-consistent.
        for label in ("O",) + case_study.syndicator_labels:
            assigner.ensure_cdns(
                case_study.publisher_id(label),
                cal.STORAGE_STUDY_COMMON_CDNS,
            )
    syndicator_owners = invert_graph(graph)

    sampler = SessionSampler(
        rng=rng,
        publishers=publishers,
        assigner=assigner,
        registry=registry,
        dash_driver_ids=dash_drivers,
        top3_ids=top3_ids,
        syndicator_owners=syndicator_owners,
        case_study=case_study,
    )

    schedule = default_schedule()
    snapshots = _select_snapshots(config, schedule)
    return _SynthesisPlan(
        publishers=publishers,
        sampler=sampler,
        schedule=schedule,
        snapshots=snapshots,
        dash_driver_ids=dash_drivers,
        top3_ids=top3_ids,
        syndication_graph=graph,
        case_study=case_study,
    )


def _select_snapshots(
    config: cal.EcosystemConfig, schedule: SnapshotSchedule
) -> Tuple[date, ...]:
    """Full bi-weekly schedule, or an evenly spaced subset.

    ``snapshot_limit`` thins the schedule for fast test builds; the
    first and last snapshots are always kept because the trend
    analyses anchor on them.
    """
    dates = schedule.dates()
    limit = config.snapshot_limit
    if limit == 0 or limit >= len(dates):
        return tuple(dates)
    if limit < 2:
        raise CalibrationError("snapshot_limit must be 0 or >= 2")
    positions = np.linspace(0, len(dates) - 1, limit)
    return tuple(dates[int(round(p))] for p in positions)


def _snapshot_streams(
    seed: int, n_snapshots: int
) -> List[np.random.SeedSequence]:
    """One independent child stream per snapshot, plus one for the
    §6 case-study batch (the last entry)."""
    return np.random.SeedSequence(seed).spawn(n_snapshots + 1)


def _snapshot_t(index: int, n_snapshots: int) -> float:
    last = n_snapshots - 1
    return index / last if last > 0 else 1.0


@lru_cache(maxsize=1)
def _plan_for(config: cal.EcosystemConfig) -> _SynthesisPlan:
    """Per-process plan memo: a pure function of the (frozen) config.

    ``_build_plan`` consumes only ``default_rng(config.seed)`` in a
    fixed order, so memoization is semantically invisible — any
    process rebuilds bit-for-bit from the config alone.  Under the
    ``fork`` start method workers inherit the parent's warm cache;
    under ``spawn`` each worker fills it once.  (A hand-rolled global
    cache here is exactly what repgraph's RPL104 rejects: the analyzer
    cannot prove an ad-hoc mutable global safe, but an ``lru_cache``
    over a pure builder it can.)
    """
    return _build_plan(config)


def _snapshot_batch(
    config: cal.EcosystemConfig, index: int
) -> List[ViewRecord]:
    """Worker entry point: all records of snapshot ``index``."""
    plan = _plan_for(config)
    streams = _snapshot_streams(config.seed, len(plan.snapshots))
    return plan.sampler.snapshot_records(
        plan.snapshots[index],
        _snapshot_t(index, len(plan.snapshots)),
        scale=config.records_scale,
        rng=np.random.default_rng(streams[index]),
    )


class EcosystemGenerator:
    """Builds a deterministic synthetic video ecosystem."""

    def __init__(
        self, config: Optional[cal.EcosystemConfig] = None
    ) -> None:
        self.config = config or cal.DEFAULT_CONFIG
        cal.validate_calibration()

    def generate(self, jobs: int = 1) -> EcosystemResult:
        """Generate the dataset and ground truth for this config.

        ``jobs`` > 1 synthesizes snapshots on a process pool; the
        output is byte-identical to the serial build.
        """
        with obs.span(
            "synthesis.generate", seed=self.config.seed, jobs=jobs
        ) as span:
            result = self._generate(jobs)
            span.set(
                records=len(result.dataset),
                snapshots=len(result.snapshots),
                publishers=len(result.publishers),
            )
        return result

    def _generate(self, jobs: int = 1) -> EcosystemResult:
        config = self.config
        if jobs < 1:
            raise CalibrationError("jobs must be >= 1")
        # The parent always builds fresh (each build re-emits the
        # synthesis.* spans) and leaves the memo warm for the pool.
        _plan_for.cache_clear()
        plan = _plan_for(config)
        snapshots = plan.snapshots
        streams = _snapshot_streams(config.seed, len(snapshots))
        obs.gauge("synthesis.workers").set(jobs)

        record_counter = obs.counter("synthesis.records")
        snapshot_counter = obs.counter("synthesis.snapshots")
        records: List[ViewRecord] = []
        if jobs == 1 or len(snapshots) <= 1:
            for index, snapshot in enumerate(snapshots):
                with obs.span(
                    "synthesis.snapshot", snapshot=snapshot.isoformat()
                ) as span:
                    batch = plan.sampler.snapshot_records(
                        snapshot,
                        _snapshot_t(index, len(snapshots)),
                        scale=config.records_scale,
                        rng=np.random.default_rng(streams[index]),
                    )
                    span.set(records=len(batch))
                record_counter.inc(len(batch))
                snapshot_counter.inc()
                records.extend(batch)
        else:
            # ``plan`` above already warmed the per-process memo, so
            # forked workers inherit it and skip the rebuild entirely.
            with obs.span(
                "synthesis.snapshot_pool", workers=jobs
            ) as span:
                batches = parallel_map(
                    partial(_snapshot_batch, config),
                    list(range(len(snapshots))),
                    jobs=jobs,
                )
                span.set(records=sum(len(b) for b in batches))
            for batch in batches:
                record_counter.inc(len(batch))
                snapshot_counter.inc()
                records.extend(batch)

        if plan.case_study is not None:
            with obs.span("synthesis.case_study") as span:
                batch = plan.sampler.case_study_records(
                    snapshots[-1],
                    config.qoe_sessions,
                    rng=np.random.default_rng(streams[-1]),
                )
                span.set(records=len(batch))
            record_counter.inc(len(batch))
            records.extend(batch)

        return EcosystemResult(
            dataset=Dataset(records),
            publishers=tuple(plan.publishers),
            schedule=plan.schedule,
            snapshots=tuple(snapshots),
            dash_driver_ids=plan.dash_driver_ids,
            top3_ids=plan.top3_ids,
            syndication_graph=plan.syndication_graph,
            catalogue_sizes={
                p.publisher_id: p.catalogue_size for p in plan.publishers
            },
            case_study=plan.case_study,
            config=config,
        )


def generate_default_dataset(
    seed: int = 2018, snapshot_limit: int = 0, jobs: int = 1
) -> EcosystemResult:
    """Convenience wrapper used by examples, tests and benches."""
    config = cal.EcosystemConfig(seed=seed, snapshot_limit=snapshot_limit)
    return EcosystemGenerator(config).generate(jobs=jobs)
