"""Top-level ecosystem generator.

``EcosystemGenerator(config).generate()`` produces an
:class:`EcosystemResult`: the telemetry dataset (the Conviva-data
substitute) plus the ground-truth side information the §5/§6 analyses
legitimately had access to in the paper (catalogue sizes per publisher,
the syndication case-study definition, which publishers drive DASH).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.constants import Protocol
from repro.entities.device import DeviceRegistry, default_registry
from repro.entities.publisher import Publisher, PublisherProfile
from repro.errors import CalibrationError
from repro.synthesis import calibration as cal
from repro.synthesis.population import generate_publishers
from repro.synthesis.portfolios import PortfolioAssigner
from repro.synthesis.sessions import SessionSampler
from repro.synthesis.syndication import (
    CaseStudy,
    assign_case_study,
    build_syndication_graph,
    invert_graph,
)
from repro.telemetry.dataset import Dataset
from repro.telemetry.records import ViewRecord
from repro.telemetry.snapshots import SnapshotSchedule, default_schedule


@dataclass
class EcosystemResult:
    """One synthetic dataset build plus its ground truth."""

    dataset: Dataset
    publishers: Tuple[Publisher, ...]
    schedule: SnapshotSchedule
    snapshots: Tuple[date, ...]
    dash_driver_ids: FrozenSet[str]
    top3_ids: FrozenSet[str]
    syndication_graph: Mapping[str, FrozenSet[str]]
    catalogue_sizes: Mapping[str, int]
    case_study: Optional[CaseStudy]
    config: cal.EcosystemConfig

    def publisher(self, publisher_id: str) -> Publisher:
        for candidate in self.publishers:
            if candidate.publisher_id == publisher_id:
                return candidate
        raise KeyError(f"unknown publisher {publisher_id!r}")


class EcosystemGenerator:
    """Builds a deterministic synthetic video ecosystem."""

    def __init__(
        self, config: Optional[cal.EcosystemConfig] = None
    ) -> None:
        self.config = config or cal.DEFAULT_CONFIG
        cal.validate_calibration()

    def generate(self) -> EcosystemResult:
        """Generate the dataset and ground truth for this config."""
        with obs.span(
            "synthesis.generate", seed=self.config.seed
        ) as span:
            result = self._generate()
            span.set(
                records=len(result.dataset),
                snapshots=len(result.snapshots),
                publishers=len(result.publishers),
            )
        return result

    def _generate(self) -> EcosystemResult:
        config = self.config
        rng = np.random.default_rng(config.seed)
        registry = default_registry()
        with obs.span("synthesis.population"):
            publishers = generate_publishers(rng, config.n_publishers)
        obs.gauge("synthesis.publishers").set(len(publishers))
        assigner = PortfolioAssigner(rng, publishers, registry)

        ranked = sorted(
            publishers, key=lambda p: p.daily_view_hours, reverse=True
        )
        top3_ids = frozenset(p.publisher_id for p in ranked[:3])
        dash_drivers = frozenset(
            p.publisher_id for p in ranked[: config.dash_driver_count]
        )
        for publisher_id in dash_drivers:
            # The drivers adopted DASH early and, per Fig 3b's right-most
            # bar, the biggest publishers consolidated onto two protocols
            # (HLS + DASH) by the latest snapshot.
            assigner.force_protocol(publisher_id, Protocol.DASH, 0.05)
            assigner.force_protocol(publisher_id, Protocol.MSS, 0.99)
            assigner.force_protocol(publisher_id, Protocol.HDS, 0.99)

        graph = build_syndication_graph(rng, publishers)
        case_study: Optional[CaseStudy] = None
        if config.include_case_study:
            case_study = assign_case_study(rng, publishers, graph)
            # Every participant stores the catalogue on the common CDNs
            # (Fig 18), so their QoE views on A/B are self-consistent.
            for label in ("O",) + case_study.syndicator_labels:
                assigner.ensure_cdns(
                    case_study.publisher_id(label),
                    cal.STORAGE_STUDY_COMMON_CDNS,
                )
        syndicator_owners = invert_graph(graph)

        sampler = SessionSampler(
            rng=rng,
            publishers=publishers,
            assigner=assigner,
            registry=registry,
            dash_driver_ids=dash_drivers,
            top3_ids=top3_ids,
            syndicator_owners=syndicator_owners,
            case_study=case_study,
        )

        schedule = default_schedule()
        snapshots = self._select_snapshots(schedule)
        records: List[ViewRecord] = []
        last_index = len(snapshots) - 1
        record_counter = obs.counter("synthesis.records")
        snapshot_counter = obs.counter("synthesis.snapshots")
        for index, snapshot in enumerate(snapshots):
            t = index / last_index if last_index > 0 else 1.0
            with obs.span(
                "synthesis.snapshot", snapshot=snapshot.isoformat()
            ) as span:
                batch = sampler.snapshot_records(
                    snapshot, t, scale=config.records_scale
                )
                span.set(records=len(batch))
            record_counter.inc(len(batch))
            snapshot_counter.inc()
            records.extend(batch)
        if case_study is not None:
            with obs.span("synthesis.case_study") as span:
                batch = sampler.case_study_records(
                    snapshots[-1], config.qoe_sessions
                )
                span.set(records=len(batch))
            record_counter.inc(len(batch))
            records.extend(batch)

        return EcosystemResult(
            dataset=Dataset(records),
            publishers=tuple(publishers),
            schedule=schedule,
            snapshots=tuple(snapshots),
            dash_driver_ids=dash_drivers,
            top3_ids=top3_ids,
            syndication_graph=graph,
            catalogue_sizes={
                p.publisher_id: p.catalogue_size for p in publishers
            },
            case_study=case_study,
            config=config,
        )

    def _select_snapshots(
        self, schedule: SnapshotSchedule
    ) -> Tuple[date, ...]:
        """Full bi-weekly schedule, or an evenly spaced subset.

        ``snapshot_limit`` thins the schedule for fast test builds; the
        first and last snapshots are always kept because the trend
        analyses anchor on them.
        """
        dates = schedule.dates()
        limit = self.config.snapshot_limit
        if limit == 0 or limit >= len(dates):
            return tuple(dates)
        if limit < 2:
            raise CalibrationError("snapshot_limit must be 0 or >= 2")
        positions = np.linspace(0, len(dates) - 1, limit)
        return tuple(dates[int(round(p))] for p in positions)


def generate_default_dataset(
    seed: int = 2018, snapshot_limit: int = 0
) -> EcosystemResult:
    """Convenience wrapper used by examples, tests and benches."""
    config = cal.EcosystemConfig(seed=seed, snapshot_limit=snapshot_limit)
    return EcosystemGenerator(config).generate()
