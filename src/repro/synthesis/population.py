"""Publisher population generation.

Sizes are spread over seven decades of daily view-hours (Figs 3b/9b/12b
x-axis) with the modal decade at 100X-1000X; roles (content owner /
full syndicator) follow §6's prevalence; the live/VoD mix allows the
§4.3 live-vs-VoD CDN segregation analysis; catalogue sizes follow the
sub-linear title model behind Fig 13b.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.constants import SyndicationRole
from repro.entities.publisher import Publisher
from repro.synthesis import calibration as cal


def draw_view_hours(rng: np.random.Generator, n: int) -> np.ndarray:
    """Daily view-hours for n publishers across the decade buckets."""
    fractions = np.asarray(cal.SIZE_BUCKET_FRACTIONS)
    decades = rng.choice(len(fractions), size=n, p=fractions)
    # Log-uniform within each decade bucket; bucket 0 is (0.1X, X].
    lo = cal.VIEW_HOUR_BASE_X * 10.0 ** (decades - 1.0)
    hi = cal.VIEW_HOUR_BASE_X * 10.0**decades
    # The top bucket is open-ended (">1e5 X") but bounded so that the
    # aggregate stays near the paper's ~0.06B daily view-hours (§3).
    top = len(fractions) - 1
    hi = np.where(decades == top, lo * 3.0, hi)
    # Keep draws away from bucket edges: measured view-hours carry
    # ~10-30% sampling noise, and edge-hugging publishers would migrate
    # buckets between the assigned and the observed distribution
    # (Figs 3b/9b/12b bucket publishers by *observed* view-hours).
    u = rng.uniform(0.12, 0.88, size=n)
    return np.exp(np.log(lo) + u * (np.log(hi) - np.log(lo)))


def size_decade(view_hours: float) -> int:
    """Decade-bucket index of a daily view-hours value."""
    if view_hours <= cal.VIEW_HOUR_BASE_X:
        return 0
    idx = int(
        math.ceil(math.log10(view_hours / cal.VIEW_HOUR_BASE_X) - 1e-12)
    )
    return min(idx, len(cal.SIZE_BUCKET_FRACTIONS) - 1)


def size_rank_percentile(view_hours: float) -> float:
    """Smooth size percentile in [0, 1] across the seven decades."""
    span = float(len(cal.SIZE_BUCKET_FRACTIONS))
    if view_hours <= 0:
        return 0.0
    decades = math.log10(max(view_hours / cal.VIEW_HOUR_BASE_X, 1e-9)) + 1.0
    return min(max(decades / span, 0.0), 1.0)


def catalogue_size(view_hours: float, rng: np.random.Generator) -> int:
    """Distinct titles for a publisher: sub-linear in view-hours."""
    mean = cal.CATALOGUE_BASE * (
        view_hours / cal.VIEW_HOUR_BASE_X
    ) ** cal.CATALOGUE_EXP
    noisy = mean * float(np.exp(rng.normal(0.0, 0.35)))
    return max(int(round(noisy)), 3)


def generate_publishers(
    rng: np.random.Generator, n_publishers: int
) -> List[Publisher]:
    """Generate the anonymized publisher population.

    Publisher IDs are ordered by size rank (pub_000 is the largest), a
    convenience for tests; analyses never rely on the ordering.
    """
    view_hours = np.sort(draw_view_hours(rng, n_publishers))[::-1]
    roles = _draw_roles(rng, n_publishers)
    publishers: List[Publisher] = []
    for i in range(n_publishers):
        vh = float(view_hours[i])
        serves_live = bool(rng.uniform() < 0.45)
        serves_vod = bool(rng.uniform() < 0.92) or not serves_live
        publishers.append(
            Publisher(
                publisher_id=f"pub_{i:03d}",
                daily_view_hours=vh,
                role=roles[i],
                serves_live=serves_live,
                serves_vod=serves_vod,
                catalogue_size=catalogue_size(vh, rng),
            )
        )
    return publishers


def _draw_roles(
    rng: np.random.Generator, n: int
) -> List[SyndicationRole]:
    """Assign owner / full-syndicator / neither roles (§6 prevalence)."""
    roles: List[SyndicationRole] = []
    for _ in range(n):
        u = rng.uniform()
        if u < cal.OWNER_FRACTION:
            roles.append(SyndicationRole.OWNER)
        elif u < cal.OWNER_FRACTION + cal.SYNDICATOR_FRACTION:
            roles.append(SyndicationRole.FULL_SYNDICATOR)
        else:
            roles.append(SyndicationRole.NONE)
    if not any(r is SyndicationRole.FULL_SYNDICATOR for r in roles):
        roles[-1] = SyndicationRole.FULL_SYNDICATOR
    if not any(r is SyndicationRole.OWNER for r in roles):
        roles[0] = SyndicationRole.OWNER
    return roles
