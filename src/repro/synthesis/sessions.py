"""View-record sampling: turning portfolios into telemetry.

For every publisher and snapshot, the sampler enumerates the
(platform, protocol) cells the publisher's management plane serves,
splits the publisher's two-day view-hours across those cells using the
calibrated time-varying weights, and emits weighted view records with
realistic URLs, devices, SDK versions, CDNs, durations and QoE.

The §6 case-study records (Figs 15-17) are generated separately via the
playback simulator so that owner/syndicator QoE differences *emerge*
from their ladder choices rather than being painted on.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtri

from repro.constants import (
    ConnectionType,
    ContentType,
    Platform,
    Protocol,
    SyndicationRole,
)
from repro.delivery.network import default_isp_profiles
from repro.entities.device import Device, DeviceRegistry
from repro.entities.ladder import BitrateLadder
from repro.entities.publisher import Publisher, PublisherProfile
from repro.packaging.manifest.detect import sample_manifest_url
from repro.playback.abr import ThroughputAbr
from repro.playback.session import SessionConfig, simulate_session
from repro.playback.useragent import build_user_agent
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import (
    case_video_id,
    publisher_ladder,
    sample_video_index,
    video_id_for,
)
from repro.synthesis.population import size_decade, size_rank_percentile
from repro.synthesis.portfolios import PortfolioAssigner
from repro.synthesis.syndication import CaseStudy
from repro.telemetry.records import ViewRecord

_FAMILY_WEIGHTS = {
    Platform.BROWSER: cal.BROWSER_FAMILY_WEIGHT,
    Platform.MOBILE: cal.MOBILE_FAMILY_WEIGHT,
    Platform.SET_TOP: cal.SET_TOP_FAMILY_WEIGHT,
    Platform.SMART_TV: cal.SMART_TV_FAMILY_WEIGHT,
    Platform.CONSOLE: cal.CONSOLE_FAMILY_WEIGHT,
}

#: Median device-side throughput per platform (kbps), for the plain
#: records' QoE fields (the case study uses the full simulator).
_PLATFORM_THROUGHPUT_MEDIAN = {
    Platform.BROWSER: 6_000.0,
    Platform.MOBILE: 4_500.0,
    Platform.SET_TOP: 12_000.0,
    Platform.SMART_TV: 10_000.0,
    Platform.CONSOLE: 8_000.0,
}

_APPLE_FAMILIES = frozenset({"ios", "appletv"})


class SessionSampler:
    """Samples weighted view records for the whole study."""

    def __init__(
        self,
        rng: np.random.Generator,
        publishers: Sequence[Publisher],
        assigner: PortfolioAssigner,
        registry: DeviceRegistry,
        dash_driver_ids: FrozenSet[str],
        top3_ids: FrozenSet[str],
        syndicator_owners: Mapping[str, Tuple[str, ...]],
        case_study: Optional[CaseStudy] = None,
    ) -> None:
        self._rng = rng
        self._publishers = {p.publisher_id: p for p in publishers}
        self._assigner = assigner
        self._registry = registry
        self._dash_drivers = dash_driver_ids
        self._top3 = top3_ids
        self._syndicator_owners = dict(syndicator_owners)
        self._case_study = case_study
        self._ladders: Dict[str, BitrateLadder] = {
            p.publisher_id: publisher_ladder(rng, p) for p in publishers
        }
        self._live_share: Dict[str, float] = {
            p.publisher_id: float(rng.beta(2.0, 4.0)) for p in publishers
        }
        self._sdk_cursor: Dict[Tuple[str, str], int] = {}
        self._sdk_versions: Dict[Tuple[str, str], List[str]] = {}
        self._duration_strata_pool: Dict[
            Tuple[str, Platform, str], List[int]
        ] = {}

    # ------------------------------------------------------------------
    # Regular records
    # ------------------------------------------------------------------

    def snapshot_records(
        self,
        snapshot: date,
        t: float,
        scale: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ViewRecord]:
        """All records for one bi-weekly snapshot.

        When ``rng`` is given, the snapshot is sampled from that stream
        and all per-snapshot sampling state (SDK round-robin cursors,
        duration strata pools) is reset first.  Each snapshot is then a
        pure function of (construction-time state, snapshot stream), so
        snapshots can be generated out of order — or in parallel
        worker processes — and still match a serial build byte for
        byte.  The generator derives one stream per snapshot via
        ``np.random.SeedSequence(seed).spawn(...)``.
        """
        if rng is not None:
            self._rng = rng
            self._sdk_cursor.clear()
            self._duration_strata_pool.clear()
        records: List[ViewRecord] = []
        for publisher_id in sorted(self._publishers):
            records.extend(
                self._publisher_records(publisher_id, snapshot, t, scale)
            )
        return records

    def _publisher_records(
        self, publisher_id: str, snapshot: date, t: float, scale: float
    ) -> List[ViewRecord]:
        publisher = self._publishers[publisher_id]
        profile = self._assigner.profile_at(publisher_id, t)
        window_vh = publisher.daily_view_hours * 2.0 * scale
        platform_weights = self._platform_weights(publisher_id, profile, t)
        protocol_weights = self._protocol_weights(publisher_id, profile, t)
        records: List[ViewRecord] = []
        for platform, w_platform in platform_weights.items():
            for protocol, w_protocol in protocol_weights.items():
                if not self._compatible(platform, protocol):
                    continue
                cell_vh = window_vh * w_platform * w_protocol
                if cell_vh <= 0:
                    continue
                records.extend(
                    self._cell_records(
                        publisher,
                        profile,
                        platform,
                        protocol,
                        cell_vh,
                        snapshot,
                        t,
                    )
                )
        return records

    def _cell_records(
        self,
        publisher: Publisher,
        profile: PublisherProfile,
        platform: Platform,
        protocol: Protocol,
        cell_vh: float,
        snapshot: date,
        t: float,
    ) -> List[ViewRecord]:
        # Allocate the cell's view-hours to device families by the
        # calibrated family weights, then spread each family's share
        # over a rotating sample of its device models.  Splitting at
        # the family level keeps Fig 10's shares exact; sampling at the
        # model level keeps the combination metric's device breadth.
        by_family: Dict[str, List[Device]] = {}
        for device in self._eligible_devices(profile, platform):
            by_family.setdefault(device.family, []).append(device)
        if not by_family:
            return []
        family_weights = self._family_weight_map(platform, t)
        weights = {
            family: family_weights.get(family, 0.05)
            for family in sorted(by_family)
        }
        total_weight = sum(weights.values())
        decade = size_decade(publisher.daily_view_hours)
        per_family = cal.DEVICES_PER_CELL_BY_DECADE[decade]
        devices: List[Device] = []
        device_share: List[float] = []
        for family in sorted(by_family):
            models = by_family[family]
            take = min(per_family, len(models))
            picked = self._rng.choice(len(models), size=take, replace=False)
            family_share = weights[family] / total_weight
            for i in picked:
                devices.append(models[int(i)])
                device_share.append(family_share / take)
        records: List[ViewRecord] = []
        for device, share in zip(devices, device_share):
            for content_type, ct_share in self._content_split(publisher):
                vh = cell_vh * float(share) * ct_share
                # Split heavy cells into several duration draws: the
                # views-weighted duration CDF (Fig 8) is a
                # self-normalized estimator whose bias shrinks with the
                # effective number of draws behind the big publishers.
                splits = min(max(int(round(vh / 3e5)), 1), 6)
                for _ in range(splits):
                    record = self._make_record(
                        publisher,
                        profile,
                        platform,
                        protocol,
                        device,
                        content_type,
                        vh / splits,
                        snapshot,
                        t,
                    )
                    if record is not None:
                        records.append(record)
        return records

    def _make_record(
        self,
        publisher: Publisher,
        profile: PublisherProfile,
        platform: Platform,
        protocol: Protocol,
        device: Device,
        content_type: ContentType,
        vh: float,
        snapshot: date,
        t: float,
    ) -> Optional[ViewRecord]:
        rng = self._rng
        median, sigma = cal.VIEW_DURATION_LOGNORMAL[platform]
        duration = self._stratified_duration(
            publisher.publisher_id, platform, device.family, median, sigma
        )
        # weight x duration == the cell's exact view-hours, so every
        # share analysis sees the calibrated splits without sampling
        # noise; the tilted draw (see _stratified_duration) keeps the
        # views-weighted duration distribution on target.
        views = vh / duration
        cdns = self._pick_cdns(profile, content_type, t)
        if not cdns:
            return None
        video_id, is_syndicated, owner_id = self._pick_video(publisher)
        url = sample_manifest_url(
            protocol, video_id, f"{cdns[0].lower()}.cdn.example.net"
        )
        ladder = self._ladders[publisher.publisher_id]
        user_agent = None
        sdk_name = None
        sdk_version = None
        if platform is Platform.BROWSER:
            browser = device.model.split("-")[0]
            user_agent = build_user_agent(
                browser if browser != "ie11" else "ie11",
                major_version=55 + int(rng.integers(0, 30)),
            )
        else:
            sdk_name = device.sdk_name
            sdk_version = self._next_sdk_version(
                publisher.publisher_id, profile, sdk_name
            )
        throughput = float(
            np.exp(
                rng.normal(
                    np.log(_PLATFORM_THROUGHPUT_MEDIAN[platform]), 0.6
                )
            )
        )
        avg_bitrate = min(ladder.max_bitrate_kbps, throughput) * float(
            rng.uniform(0.72, 0.95)
        )
        rebuffer = float(rng.beta(1.2, 60.0))
        return ViewRecord(
            snapshot=snapshot,
            publisher_id=publisher.publisher_id,
            url=url,
            device_model=device.model,
            os_name=device.os_name,
            cdn_names=cdns,
            bitrate_ladder_kbps=ladder.bitrates_kbps,
            view_duration_hours=duration,
            avg_bitrate_kbps=avg_bitrate,
            rebuffer_ratio=rebuffer,
            content_type=content_type,
            video_id=video_id,
            weight=float(views),
            user_agent=user_agent,
            sdk_name=sdk_name,
            sdk_version=sdk_version,
            is_syndicated=is_syndicated,
            owner_id=owner_id,
            isp=f"isp_{int(rng.integers(0, 12)):02d}",
            geo=rng.choice(("CA", "NY", "TX", "UK", "DE", "IN", "BR")),
            connection=ConnectionType(
                rng.choice(("wifi", "4g", "wired"), p=(0.55, 0.25, 0.20))
            ),
        )

    #: Number of strata for duration sampling (see below).
    _DURATION_STRATA = 8

    def _stratified_duration(
        self,
        publisher_id: str,
        platform: Platform,
        family: str,
        median: float,
        sigma: float,
    ) -> float:
        """Length-biased lognormal duration draw, stratified.

        Records carry ``weight = view_hours / duration`` so that the
        calibrated view-hour splits are *exact*.  Weighting by 1/d
        tilts the observed duration distribution by a factor 1/d, so
        the draw itself is taken from the length-biased lognormal
        (median scaled by e^(sigma^2)); after 1/d weighting the
        views-weighted duration distribution is exactly the target
        lognormal of Fig 8.

        Draws cycle through shuffled quantile strata per (publisher,
        platform, family), which tempers the view-count noise of
        families with few records (Fig 6c).
        """
        key = (publisher_id, platform, family)
        pool = self._duration_strata_pool.get(key)
        if not pool:
            # Refill with a shuffled permutation: consecutive K draws
            # cover every stratum, but in random order, so strata never
            # align with the deterministic record-generation order.
            pool = list(
                self._rng.permutation(self._DURATION_STRATA)
            )
            self._duration_strata_pool[key] = pool
        stratum = int(pool.pop())
        u = (stratum + float(self._rng.uniform())) / self._DURATION_STRATA
        u = min(max(u, 1e-9), 1.0 - 1e-9)
        tilted_log_median = np.log(median) + sigma**2
        return float(np.exp(tilted_log_median + sigma * ndtri(u)))

    # ------------------------------------------------------------------
    # Weight helpers
    # ------------------------------------------------------------------

    def _platform_weights(
        self, publisher_id: str, profile: PublisherProfile, t: float
    ) -> Dict[Platform, float]:
        weights: Dict[Platform, float] = {}
        # Sorted iteration: frozenset order varies across processes
        # (enum hashes are identity-based), and RNG consumption order
        # must be deterministic for reproducible datasets.
        for platform in sorted(profile.platforms, key=lambda p: p.value):
            weight = cal.PLATFORM_WEIGHT[platform].level(t)
            if publisher_id in self._top3:
                weight *= cal.TOP3_PLATFORM_TILT[platform].level(t)
            weights[platform] = weight
        total = sum(weights.values())
        return {k: v / total for k, v in weights.items()}

    def _protocol_weights(
        self, publisher_id: str, profile: PublisherProfile, t: float
    ) -> Dict[Protocol, float]:
        size_pct = size_rank_percentile(
            self._publishers[publisher_id].daily_view_hours
        )
        spread = 1.0 + cal.PROTOCOL_SPREAD_BY_SIZE * size_pct
        weights: Dict[Protocol, float] = {}
        for protocol in sorted(profile.protocols, key=lambda p: p.value):
            weight = cal.PROTOCOL_BASE_WEIGHT[protocol]
            if protocol not in (Protocol.HLS, Protocol.DASH):
                # Larger publishers spread load across their protocols.
                # DASH stays shallow outside the drivers (Fig 2c/Fig 4):
                # its ecosystem was not yet mature for heavy use.
                weight *= spread
            if (
                protocol is Protocol.DASH
                and publisher_id in self._dash_drivers
            ):
                weight = cal.DASH_DRIVER_WEIGHT.level(t)
            if protocol is Protocol.RTMP:
                weight = cal.PROTOCOL_BASE_WEIGHT[protocol] * max(
                    1.0 - 0.95 * t, 0.02
                )
            weights[protocol] = weight
        total = sum(weights.values())
        return {k: v / total for k, v in weights.items()}

    @staticmethod
    def _compatible(platform: Platform, protocol: Protocol) -> bool:
        """RTMP playback needs Flash, i.e. a browser plugin (§4.1)."""
        if protocol is Protocol.RTMP:
            return platform is Platform.BROWSER
        return True

    def _content_split(
        self, publisher: Publisher
    ) -> List[Tuple[ContentType, float]]:
        if publisher.serves_live and publisher.serves_vod:
            live = self._live_share[publisher.publisher_id]
            return [
                (ContentType.LIVE, live),
                (ContentType.VOD, 1.0 - live),
            ]
        if publisher.serves_live:
            return [(ContentType.LIVE, 1.0)]
        return [(ContentType.VOD, 1.0)]

    def _family_weight_map(
        self, platform: Platform, t: float
    ) -> Dict[str, float]:
        return {
            family: drift.level(t)
            for family, drift in _FAMILY_WEIGHTS[platform].items()
        }

    def _eligible_devices(
        self, profile: PublisherProfile, platform: Platform
    ) -> List[Device]:
        """Supported device models of one platform, in stable order."""
        has_hls = Protocol.HLS in profile.protocols
        eligible = []
        for model in sorted(profile.device_models):
            device = self._registry.lookup(model)
            if device.platform is not platform:
                continue
            if not has_hls and device.family in _APPLE_FAMILIES:
                continue  # Apple devices require HLS (§2)
            eligible.append(device)
        return eligible

    def _pick_cdns(
        self, profile: PublisherProfile, content_type: ContentType, t: float
    ) -> Tuple[str, ...]:
        eligible = [
            a for a in profile.cdn_assignments if a.serves(content_type)
        ]
        if not eligible:
            return ()
        names = [a.cdn.name for a in eligible]
        weights = np.array(
            [
                cal.CDN_WEIGHT[name].level(t)
                if name in cal.CDN_WEIGHT
                else cal.CDN_WEIGHT["OTHER"].level(t)
                for name in names
            ]
        )
        probs = weights / weights.sum()
        first = str(self._rng.choice(names, p=probs))
        # A small fraction of views download chunks from two CDNs (§3).
        if len(names) > 1 and self._rng.uniform() < 0.06:
            others = [n for n in names if n != first]
            second = others[int(self._rng.integers(len(others)))]
            return (first, second)
        return (first,)

    def _pick_video(
        self, publisher: Publisher
    ) -> Tuple[str, bool, Optional[str]]:
        owners = self._syndicator_owners.get(publisher.publisher_id, ())
        if owners and self._rng.uniform() < cal.SYNDICATED_VIEW_SHARE:
            owner_id = owners[int(self._rng.integers(len(owners)))]
            owner = self._publishers[owner_id]
            index = sample_video_index(self._rng, owner.catalogue_size)
            return video_id_for(owner_id, index), True, owner_id
        index = sample_video_index(self._rng, publisher.catalogue_size)
        # Owned content carries the owned/syndicated flag of §6: owner-
        # role publishers reference themselves, so owners whose content
        # is never syndicated still appear in the Fig 14 population.
        owner_ref = (
            publisher.publisher_id
            if publisher.role is SyndicationRole.OWNER
            else None
        )
        return video_id_for(publisher.publisher_id, index), False, owner_ref

    def _next_sdk_version(
        self, publisher_id: str, profile: PublisherProfile, sdk_name: str
    ) -> str:
        """Round-robin through the publisher's versions of one SDK.

        Cycling guarantees that, given enough records, every maintained
        version shows up in telemetry — which is what lets the Fig 13c
        unique-SDKs metric be measured from the dataset.
        """
        key = (publisher_id, sdk_name)
        versions = self._sdk_versions.get(key)
        if versions is None:
            versions = sorted(
                sdk.version
                for sdk in self._assigner.profile_at(publisher_id, 1.0).sdks
                if sdk.name == sdk_name
            )
            if not versions:
                versions = ["1.0"]
            self._sdk_versions[key] = versions
        cursor = self._sdk_cursor.get(key, 0)
        self._sdk_cursor[key] = cursor + 1
        return versions[cursor % len(versions)]

    # ------------------------------------------------------------------
    # Case-study records (Figs 15-17)
    # ------------------------------------------------------------------

    def case_study_records(
        self,
        snapshot: date,
        sessions_per_combo: int,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ViewRecord]:
        """Simulated owner/syndicator sessions for the popular video.

        California iPad clients over WiFi, per (ISP, CDN) combination;
        network draws are paired across publishers so QoE differences
        come from the ladders alone.  Like :meth:`snapshot_records`,
        an explicit ``rng`` makes the batch independent of how many
        snapshots were sampled before it.
        """
        if rng is not None:
            self._rng = rng
        if self._case_study is None:
            return []
        study = self._case_study
        profiles = default_isp_profiles()
        abr = ThroughputAbr(safety=0.85)
        config = SessionConfig(
            view_seconds=900.0, chunk_seconds=6.0, max_buffer_seconds=20.0
        )
        records: List[ViewRecord] = []
        for isp_name, cdn_name in cal.QOE_COMBOS:
            path = profiles[isp_name].path_to(cdn_name)
            session_means = [
                path.sample_session_mean(self._rng)
                for _ in range(sessions_per_combo)
            ]
            for label in ("O",) + study.syndicator_labels:
                publisher_id = study.publisher_id(label)
                ladder = study.ladder(label)
                url = sample_manifest_url(
                    Protocol.HLS,
                    case_video_id(),
                    f"{cdn_name.lower()}.cdn.example.net",
                )
                for mean_kbps in session_means:
                    result = simulate_session(
                        ladder,
                        path,
                        config,
                        self._rng,
                        abr=abr,
                        session_mean_kbps=mean_kbps,
                    )
                    records.append(
                        ViewRecord(
                            snapshot=snapshot,
                            publisher_id=publisher_id,
                            url=url,
                            device_model="ipad",
                            os_name="ios",
                            cdn_names=(cdn_name,),
                            bitrate_ladder_kbps=ladder.bitrates_kbps,
                            view_duration_hours=config.view_seconds / 3600.0,
                            avg_bitrate_kbps=result.average_bitrate_kbps,
                            rebuffer_ratio=result.rebuffer_ratio,
                            content_type=ContentType.VOD,
                            video_id=case_video_id(),
                            weight=1.0,
                            sdk_name="AVFoundation",
                            sdk_version="10.2",
                            is_syndicated=(label != "O"),
                            owner_id=(
                                study.owner_id if label != "O" else None
                            ),
                            isp=isp_name,
                            geo="CA",
                            connection=ConnectionType.WIFI,
                        )
                    )
        return records
