"""Unit conversions and small numeric helpers.

The paper mixes units freely — bitrates in kbps (Fig 17), storage in TB
(Fig 18), view durations in hours (Fig 8), chunk durations in seconds.
Centralizing the conversions keeps the arithmetic auditable.
"""

from __future__ import annotations

from datetime import date, timedelta
from typing import Iterator

BITS_PER_BYTE = 8
KBPS = 1_000  # bits per second in one kbps
SECONDS_PER_HOUR = 3_600.0
BYTES_PER_TB = 10**12  # decimal terabyte, as used by CDN storage pricing


def kbps_to_bytes_per_second(kbps: float) -> float:
    """Convert a bitrate in kbps to a storage rate in bytes/second."""
    if kbps < 0:
        raise ValueError(f"bitrate must be non-negative, got {kbps}")
    return kbps * KBPS / BITS_PER_BYTE


def rendition_bytes(bitrate_kbps: float, duration_seconds: float) -> float:
    """Storage footprint in bytes of one encoded rendition of a video.

    This is the §6 storage model: encoded bitrate multiplied by duration.
    """
    if duration_seconds < 0:
        raise ValueError(f"duration must be non-negative, got {duration_seconds}")
    return kbps_to_bytes_per_second(bitrate_kbps) * duration_seconds


def bytes_to_tb(n_bytes: float) -> float:
    """Convert bytes to decimal terabytes (Fig 18 reports TB)."""
    return n_bytes / BYTES_PER_TB


def tb_to_bytes(tb: float) -> float:
    return tb * BYTES_PER_TB


def hours_to_seconds(hours: float) -> float:
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    return seconds / SECONDS_PER_HOUR


def biweekly_snapshot_dates(start: date, end: date) -> Iterator[date]:
    """Yield the bi-weekly snapshot dates used to sample the dataset (§4).

    The paper processes a sequence of two-day snapshots taken bi-weekly
    from January 2016 through March 2018; this yields the first day of
    each snapshot window, inclusive of ``start`` and any date <= ``end``.
    """
    if end < start:
        raise ValueError(f"end {end} precedes start {start}")
    current = start
    step = timedelta(days=14)
    while current <= end:
        yield current
        current += step


def months_between(start: date, end: date) -> float:
    """Approximate month count between two dates (for trend axes)."""
    return (end - start).days / 30.4375
