"""Domain constants for the video management plane.

The paper characterizes management planes along three dimensions:
packaging (streaming protocols), device playback (platforms and devices),
and content distribution (CDNs).  This module defines the closed
vocabularies for those dimensions, matching §2 and §4 of the paper.
"""

from __future__ import annotations

import enum


class Protocol(enum.Enum):
    """Streaming protocols observed in the dataset (§4.1, Table 1)."""

    HLS = "hls"
    DASH = "dash"
    MSS = "smoothstreaming"
    HDS = "hds"
    RTMP = "rtmp"
    PROGRESSIVE = "progressive"

    @property
    def is_http_adaptive(self) -> bool:
        """True for chunked HTTP adaptive-streaming protocols.

        §4.1 restricts most analyses to HTTP-based protocols; RTMP and
        progressive download are excluded after the opening prevalence
        numbers.
        """
        return self in _HTTP_ADAPTIVE

    @property
    def display_name(self) -> str:
        return _PROTOCOL_DISPLAY[self]


_HTTP_ADAPTIVE = frozenset(
    {Protocol.HLS, Protocol.DASH, Protocol.MSS, Protocol.HDS}
)

_PROTOCOL_DISPLAY = {
    Protocol.HLS: "HLS",
    Protocol.DASH: "DASH",
    Protocol.MSS: "SmoothStreaming",
    Protocol.HDS: "HDS",
    Protocol.RTMP: "RTMP",
    Protocol.PROGRESSIVE: "Progressive",
}

#: The four protocols tracked longitudinally in Figs 2-4.
HTTP_ADAPTIVE_PROTOCOLS = (
    Protocol.HLS,
    Protocol.DASH,
    Protocol.MSS,
    Protocol.HDS,
)


class Platform(enum.Enum):
    """Playback platform categories (§4.2, Fig 5).

    Browsers cover desktop/laptop/tablet/mobile browser viewing; the four
    app-based categories are mobile apps, smart TVs, streaming set-top
    boxes, and gaming consoles.  The paper distinguishes set-top boxes
    from smart TVs because set-tops need their own SDKs and may be
    attached to smart TVs.
    """

    BROWSER = "browser"
    MOBILE = "mobile"
    SET_TOP = "set_top"
    SMART_TV = "smart_tv"
    CONSOLE = "console"

    @property
    def is_app_based(self) -> bool:
        return self is not Platform.BROWSER

    @property
    def display_name(self) -> str:
        return _PLATFORM_DISPLAY[self]


_PLATFORM_DISPLAY = {
    Platform.BROWSER: "Browser",
    Platform.MOBILE: "Mobile app",
    Platform.SET_TOP: "Set-top box",
    Platform.SMART_TV: "Smart TV",
    Platform.CONSOLE: "Game console",
}

ALL_PLATFORMS = tuple(Platform)


class ContentType(enum.Enum):
    """Live versus video-on-demand content (§4.3)."""

    LIVE = "live"
    VOD = "vod"


class ConnectionType(enum.Enum):
    """Client network connectivity, used for fair QoE comparisons (§6)."""

    WIFI = "wifi"
    CELLULAR_4G = "4g"
    WIRED = "wired"


class SyndicationRole(enum.Enum):
    """Role of a publisher in the syndication ecosystem (§6)."""

    OWNER = "owner"
    FULL_SYNDICATOR = "full_syndicator"
    NONE = "none"


#: Manifest file extensions per protocol (Table 1 of the paper, plus the
#: two exceptions discussed in §3 footnote 5: RTMP is detected from the
#: URL scheme and progressive download from media-file extensions).
MANIFEST_EXTENSIONS = {
    Protocol.HLS: (".m3u8", ".m3u"),
    Protocol.DASH: (".mpd",),
    Protocol.MSS: (".ism", ".isml"),
    Protocol.HDS: (".f4m",),
}

PROGRESSIVE_EXTENSIONS = (".mp4", ".flv", ".webm", ".mov")

#: Browser player technologies tracked in Fig 10a.
BROWSER_PLAYERS = ("html5", "flash", "silverlight", "other_plugin")

#: Mobile operating systems tracked in Fig 10b.
MOBILE_OSES = ("android", "ios", "other_mobile")

#: Set-top box families tracked in Fig 10c.
SET_TOP_DEVICES = ("roku", "appletv", "firetv", "chromecast", "other_settop")

#: Smart TV families (§4.2).
SMART_TV_DEVICES = ("samsung_tv", "lg_tv", "android_tv", "other_tv")

#: Console families (§4.2).
CONSOLE_DEVICES = ("xbox", "playstation", "other_console")

#: Number of distinct CDNs observed in the dataset (§4.3).
TOTAL_CDN_COUNT = 36

#: Anonymized labels of the five CDNs that together serve >93% of
#: view-hours (§4.3, Fig 11).
TOP_CDN_NAMES = ("A", "B", "C", "D", "E")
