"""Publishers and their per-snapshot management-plane profiles.

A publisher's identity (ID, syndication role, live/VoD mix, size class)
is stable; its management plane — which protocols it packages for,
which platforms it builds players for, which CDNs it pushes to, which
SDK versions it maintains — evolves over the 27-month study window.
:class:`PublisherProfile` is the state of one publisher's management
plane during one snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.constants import ContentType, Platform, Protocol, SyndicationRole
from repro.entities.cdn import CdnAssignment
from repro.entities.device import SDK


@dataclass(frozen=True)
class Publisher:
    """Stable identity of a content publisher (anonymized, as in §3)."""

    publisher_id: str
    daily_view_hours: float
    role: SyndicationRole = SyndicationRole.NONE
    serves_live: bool = False
    serves_vod: bool = True
    catalogue_size: int = 1

    def __post_init__(self) -> None:
        if not self.publisher_id:
            raise ValueError("publisher_id must be non-empty")
        if self.daily_view_hours <= 0:
            raise ValueError("daily view-hours must be positive")
        if not (self.serves_live or self.serves_vod):
            raise ValueError("publisher must serve live or VoD content")
        if self.catalogue_size < 1:
            raise ValueError("catalogue must contain at least one title")

    @property
    def content_types(self) -> Tuple[ContentType, ...]:
        types: List[ContentType] = []
        if self.serves_live:
            types.append(ContentType.LIVE)
        if self.serves_vod:
            types.append(ContentType.VOD)
        return tuple(types)


@dataclass
class PublisherProfile:
    """One publisher's management plane during one snapshot.

    The three §4 dimensions (protocols, platforms, CDNs) plus the SDK
    matrix that feeds the §5 unique-SDKs complexity metric.
    """

    publisher: Publisher
    protocols: FrozenSet[Protocol]
    platforms: FrozenSet[Platform]
    cdn_assignments: Tuple[CdnAssignment, ...]
    sdks: FrozenSet[SDK] = frozenset()
    device_models: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("profile must support at least one protocol")
        if not self.platforms:
            raise ValueError("profile must support at least one platform")
        if not self.cdn_assignments:
            raise ValueError("profile must use at least one CDN")
        names = [a.cdn.name for a in self.cdn_assignments]
        if len(names) != len(set(names)):
            raise ValueError("duplicate CDN assignment")

    @property
    def cdn_names(self) -> Tuple[str, ...]:
        return tuple(a.cdn.name for a in self.cdn_assignments)

    @property
    def protocol_count(self) -> int:
        return len(self.protocols)

    @property
    def platform_count(self) -> int:
        return len(self.platforms)

    @property
    def cdn_count(self) -> int:
        return len(self.cdn_assignments)

    def cdns_for(self, content_type: ContentType) -> Tuple[str, ...]:
        """Names of CDNs this publisher routes ``content_type`` to."""
        return tuple(
            a.cdn.name for a in self.cdn_assignments if a.serves(content_type)
        )

    def has_content_type_exclusive_cdn(
        self, content_type: ContentType
    ) -> bool:
        """True if some CDN is used *only* for ``content_type`` (§4.3)."""
        for assignment in self.cdn_assignments:
            if assignment.content_types == frozenset({content_type}):
                return True
        return False

    def management_plane_combinations(self) -> int:
        """The §5 combinations metric for this profile.

        Number of unique (CDN, protocol, device model) triples the
        publisher must potentially examine when triaging a failure.
        """
        device_count = max(len(self.device_models), 1)
        return self.cdn_count * self.protocol_count * device_count

    def protocol_titles(self) -> int:
        """The §5 protocol-titles metric: protocols x distinct video IDs."""
        return self.protocol_count * self.publisher.catalogue_size

    def unique_sdk_count(self) -> int:
        """The §5 unique-SDKs metric: distinct SDK versions + browsers.

        Browser players do not use device SDKs; each distinct browser
        player model the publisher supports counts once, matching the
        paper's "unique versions of SDKs and browsers".
        """
        browser_models = sum(
            1 for model in self.device_models if model.startswith(
                ("chrome", "firefox", "safari", "edge", "ie")
            )
        )
        return len(self.sdks) + browser_models
