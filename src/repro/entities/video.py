"""Videos and catalogues.

A video ID identifies one title; a catalogue is a publisher's (or a
syndicated series') set of titles.  §6 computes CDN origin storage for a
"popular video catalogue" by summing bitrate x duration over every
video and rung, so videos carry durations and catalogues support that
aggregation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.constants import ContentType
from repro.entities.ladder import BitrateLadder
from repro.errors import LadderError
from repro.units import rendition_bytes


@dataclass(frozen=True)
class Video:
    """One title: an ID, a duration, and a content type."""

    video_id: str
    duration_seconds: float
    content_type: ContentType = ContentType.VOD
    title_hint: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.video_id:
            raise ValueError("video_id must be non-empty")
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_seconds}"
            )

    def storage_bytes(self, ladder: BitrateLadder) -> float:
        """Origin bytes to store this video at every rung of a ladder.

        The §6 model: for each video ID multiply its encoded bitrates by
        its duration in seconds and sum.
        """
        return sum(
            rendition_bytes(r.bitrate_kbps, self.duration_seconds)
            for r in ladder
        )


class Catalogue:
    """A named collection of videos with convenient aggregation."""

    def __init__(self, name: str, videos: Iterable[Video] = ()) -> None:
        if not name:
            raise ValueError("catalogue name must be non-empty")
        self.name = name
        self._videos: Dict[str, Video] = {}
        for video in videos:
            self.add(video)

    def add(self, video: Video) -> None:
        if video.video_id in self._videos:
            raise ValueError(f"duplicate video ID {video.video_id!r}")
        self._videos[video.video_id] = video

    def __len__(self) -> int:
        return len(self._videos)

    def __iter__(self) -> Iterator[Video]:
        return iter(self._videos.values())

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._videos

    def get(self, video_id: str) -> Video:
        try:
            return self._videos[video_id]
        except KeyError:
            raise KeyError(
                f"video {video_id!r} not in catalogue {self.name!r}"
            ) from None

    @property
    def video_ids(self) -> List[str]:
        return list(self._videos)

    @property
    def total_duration_seconds(self) -> float:
        return sum(v.duration_seconds for v in self._videos.values())

    def storage_bytes(self, ladder: BitrateLadder) -> float:
        """Total origin bytes when every title is encoded at ``ladder``."""
        if len(self._videos) == 0:
            raise LadderError("cannot size an empty catalogue")
        return sum(v.storage_bytes(ladder) for v in self._videos.values())

    def filter(self, content_type: ContentType) -> "Catalogue":
        """Sub-catalogue restricted to one content type."""
        subset = Catalogue(f"{self.name}:{content_type.value}")
        for video in self._videos.values():
            if video.content_type is content_type:
                subset.add(video)
        return subset
