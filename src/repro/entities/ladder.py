"""Bitrate ladders: the ordered set of encoded renditions of a video.

§2 of the paper: packaging transcodes the master file into multiple
bitrates, each at a resolution/quality point; §6 (Fig 17) compares the
ladders chosen by a content owner and its syndicators for the same
video.  The HLS authoring guidelines the paper cites recommend at least
one rendition under 192 kbps and successive rungs within a 1.5-2x
multiplicative step; :meth:`BitrateLadder.follows_hls_guidelines` checks
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import LadderError

#: Common 16:9 resolution for a given video bitrate band (kbps -> (w, h)).
_RESOLUTION_BANDS: Tuple[Tuple[float, Tuple[int, int]], ...] = (
    (250, (416, 234)),
    (500, (640, 360)),
    (900, (768, 432)),
    (1600, (960, 540)),
    (3000, (1280, 720)),
    (6000, (1920, 1080)),
    (12000, (2560, 1440)),
    (float("inf"), (3840, 2160)),
)


def resolution_for_bitrate(bitrate_kbps: float) -> Tuple[int, int]:
    """Representative resolution for a video bitrate (16:9 ladder)."""
    if bitrate_kbps <= 0:
        raise LadderError(f"bitrate must be positive, got {bitrate_kbps}")
    for upper, resolution in _RESOLUTION_BANDS:
        if bitrate_kbps <= upper:
            return resolution
    raise AssertionError("unreachable: final band is unbounded")


@dataclass(frozen=True)
class Rendition:
    """One encoded variant of a video: a rung on the bitrate ladder."""

    bitrate_kbps: float
    width: int
    height: int
    codec: str = "h264"
    audio_bitrate_kbps: float = 96.0

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0:
            raise LadderError(
                f"rendition bitrate must be positive, got {self.bitrate_kbps}"
            )
        if self.width <= 0 or self.height <= 0:
            raise LadderError("rendition resolution must be positive")
        if self.audio_bitrate_kbps < 0:
            raise LadderError("audio bitrate must be non-negative")

    @property
    def total_bitrate_kbps(self) -> float:
        """Video + audio bitrate, the bandwidth a manifest advertises."""
        return self.bitrate_kbps + self.audio_bitrate_kbps

    @property
    def resolution(self) -> Tuple[int, int]:
        return (self.width, self.height)


class BitrateLadder:
    """An ordered, duplicate-free sequence of renditions.

    Invariants: strictly increasing bitrates, at least one rung.
    """

    def __init__(self, renditions: Iterable[Rendition]) -> None:
        rungs = sorted(renditions, key=lambda r: r.bitrate_kbps)
        if not rungs:
            raise LadderError("a ladder needs at least one rendition")
        for lower, upper in zip(rungs, rungs[1:]):
            if upper.bitrate_kbps <= lower.bitrate_kbps:
                raise LadderError(
                    "ladder bitrates must be strictly increasing; "
                    f"got {lower.bitrate_kbps} then {upper.bitrate_kbps}"
                )
        self._rungs: Tuple[Rendition, ...] = tuple(rungs)

    @classmethod
    def from_bitrates(
        cls,
        bitrates_kbps: Sequence[float],
        codec: str = "h264",
        audio_bitrate_kbps: float = 96.0,
    ) -> "BitrateLadder":
        """Build a ladder from bare bitrates, inferring resolutions."""
        renditions = [
            Rendition(
                bitrate_kbps=float(b),
                width=resolution_for_bitrate(float(b))[0],
                height=resolution_for_bitrate(float(b))[1],
                codec=codec,
                audio_bitrate_kbps=audio_bitrate_kbps,
            )
            for b in bitrates_kbps
        ]
        return cls(renditions)

    def __len__(self) -> int:
        return len(self._rungs)

    def __iter__(self) -> Iterator[Rendition]:
        return iter(self._rungs)

    def __getitem__(self, idx: int) -> Rendition:
        return self._rungs[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitrateLadder):
            return NotImplemented
        return self._rungs == other._rungs

    def __hash__(self) -> int:
        return hash(self._rungs)

    def __repr__(self) -> str:
        rates = ", ".join(f"{r.bitrate_kbps:.0f}" for r in self._rungs)
        return f"BitrateLadder([{rates}] kbps)"

    @property
    def bitrates_kbps(self) -> Tuple[float, ...]:
        return tuple(r.bitrate_kbps for r in self._rungs)

    @property
    def min_bitrate_kbps(self) -> float:
        return self._rungs[0].bitrate_kbps

    @property
    def max_bitrate_kbps(self) -> float:
        return self._rungs[-1].bitrate_kbps

    @property
    def aggregate_bitrate_kbps(self) -> float:
        """Sum of all rung bitrates — proportional to storage cost (§6)."""
        return sum(r.bitrate_kbps for r in self._rungs)

    def nearest_at_most(self, throughput_kbps: float) -> Rendition:
        """Highest rung sustainable at the given throughput.

        Falls back to the lowest rung when even it exceeds throughput —
        a client must pick something (this drives rebuffering in the
        playback simulator).
        """
        best = self._rungs[0]
        for rung in self._rungs:
            if rung.bitrate_kbps <= throughput_kbps:
                best = rung
            else:
                break
        return best

    def step_ratios(self) -> List[float]:
        """Multiplicative step between successive rungs."""
        return [
            upper.bitrate_kbps / lower.bitrate_kbps
            for lower, upper in zip(self._rungs, self._rungs[1:])
        ]

    def follows_hls_guidelines(
        self,
        max_step: float = 2.0,
        low_rung_kbps: float = 192.0,
    ) -> bool:
        """Check the HLS authoring recommendations the paper cites (§6).

        At least one rendition at or under ``low_rung_kbps`` and every
        successive step within ``max_step``x of the previous rung.
        """
        if self.min_bitrate_kbps > low_rung_kbps:
            return False
        return all(ratio <= max_step + 1e-9 for ratio in self.step_ratios())

    def matches_within_tolerance(
        self, bitrate_kbps: float, tolerance: float
    ) -> Optional[Rendition]:
        """Rung whose bitrate is within ±tolerance (fractional) of a target.

        Used by the §6 storage dedup model: a CDN can drop a stored
        rendition when another publisher already stores the same video at
        a bitrate within the tolerance factor.
        """
        if tolerance < 0:
            raise LadderError("tolerance must be non-negative")
        best: Optional[Rendition] = None
        best_gap = float("inf")
        for rung in self._rungs:
            gap = abs(rung.bitrate_kbps - bitrate_kbps)
            if gap <= tolerance * bitrate_kbps and gap < best_gap:
                best = rung
                best_gap = gap
        return best
