"""Domain entities of the video delivery ecosystem.

These model the nouns of §2: publishers, videos and catalogues, bitrate
ladders, playback devices and their SDKs, and CDNs.
"""

from repro.entities.ladder import BitrateLadder, Rendition
from repro.entities.video import Video, Catalogue
from repro.entities.device import Device, SDK, DeviceRegistry, default_registry
from repro.entities.cdn import CDN, CdnAssignment
from repro.entities.publisher import Publisher, PublisherProfile

__all__ = [
    "BitrateLadder",
    "Rendition",
    "Video",
    "Catalogue",
    "Device",
    "SDK",
    "DeviceRegistry",
    "default_registry",
    "CDN",
    "CdnAssignment",
    "Publisher",
    "PublisherProfile",
]
