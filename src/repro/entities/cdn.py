"""Content delivery networks.

§4.3: the dataset saw 36 CDNs, with 5 serving over 93% of view-hours;
one of the top three uses anycast.  Publishers may restrict a CDN to
live or to VoD traffic, which :class:`CdnAssignment` captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.constants import ContentType


@dataclass(frozen=True)
class CDN:
    """A content delivery network, anonymized like the paper's A-E."""

    name: str
    uses_anycast: bool = False
    is_private: bool = False
    hostname_suffix: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("CDN name must be non-empty")

    @property
    def edge_hostname(self) -> str:
        """Representative edge hostname used when minting chunk URLs."""
        suffix = self.hostname_suffix or f"cdn-{self.name.lower()}.example.net"
        return suffix


@dataclass(frozen=True)
class CdnAssignment:
    """A publisher's use of one CDN, with optional content-type scoping.

    ``content_types`` is the set of content types the publisher routes to
    this CDN; §4.3 finds 30% of multi-CDN live+VoD publishers keep at
    least one CDN VoD-only and 19% keep at least one live-only.
    """

    cdn: CDN
    content_types: FrozenSet[ContentType] = field(
        default_factory=lambda: frozenset(ContentType)
    )

    def __post_init__(self) -> None:
        if not self.content_types:
            raise ValueError("a CDN assignment must carry some content type")

    @property
    def vod_only(self) -> bool:
        return self.content_types == frozenset({ContentType.VOD})

    @property
    def live_only(self) -> bool:
        return self.content_types == frozenset({ContentType.LIVE})

    def serves(self, content_type: ContentType) -> bool:
        return content_type in self.content_types
