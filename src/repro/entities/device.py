"""Playback devices and their SDKs.

§2: publishers build apps against device-specific SDKs ("application
frameworks") and must keep multiple SDK versions alive because users
upgrade slowly; browsers are served by players built on HTML5 or on
plugins such as Flash and Silverlight.  The unique-SDKs complexity
metric of §5 counts distinct (SDK, version) pairs plus browsers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.constants import (
    BROWSER_PLAYERS,
    CONSOLE_DEVICES,
    MOBILE_OSES,
    Platform,
    SET_TOP_DEVICES,
    SMART_TV_DEVICES,
)


@dataclass(frozen=True)
class SDK:
    """A device SDK at a specific version.

    ``str(sdk)`` gives the stable identity used by the unique-SDKs
    complexity metric: two publishers supporting Roku SDK 8.1 count it
    as the same software surface.
    """

    name: str
    version: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SDK name must be non-empty")
        if not self.version:
            raise ValueError("SDK version must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}/{self.version}"


@dataclass(frozen=True)
class Device:
    """A device model on which video is consumed.

    ``family`` is the within-platform grouping tracked by Fig 10 (e.g.
    browser player technology, mobile OS, set-top family).
    """

    model: str
    platform: Platform
    family: str
    os_name: str
    sdk_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.model:
            raise ValueError("device model must be non-empty")
        if not self.family:
            raise ValueError("device family must be non-empty")
        if self.platform.is_app_based and not self.sdk_name:
            raise ValueError(
                f"app-based device {self.model!r} must declare an SDK"
            )

    @property
    def uses_browser_player(self) -> bool:
        return self.platform is Platform.BROWSER


class DeviceRegistry:
    """The known universe of device models, grouped by platform.

    The synthetic dataset draws device models from this registry; the
    analyses reverse the mapping (model -> platform/family), which is how
    the paper's pipeline classifies the Conviva ``device model`` field.
    """

    def __init__(self, devices: Iterable[Device]) -> None:
        self._by_model: Dict[str, Device] = {}
        for device in devices:
            if device.model in self._by_model:
                raise ValueError(f"duplicate device model {device.model!r}")
            self._by_model[device.model] = device

    def __len__(self) -> int:
        return len(self._by_model)

    def __contains__(self, model: str) -> bool:
        return model in self._by_model

    def lookup(self, model: str) -> Device:
        try:
            return self._by_model[model]
        except KeyError:
            raise KeyError(f"unknown device model {model!r}") from None

    def models(self, platform: Optional[Platform] = None) -> List[str]:
        """All device models, optionally restricted to one platform."""
        return [
            model
            for model, device in self._by_model.items()
            if platform is None or device.platform is platform
        ]

    def families(self, platform: Platform) -> List[str]:
        """Distinct families within a platform, in registry order."""
        seen: Dict[str, None] = {}
        for device in self._by_model.values():
            if device.platform is platform:
                seen.setdefault(device.family, None)
        return list(seen)

    def platform_of(self, model: str) -> Platform:
        return self.lookup(model).platform

    def taxonomy(self) -> Dict[Platform, Dict[str, List[str]]]:
        """Platform -> family -> device models (the Fig 5 tree)."""
        tree: Dict[Platform, Dict[str, List[str]]] = {}
        for device in self._by_model.values():
            families = tree.setdefault(device.platform, {})
            families.setdefault(device.family, []).append(device.model)
        return tree


def _browser_devices() -> List[Device]:
    devices = []
    browsers = ("chrome", "firefox", "safari", "edge", "ie11")
    for browser in browsers:
        for player in BROWSER_PLAYERS:
            if player == "silverlight" and browser in ("chrome", "safari"):
                continue  # NPAPI plugins dropped by these browsers
            devices.append(
                Device(
                    model=f"{browser}-{player}",
                    platform=Platform.BROWSER,
                    family=player,
                    os_name="desktop",
                )
            )
    return devices


def _mobile_devices() -> List[Device]:
    specs = (
        ("iphone", "ios", "AVFoundation"),
        ("ipad", "ios", "AVFoundation"),
        ("android-phone", "android", "ExoPlayer"),
        ("android-tablet", "android", "ExoPlayer"),
        ("windows-phone", "other_mobile", "MediaElement"),
    )
    return [
        Device(
            model=model,
            platform=Platform.MOBILE,
            family=family,
            os_name=family,
            sdk_name=sdk,
        )
        for model, family, sdk in specs
        if family in MOBILE_OSES
    ]


def _set_top_devices() -> List[Device]:
    specs = (
        ("roku-express", "roku", "RokuSDK"),
        ("roku-ultra", "roku", "RokuSDK"),
        ("appletv-4k", "appletv", "tvOS"),
        ("firetv-stick", "firetv", "FireAppBuilder"),
        ("chromecast", "chromecast", "CastSDK"),
        ("tivo-stream", "other_settop", "TivoSDK"),
    )
    return [
        Device(
            model=model,
            platform=Platform.SET_TOP,
            family=family,
            os_name=family,
            sdk_name=sdk,
        )
        for model, family, sdk in specs
        if family in SET_TOP_DEVICES
    ]


def _smart_tv_devices() -> List[Device]:
    specs = (
        ("samsung-tizen-tv", "samsung_tv", "TizenSDK"),
        ("lg-webos-tv", "lg_tv", "WebOSSDK"),
        ("sony-android-tv", "android_tv", "AndroidTVSDK"),
        ("vizio-smartcast", "other_tv", "SmartCastSDK"),
    )
    return [
        Device(
            model=model,
            platform=Platform.SMART_TV,
            family=family,
            os_name=family,
            sdk_name=sdk,
        )
        for model, family, sdk in specs
        if family in SMART_TV_DEVICES
    ]


def _console_devices() -> List[Device]:
    specs = (
        ("xbox-one", "xbox", "XDK"),
        ("playstation-4", "playstation", "PSSDK"),
        ("nintendo-switch", "other_console", "NXSDK"),
    )
    return [
        Device(
            model=model,
            platform=Platform.CONSOLE,
            family=family,
            os_name=family,
            sdk_name=sdk,
        )
        for model, family, sdk in specs
        if family in CONSOLE_DEVICES
    ]


def default_registry() -> DeviceRegistry:
    """The device universe used by the synthetic ecosystem.

    Mirrors the platform taxonomy of Fig 5: browsers (by player
    technology), mobile apps (by OS), streaming set-top boxes, smart
    TVs, and game consoles.
    """
    devices: List[Device] = []
    devices.extend(_browser_devices())
    devices.extend(_mobile_devices())
    devices.extend(_set_top_devices())
    devices.extend(_smart_tv_devices())
    devices.extend(_console_devices())
    return DeviceRegistry(devices)
